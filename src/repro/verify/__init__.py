"""Verification subsystem: property fuzzing and differential testing.

The paper's anonymity notions come with properties that must hold for
*any* input — every Section V algorithm's output must pass its Def. 4.x
verifier, the notions must respect the Prop. 4.5 containment lattice,
the optimized engines must agree with the literal reference
transcriptions, and the matching machinery must agree with brute force.
This package turns those facts into an executable harness:

* :mod:`repro.verify.generators` — seeded random instances (tables,
  hierarchies, configurations) with shrinking to minimal counterexamples;
* :mod:`repro.verify.invariants` — the invariant catalogue, each check
  returning structured :class:`~repro.verify.invariants.Violation`\\ s;
* :mod:`repro.verify.differential` — the registry of all shipped
  algorithms and the runner that executes every one against every
  applicable oracle on one instance;
* :mod:`repro.verify.harness` — the budgeted fuzz loop with replayable
  failure reports (``repro-anon fuzz --seed S --budget-seconds T``);
* :mod:`repro.verify.resilience` — fault/deadline drills proving every
  registered algorithm aborts through typed errors with its inputs
  unmutated (see ``docs/robustness.md``).

Quick use::

    from repro.verify import fuzz
    report = fuzz(seed=42, budget_seconds=30)
    assert report.ok, report.summary()
"""

from repro.verify.differential import (
    REGISTRY,
    AlgorithmOutput,
    AlgorithmSpec,
    algorithm_names,
    check_api_end_to_end,
    compare_with_reference,
    differential_check,
    get_algorithm,
)
from repro.verify.generators import (
    Instance,
    InstanceConfig,
    random_collection,
    random_instance,
    random_schema,
    random_table,
    shrink_instance,
)
from repro.verify.harness import (
    FuzzFailure,
    FuzzReport,
    check_case,
    fuzz,
)
from repro.verify.resilience import fault_resilience_check
from repro.verify.invariants import (
    Violation,
    check_closure_algebra,
    check_generalization,
    check_lattice,
    check_matching_oracles,
    check_measure_soundness,
)

__all__ = [
    "Instance",
    "InstanceConfig",
    "random_instance",
    "random_schema",
    "random_table",
    "random_collection",
    "shrink_instance",
    "Violation",
    "check_closure_algebra",
    "check_measure_soundness",
    "check_generalization",
    "check_lattice",
    "check_matching_oracles",
    "AlgorithmSpec",
    "AlgorithmOutput",
    "REGISTRY",
    "algorithm_names",
    "get_algorithm",
    "differential_check",
    "compare_with_reference",
    "check_api_end_to_end",
    "fuzz",
    "check_case",
    "FuzzReport",
    "FuzzFailure",
    "fault_resilience_check",
]
