"""The differential runner: every algorithm against every oracle.

One registry (:data:`REGISTRY`) names every anonymization algorithm the
library ships — Algorithms 1–6 in their selectable variants, the forest
baseline, Mondrian, Datafly, k-member, and the blocked scalable engine —
together with the notion each must satisfy.  :func:`differential_check`
executes all of them on one fuzz instance and demands:

* no crash and no spurious rejection (1 ≤ k ≤ n is always feasible);
* every output generalizes the input table and passes the verifier of
  its target notion (:mod:`repro.verify.invariants`);
* every output sits correctly in the Prop. 4.5 containment lattice;
* the optimized agglomerative engine reproduces the literal
  :mod:`repro.core.reference` transcription exactly on tie-free runs
  (invariant-only checks otherwise — either tie choice is a correct
  Algorithm 1 execution);
* the matching oracles agree on the output's consistency graph
  (Hopcroft–Karp vs brute force, SCC allowed edges vs the paper's
  naive per-edge test);
* the high-level :func:`repro.core.api.anonymize` facade verifies and
  reports the cost the cost model recomputes.

This is the substrate every future performance PR must pass through:
rewrite a hot path, and the fuzzing harness replays thousands of random
instances through this runner against the untouched slow oracles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.agglomerative import agglomerative_clustering
from repro.core.api import anonymize
from repro.core.backend import resolve_backend
from repro.core.clustering import Clustering, clustering_to_nodes
from repro.core.datafly import datafly
from repro.core.distances import get_distance
from repro.core.forest import forest_clustering
from repro.core.global_1k import global_one_k_anonymize
from repro.core.k1 import k1_expansion, k1_nearest_neighbors
from repro.core.kk import kk_anonymize
from repro.core.kmember import kmember_clustering
from repro.core.mondrian import mondrian_clustering
from repro.core.one_k import one_k_anonymize
from repro.core.reference import reference_agglomerative
from repro.core.scalable import blocked_agglomerative
from repro.errors import ReproError
from repro.matching.bipartite import ConsistencyGraph
from repro.measures.base import CostModel
from repro.measures.registry import get_measure
from repro.verify.generators import Instance, InstanceConfig
from repro.verify.invariants import (
    Violation,
    check_generalization,
    check_lattice,
    check_matching_oracles,
)


@dataclass(frozen=True)
class AlgorithmOutput:
    """What one registered algorithm produced on one instance."""

    nodes: np.ndarray  #: the ``[n, r]`` node matrix
    clustering: Clustering | None = None  #: for clustering-based algorithms


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: name, target notion, runner."""

    name: str  #: registry key, e.g. ``"kk"`` or ``"agglomerative"``
    notion: str  #: the notion its output must satisfy
    # repr=False keeps the registry's repr stable (function reprs embed
    # memory addresses, which would churn the generated API docs).
    run: Callable[[CostModel, InstanceConfig], AlgorithmOutput] = field(
        repr=False
    )
    requires_laminar: bool = False  #: skip on non-laminar schemas
    #: The runner honours ``cfg.backend``.  Backend-aware algorithms are
    #: executed under *both* backends per case and must produce
    #: bit-identical node matrices (``backend.divergence`` otherwise).
    backend_aware: bool = False


def _clustered(model: CostModel, clustering: Clustering) -> AlgorithmOutput:
    return AlgorithmOutput(
        nodes=clustering_to_nodes(model.enc, clustering),
        clustering=clustering,
    )


def _run_agglomerative(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return _clustered(
        model,
        agglomerative_clustering(
            model,
            cfg.k,
            get_distance(cfg.distance),
            modified=cfg.modified,
            backend=cfg.backend,
        ),
    )


def _run_forest(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return _clustered(model, forest_clustering(model, cfg.k))


def _run_mondrian(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return _clustered(model, mondrian_clustering(model, cfg.k))


def _run_kmember(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return _clustered(model, kmember_clustering(model, cfg.k))


def _run_blocked(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    block_size = max(2 * cfg.k, 8)
    return _clustered(
        model,
        blocked_agglomerative(
            model,
            cfg.k,
            get_distance(cfg.distance),
            block_size=block_size,
            modified=cfg.modified,
            backend=cfg.backend,
        ),
    )


def _run_datafly(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return AlgorithmOutput(nodes=datafly(model, cfg.k).node_matrix)


def _run_k1_nearest(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return AlgorithmOutput(
        nodes=k1_nearest_neighbors(model, cfg.k, backend=cfg.backend)
    )


def _run_k1_expansion(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return AlgorithmOutput(nodes=k1_expansion(model, cfg.k, backend=cfg.backend))


def _run_one_k(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return AlgorithmOutput(
        nodes=one_k_anonymize(
            model, model.enc.singleton_nodes, cfg.k, backend=cfg.backend
        )
    )


def _run_kk(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    return AlgorithmOutput(
        nodes=kk_anonymize(
            model, cfg.k, expander=cfg.expander, backend=cfg.backend
        )
    )


def _run_global(model: CostModel, cfg: InstanceConfig) -> AlgorithmOutput:
    base = kk_anonymize(model, cfg.k, expander=cfg.expander, backend=cfg.backend)
    nodes, _ = global_one_k_anonymize(model, base, cfg.k)
    return AlgorithmOutput(nodes=nodes)


#: Every registered algorithm, in execution order.
REGISTRY: tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec("agglomerative", "k", _run_agglomerative, backend_aware=True),
    AlgorithmSpec("forest", "k", _run_forest),
    AlgorithmSpec("mondrian", "k", _run_mondrian),
    AlgorithmSpec("kmember", "k", _run_kmember),
    AlgorithmSpec("blocked", "k", _run_blocked, backend_aware=True),
    AlgorithmSpec("datafly", "k", _run_datafly, requires_laminar=True),
    AlgorithmSpec("k1-nearest", "k1", _run_k1_nearest, backend_aware=True),
    AlgorithmSpec("k1-expansion", "k1", _run_k1_expansion, backend_aware=True),
    AlgorithmSpec("alg5-1k", "1k", _run_one_k, backend_aware=True),
    AlgorithmSpec("kk", "kk", _run_kk, backend_aware=True),
    AlgorithmSpec("global-1k", "global-1k", _run_global, backend_aware=True),
)


def algorithm_names() -> list[str]:
    """Names of every registered algorithm."""
    return [spec.name for spec in REGISTRY]


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look one registered algorithm up by name."""
    for spec in REGISTRY:
        if spec.name == name:
            return spec
    raise KeyError(
        f"unknown algorithm {name!r}; registered: {algorithm_names()}"
    )


def _canonical(clustering: Clustering) -> list[tuple[int, ...]]:
    return sorted(tuple(sorted(c)) for c in clustering.clusters)


def compare_with_reference(
    model: CostModel, cfg: InstanceConfig
) -> list[Violation]:
    """The optimized agglomerative engine vs the literal transcription.

    On tie-free runs the clusterings must be identical.  When an exact
    distance tie influenced any reference decision, either choice is a
    correct Algorithm 1/2 execution, so only the k-anonymity invariant
    is demanded of both.
    """
    distance = get_distance(cfg.distance)
    try:
        reference = reference_agglomerative(
            model, cfg.k, distance, modified=cfg.modified
        )
        production = agglomerative_clustering(
            model, cfg.k, distance, modified=cfg.modified
        )
    except ReproError as exc:
        return [
            Violation(
                "differential.agglomerative-crash",
                f"{type(exc).__name__}: {exc}",
            )
        ]
    out: list[Violation] = []
    floor = min(cfg.k, model.enc.num_records)
    for name, clustering in (
        ("reference", reference.clustering),
        ("production", production),
    ):
        if clustering.min_cluster_size() < floor:
            out.append(
                Violation(
                    "differential.cluster-size",
                    f"{name} agglomerative produced a cluster smaller "
                    f"than k={cfg.k}",
                )
            )
    if not reference.had_ties and _canonical(production) != _canonical(
        reference.clustering
    ):
        out.append(
            Violation(
                "differential.agglomerative",
                f"tie-free run (k={cfg.k}, {cfg.distance}, "
                f"modified={cfg.modified}) but engine and reference "
                f"clusterings differ: {_canonical(production)} vs "
                f"{_canonical(reference.clustering)}",
            )
        )
    return out


def check_api_end_to_end(instance: Instance) -> list[Violation]:
    """The :func:`anonymize` facade on the instance's drawn configuration."""
    cfg = instance.config
    try:
        result = anonymize(
            instance.table,
            k=cfg.k,
            notion=cfg.notion,
            measure=cfg.measure,
            distance=cfg.distance,
            modified=cfg.modified,
            expander=cfg.expander,
            backend=cfg.backend,
        )
    except ReproError as exc:
        return [
            Violation(
                "api.rejects-valid-instance",
                f"anonymize(notion={cfg.notion}, k={cfg.k}): {exc}",
            )
        ]
    out: list[Violation] = []
    if not result.verify():
        out.append(
            Violation(
                "api.verify",
                f"anonymize(notion={cfg.notion}, k={cfg.k}) result fails "
                "its own verify()",
            )
        )
    recomputed = CostModel(
        result.encoded, get_measure(result.measure)
    ).table_cost(result.node_matrix)
    if abs(recomputed - result.cost) > 1e-9:
        out.append(
            Violation(
                "api.cost",
                f"reported cost {result.cost} != recomputed {recomputed}",
            )
        )
    try:
        result.generalized.check_generalizes(instance.table)
    except ReproError as exc:
        out.append(Violation("api.generalizes", str(exc)))
    return out


def _check_backend_agreement(
    spec: AlgorithmSpec,
    model: CostModel,
    cfg: InstanceConfig,
    produced: AlgorithmOutput,
) -> list[Violation]:
    """Re-run ``spec`` under the other backend; demand identical nodes.

    Backends promise *bit-identical* outputs (same tie-breaking, same
    merge sequence), so any difference in the node matrix — not merely
    in cost — is a finding.  Skipped when only one backend can run
    (NumPy absent).
    """
    primary = resolve_backend(cfg.backend)
    other = "columnar" if primary == "python" else "python"
    if resolve_backend(other) == primary:
        return []  # columnar unavailable: nothing to cross-check
    try:
        mirrored = spec.run(model, replace(cfg, backend=other))
    except Exception as exc:  # noqa: BLE001 — asymmetric crash is the finding
        return [
            Violation(
                "backend.divergence",
                f"{spec.name}: {primary} backend succeeded but {other} "
                f"raised {type(exc).__name__}: {exc}",
            )
        ]
    if not np.array_equal(produced.nodes, mirrored.nodes):
        diff = int((produced.nodes != mirrored.nodes).any(axis=1).sum())
        return [
            Violation(
                "backend.divergence",
                f"{spec.name} (k={cfg.k}, distance={cfg.distance}, "
                f"measure={cfg.measure}, modified={cfg.modified}): "
                f"{primary} and {other} backends disagree on "
                f"{diff} record(s)",
            )
        ]
    return []


def differential_check(
    instance: Instance, include_matching: bool = True
) -> list[Violation]:
    """Run every applicable registered algorithm on one instance.

    Backend-aware algorithms additionally run under the other execution
    backend and must reproduce the primary backend's node matrix bit for
    bit (``backend.divergence`` otherwise).

    Returns all invariant violations found; an empty list means the
    instance passed the full differential battery.
    """
    enc = instance.encoded()
    model = instance.model(enc)
    cfg = instance.config
    laminar = instance.is_laminar()
    out: list[Violation] = []
    kk_nodes: np.ndarray | None = None

    for spec in REGISTRY:
        if spec.requires_laminar and not laminar:
            continue
        try:
            produced = spec.run(model, cfg)
        except ReproError as exc:
            out.append(
                Violation(
                    "algorithm.rejects-valid-instance",
                    f"{spec.name} (k={cfg.k}, n={enc.num_records}): {exc}",
                )
            )
            continue
        except Exception as exc:  # noqa: BLE001 — crashes are the finding
            out.append(
                Violation(
                    "algorithm.crash",
                    f"{spec.name}: {type(exc).__name__}: {exc}",
                )
            )
            continue
        if spec.backend_aware:
            out.extend(_check_backend_agreement(spec, model, cfg, produced))
        out.extend(
            check_generalization(
                enc, produced.nodes, spec.notion, cfg.k, label=spec.name
            )
        )
        out.extend(check_lattice(enc, produced.nodes, cfg.k, label=spec.name))
        if produced.clustering is not None:
            floor = min(cfg.k, enc.num_records)
            if produced.clustering.min_cluster_size() < floor:
                out.append(
                    Violation(
                        "algorithm.cluster-size",
                        f"{spec.name}: cluster smaller than k={cfg.k}",
                    )
                )
        if spec.name == "kk":
            kk_nodes = produced.nodes

    out.extend(compare_with_reference(model, cfg))
    if include_matching and kk_nodes is not None:
        graph = ConsistencyGraph(enc, kk_nodes)
        out.extend(
            check_matching_oracles(
                graph.adjacency_lists(), enc.num_records, label="kk-graph"
            )
        )
    out.extend(check_api_end_to_end(instance))
    return out
