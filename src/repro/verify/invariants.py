"""The invariant catalogue: machine-checkable facts from the paper.

Every function here inspects one artifact (an encoding, a cost model, a
generalization, a bipartite graph) and returns a list of
:class:`Violation` records — empty when the invariant holds.  The
catalogue covers:

* **closure algebra** (Def. 3.1/3.3): closures are extensive and
  idempotent, joins are commutative upper bounds;
* **generalization validity** (Def. 3.3): every published record is
  consistent with the original record it recodes;
* **notion satisfaction** (Def. 4.1/4.4/4.6): an algorithm's output
  passes the verifier of its target notion;
* **the Fig. 1 / Prop. 4.5 containment lattice**: k-anonymity implies
  (k,k) and global (1,k); global (1,k) implies (1,k); (k,k) is exactly
  (1,k) ∧ (k,1) — checked through independent code paths;
* **measure soundness**: node costs are non-negative, singletons are
  free, and the per-measure ``monotone`` / ``bounded_unit`` claims hold;
* **matching correctness**: Hopcroft–Karp agrees with the brute-force
  Kuhn matcher on maximum matching size, and the SCC-based allowed-edge
  computation agrees with the paper's naive per-edge test.

The fuzzing harness (:mod:`repro.verify.harness`) strings these together
over random instances; the invariants are equally usable one-off from a
REPL when debugging a suspicious release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.notions import anonymity_profile, satisfies
from repro.errors import MatchingError
from repro.matching.allowed import allowed_edges, allowed_edges_naive
from repro.matching.bruteforce import kuhn_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.measures.base import CostModel
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which invariant, and what went wrong."""

    invariant: str  #: stable dotted name, e.g. ``notion.k1``
    detail: str  #: human-readable specifics

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


# ---------------------------------------------------------------------- #
# closure algebra
# ---------------------------------------------------------------------- #


def check_closure_algebra(
    enc: EncodedTable, rng: np.random.Generator, samples: int = 20
) -> list[Violation]:
    """Closures are extensive and idempotent; joins are upper bounds.

    Node pairs are checked exhaustively when the collection is small and
    by seeded sampling otherwise.
    """
    out: list[Violation] = []
    for j, att in enumerate(enc.attrs):
        coll = att.collection
        name = coll.attribute.name
        m = coll.attribute.size
        for _ in range(samples):
            size = int(rng.integers(1, m + 1))
            members = set(
                rng.choice(m, size=size, replace=False).tolist()
            )
            node = coll.closure_of_value_indices(members)
            if not members <= set(coll.node_indices(node)):
                out.append(
                    Violation(
                        "closure.extensive",
                        f"attribute {name}: closure({sorted(members)}) = "
                        f"node {node} does not contain its argument",
                    )
                )
            again = coll.closure_of_value_indices(coll.node_indices(node))
            if coll.node_indices(again) != coll.node_indices(node):
                out.append(
                    Violation(
                        "closure.idempotent",
                        f"attribute {name}: closure of node {node} moved "
                        f"to node {again}",
                    )
                )
        n_nodes = coll.num_nodes
        if n_nodes * n_nodes <= 400:
            pairs = [
                (a, b) for a in range(n_nodes) for b in range(n_nodes)
            ]
        else:
            pairs = [
                (int(rng.integers(0, n_nodes)), int(rng.integers(0, n_nodes)))
                for _ in range(samples)
            ]
        for a, b in pairs:
            joined = int(enc.attrs[j].join[a, b])
            if not (
                coll.node_indices(a) <= coll.node_indices(joined)
                and coll.node_indices(b) <= coll.node_indices(joined)
            ):
                out.append(
                    Violation(
                        "closure.join-upper-bound",
                        f"attribute {name}: join({a}, {b}) = {joined} does "
                        "not contain both operands",
                    )
                )
            if int(enc.attrs[j].join[b, a]) != joined:
                out.append(
                    Violation(
                        "closure.join-commutative",
                        f"attribute {name}: join({a}, {b}) != join({b}, {a})",
                    )
                )
    return out


# ---------------------------------------------------------------------- #
# measures
# ---------------------------------------------------------------------- #


def check_measure_soundness(model: CostModel) -> list[Violation]:
    """Non-negative costs, free singletons, and the per-measure claims.

    The ``monotone`` claim (B ⊆ B' implies cost(B) ≤ cost(B')) and the
    ``bounded_unit`` claim (costs in [0, 1]) are only enforced for
    measures that declare them; entropy is additionally checked against
    its log2(m) bound.
    """
    out: list[Violation] = []
    measure = model.measure
    for j, att in enumerate(model.enc.attrs):
        coll = att.collection
        name = coll.attribute.name
        costs = model.node_costs[j]
        if (costs < -1e-12).any():
            out.append(
                Violation(
                    "measure.nonnegative",
                    f"{measure.name} on {name}: negative node cost "
                    f"{float(costs.min())}",
                )
            )
        for v in range(att.num_values):
            if abs(float(costs[att.singleton[v]])) > 1e-12:
                out.append(
                    Violation(
                        "measure.singleton-free",
                        f"{measure.name} on {name}: singleton value {v} "
                        f"costs {float(costs[att.singleton[v]])}",
                    )
                )
        bound = (
            1.0
            if measure.bounded_unit
            else float(np.log2(max(att.num_values, 2)))
        )
        if (costs > bound + 1e-9).any():
            out.append(
                Violation(
                    "measure.bounded",
                    f"{measure.name} on {name}: cost {float(costs.max())} "
                    f"exceeds bound {bound}",
                )
            )
        if measure.monotone:
            for a in range(coll.num_nodes):
                for b in range(coll.num_nodes):
                    if (
                        coll.node_indices(a) < coll.node_indices(b)
                        and costs[a] > costs[b] + 1e-9
                    ):
                        out.append(
                            Violation(
                                "measure.monotone",
                                f"{measure.name} on {name}: node {a} ⊂ "
                                f"node {b} but cost {costs[a]} > {costs[b]}",
                            )
                        )
    return out


# ---------------------------------------------------------------------- #
# generalizations and notions
# ---------------------------------------------------------------------- #


def check_generalization(
    enc: EncodedTable,
    node_matrix: np.ndarray,
    notion: str,
    k: int,
    label: str = "output",
) -> list[Violation]:
    """A node matrix is shape-valid, generalizes its table, and passes
    the verifier of ``notion`` at level ``k``."""
    out: list[Violation] = []
    node_matrix = np.asarray(node_matrix)
    n, r = enc.num_records, enc.num_attributes
    if node_matrix.shape != (n, r):
        return [
            Violation(
                "output.shape",
                f"{label}: node matrix shape {node_matrix.shape}, "
                f"expected {(n, r)}",
            )
        ]
    for j, att in enumerate(enc.attrs):
        col = node_matrix[:, j]
        if (col < 0).any() or (col >= att.num_nodes).any():
            out.append(
                Violation(
                    "output.node-range",
                    f"{label}: attribute {j} has node indices outside "
                    f"[0, {att.num_nodes})",
                )
            )
            return out
    for i in range(n):
        if not bool(enc.consistency_mask(i, node_matrix[i])):
            out.append(
                Violation(
                    "output.generalizes",
                    f"{label}: record {i} is not consistent with its "
                    "generalization (Def. 3.3 breach)",
                )
            )
    if not satisfies(enc, node_matrix, notion, k):
        out.append(
            Violation(
                f"notion.{notion}",
                f"{label}: verifier rejects the output at k={k}",
            )
        )
    return out


def check_lattice(
    enc: EncodedTable,
    node_matrix: np.ndarray,
    k: int,
    label: str = "output",
) -> list[Violation]:
    """The Prop. 4.5 / Fig. 1 containments on one generalization.

    The anonymity levels come from :func:`anonymity_profile`, whose four
    quantities flow through independent code paths (row hashing, degree
    counting, matching), so agreement here is informative rather than
    tautological.
    """
    profile = anonymity_profile(enc, node_matrix, with_matches=True)
    k_anon = profile.min_group_size >= k
    one_k = profile.min_left_links >= k
    k_one = profile.min_right_links >= k
    kk = satisfies(enc, node_matrix, "kk", k)
    global_1k = profile.min_matches >= k

    out: list[Violation] = []
    if kk != (one_k and k_one):
        out.append(
            Violation(
                "lattice.kk-conjunction",
                f"{label}: (k,k) verifier says {kk} but (1,k) ∧ (k,1) "
                f"says {one_k and k_one} at k={k}",
            )
        )
    if k_anon and not (kk and global_1k):
        out.append(
            Violation(
                "lattice.k-implies-kk-global",
                f"{label}: k-anonymous at k={k} but kk={kk}, "
                f"global={global_1k} (Prop. 4.5/4.7 breach)",
            )
        )
    if global_1k and not one_k:
        out.append(
            Violation(
                "lattice.global-implies-1k",
                f"{label}: global (1,k) holds at k={k} but (1,k) fails",
            )
        )
    if profile.min_matches > profile.min_left_links:
        out.append(
            Violation(
                "lattice.matches-bounded-by-links",
                f"{label}: min matches {profile.min_matches} exceeds min "
                f"left degree {profile.min_left_links}",
            )
        )
    return out


# ---------------------------------------------------------------------- #
# matching
# ---------------------------------------------------------------------- #


def check_matching_oracles(
    adj: Sequence[Sequence[int]],
    num_right: int,
    label: str = "graph",
    naive_edge_budget: int = 400,
) -> list[Violation]:
    """Hopcroft–Karp vs Kuhn on size; fast vs naive allowed edges.

    The O(√n·m²) naive allowed-edge oracle is skipped above
    ``naive_edge_budget`` edges; the matching-size comparison always
    runs.
    """
    out: list[Violation] = []
    *_, hk_size = hopcroft_karp(adj, num_right)
    *_, bf_size = kuhn_matching(adj, num_right)
    if hk_size != bf_size:
        out.append(
            Violation(
                "matching.size",
                f"{label}: Hopcroft–Karp size {hk_size} != brute-force "
                f"size {bf_size}",
            )
        )
        return out

    num_edges = sum(len(a) for a in adj)
    perfect = hk_size == len(adj) == num_right
    if perfect and num_edges <= naive_edge_budget:
        fast = allowed_edges(adj, num_right)
        naive = allowed_edges_naive(adj, num_right)
        for u, (f, s) in enumerate(zip(fast, naive)):
            if f != s:
                out.append(
                    Violation(
                        "matching.allowed-edges",
                        f"{label}: allowed edges of vertex {u} differ — "
                        f"SCC method {sorted(f)}, naive {sorted(s)}",
                    )
                )
    elif not perfect:
        # Both allowed-edge routines must refuse imperfect graphs.
        for fn, tag in (
            (allowed_edges, "fast"),
            (allowed_edges_naive, "naive"),
        ):
            try:
                fn(adj, num_right)
            except MatchingError:
                continue
            out.append(
                Violation(
                    "matching.imperfect-refusal",
                    f"{label}: {tag} allowed-edge routine accepted a "
                    "graph with no perfect matching",
                )
            )
    return out
