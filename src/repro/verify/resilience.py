"""Fault and deadline resilience drills over the registered algorithms.

The :mod:`repro.runtime` machinery promises two things about every
algorithm in the differential registry:

* under an active execution limit or an injected fault, the algorithm
  fails through a *typed* :class:`~repro.errors.ReproError`
  (``DeadlineExceeded`` / ``InjectedFault``), never an arbitrary crash
  and never a silent swallow;
* an aborted run leaves its inputs untouched — the encoded table an
  instance shares across the whole differential battery must be
  byte-identical before and after the abort.

:func:`fault_resilience_check` turns those promises into the same kind
of :class:`~repro.verify.invariants.Violation` list the rest of the
verification subsystem produces, so fault drills compose with the fuzz
harness and its shrinking machinery.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.measures.base import CostModel
from repro.runtime import Budget, FaultPlan, fault_scope, limit_scope
from repro.tabular.encoding import EncodedTable
from repro.verify.differential import REGISTRY, AlgorithmSpec
from repro.verify.generators import Instance
from repro.verify.invariants import Violation


def _snapshot(enc: EncodedTable) -> dict[str, np.ndarray]:
    """Copies of the encoded arrays an algorithm must not mutate."""
    return {
        "codes": enc.codes.copy(),
        "singleton_nodes": enc.singleton_nodes.copy(),
        "unique_codes": enc.unique_codes.copy(),
    }


def _mutations(
    enc: EncodedTable, before: dict[str, np.ndarray], label: str
) -> list[Violation]:
    out = []
    for name, saved in before.items():
        current = getattr(enc, name)
        if current.shape != saved.shape or not np.array_equal(current, saved):
            out.append(
                Violation(
                    "resilience.input-mutated",
                    f"{label}: aborted run mutated enc.{name}",
                )
            )
    return out


def _drill(
    spec: AlgorithmSpec,
    model: CostModel,
    instance: Instance,
    label: str,
) -> list[Violation]:
    """Run one spec under the ambient fault/limit scope; classify the exit."""
    enc = model.enc
    before = _snapshot(enc)
    out: list[Violation] = []
    completed = False
    try:
        spec.run(model, instance.config)
        completed = True
    except ReproError:
        pass  # typed failure: exactly the contract
    except Exception as exc:  # noqa: BLE001 — crashes are the finding
        out.append(
            Violation(
                "resilience.crash",
                f"{label}: untyped {type(exc).__name__}: {exc}",
            )
        )
    out.extend(_mutations(enc, before, label))
    return out if not completed else out + [COMPLETED]


#: Sentinel appended by :func:`_drill` when the run finished normally
#: (the caller decides whether that is legal for the drill at hand).
COMPLETED = Violation("resilience.completed", "run finished normally")


def fault_resilience_check(instance: Instance) -> list[Violation]:
    """Drill every applicable registered algorithm on one instance.

    Two drills per algorithm:

    * **fault drill** — a deterministic :class:`FaultPlan` arms every
      ``core.*`` site; if the algorithm's hot loop fires the fault, the
      resulting ``InjectedFault`` must propagate (a completed run after
      a fired fault means something swallowed it);
    * **budget drill** — a zero-checkpoint :class:`Budget`; the first
      checkpoint the algorithm reaches must raise ``DeadlineExceeded``
      (completing after the budget was consumed means the signal was
      swallowed).

    Either way the instance's encoded arrays must be unmutated after
    the abort.  Returns the accumulated violations (empty = pass).
    """
    enc = instance.encoded()
    model = instance.model(enc)
    laminar = instance.is_laminar()
    out: list[Violation] = []

    for spec in REGISTRY:
        if spec.requires_laminar and not laminar:
            continue

        plan = FaultPlan().inject("core.*")
        with fault_scope(plan):
            drilled = _drill(spec, model, instance, f"{spec.name}[fault]")
        completed = any(v is COMPLETED for v in drilled)
        out.extend(v for v in drilled if v is not COMPLETED)
        if completed and plan.total_fired() > 0:
            out.append(
                Violation(
                    "resilience.swallowed-fault",
                    f"{spec.name}: completed although an injected fault "
                    f"fired at {plan.fired[0]!r}",
                )
            )

        budget = Budget(0)
        with limit_scope(budget):
            drilled = _drill(spec, model, instance, f"{spec.name}[budget]")
        completed = any(v is COMPLETED for v in drilled)
        out.extend(v for v in drilled if v is not COMPLETED)
        if completed and budget.used > budget.checkpoints:
            out.append(
                Violation(
                    "resilience.swallowed-deadline",
                    f"{spec.name}: completed although the checkpoint "
                    "budget was exhausted mid-run",
                )
            )
    return out
