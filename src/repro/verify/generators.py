"""Seeded random instance generators for the fuzzing harness.

A fuzz *instance* is everything one verification case needs: a random
table over a random schema (random domains, random generalization
hierarchies — laminar partitions, interval collections, suppression-only)
plus a random configuration (k, notion, measure, distance, expander).
Instances are a pure function of an integer seed, so any failure the
harness reports is replayable from that seed alone.

The module also implements *shrinking*: given a failing instance and a
predicate that re-checks it, :func:`shrink_instance` greedily removes
rows and attributes and lowers k while the failure persists, returning a
(locally) minimal counterexample that is far easier to debug than the
original random table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.measures.base import CostModel
from repro.measures.registry import get_measure
from repro.tabular.attribute import Attribute, integer_attribute
from repro.tabular.encoding import EncodedTable
from repro.tabular.hierarchy import IntervalCollection, SubsetCollection
from repro.tabular.table import Schema, Table

#: Notions an instance may target (the differential runner checks all of
#: them anyway; the drawn notion selects the end-to-end API call).
INSTANCE_NOTIONS = ("k", "1k", "k1", "kk", "global-1k")

#: Measures an instance may draw.  ``tree`` is only drawn for fully
#: laminar schemas (it is undefined otherwise).
INSTANCE_MEASURES = ("entropy", "lm", "mw", "tree")

#: Agglomerative distances an instance may draw.
INSTANCE_DISTANCES = ("d1", "d2", "d3", "d4", "nc")


@dataclass(frozen=True)
class InstanceConfig:
    """The (k, notion, measure, distance) configuration of one fuzz case."""

    seed: int  #: the seed the instance was generated from
    k: int  #: anonymity parameter, 1 ≤ k ≤ n
    notion: str  #: notion for the end-to-end API call
    measure: str  #: loss measure name
    distance: str  #: agglomerative cluster distance name
    expander: str  #: (k,1) stage: ``expansion`` or ``nearest``
    modified: bool  #: use Algorithm 2's shrink step
    #: Primary execution backend for the case.  The differential runner
    #: additionally executes every backend-aware algorithm under the
    #: *other* backend and demands bit-identical node matrices, so a
    #: case fails on the first cross-backend divergence regardless of
    #: which backend is primary.
    backend: str = "python"


@dataclass(frozen=True)
class Instance:
    """One self-contained verification case: a table plus its config."""

    table: Table
    config: InstanceConfig

    @property
    def num_records(self) -> int:
        """Number of records in the instance's table."""
        return self.table.num_records

    def encoded(self) -> EncodedTable:
        """Encode the table (built fresh; instances stay immutable)."""
        return EncodedTable(self.table)

    def model(self, encoded: EncodedTable | None = None) -> CostModel:
        """Cost model binding the configured measure to the table."""
        enc = encoded if encoded is not None else self.encoded()
        return CostModel(enc, get_measure(self.config.measure))

    def is_laminar(self) -> bool:
        """Whether every attribute's collection is laminar."""
        return all(c.is_laminar for c in self.table.schema.collections)

    def describe(self) -> str:
        """Compact human-readable dump (used in failure reports)."""
        schema = self.table.schema
        lines = [
            f"seed={self.config.seed} k={self.config.k} "
            f"notion={self.config.notion} measure={self.config.measure} "
            f"distance={self.config.distance} "
            f"expander={self.config.expander} "
            f"modified={self.config.modified} "
            f"backend={self.config.backend}",
            f"{self.table.num_records} records × "
            f"{schema.num_attributes} attributes",
        ]
        for coll in schema.collections:
            kind = "laminar" if coll.is_laminar else "non-laminar"
            subsets = ", ".join(
                coll.node_label(n) for n in range(coll.num_nodes)
            )
            lines.append(
                f"  {coll.attribute.name}: {kind}, nodes [{subsets}]"
            )
        for row in self.table.rows:
            lines.append("  (" + ", ".join(row) + ")")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# random schema pieces
# ---------------------------------------------------------------------- #


def random_collection(
    rng: np.random.Generator, name: str
) -> SubsetCollection:
    """A random generalization collection over a random small domain.

    Draws one of four shapes: suppression-only, a laminar partition into
    contiguous groups, a two-level nested laminar hierarchy, or (for
    integer domains) the full interval collection — the one non-laminar
    regime the library supports.
    """
    style = rng.choice(("suppression", "partition", "nested", "intervals"))
    if style == "intervals":
        m = int(rng.integers(2, 6))
        low = int(rng.integers(0, 10))
        att = integer_attribute(name, low, low + m - 1)
        return IntervalCollection(att)

    m = int(rng.integers(2, 7))
    values = [f"{name}{i}" for i in range(m)]
    att = Attribute(name, values)
    if style == "suppression" or m < 3:
        return SubsetCollection(att)

    # A random composition of m into contiguous groups (always laminar).
    def random_cuts(lo: int, hi: int) -> list[list[str]]:
        groups = []
        start = lo
        while start < hi:
            width = int(rng.integers(1, hi - start + 1))
            groups.append(values[start : start + width])
            start += width
        return groups

    level1 = random_cuts(0, m)
    subsets = [g for g in level1 if len(g) > 1]
    if style == "nested":
        # Refine each level-1 group with a nested second level.
        for group in level1:
            if len(group) > 2:
                lo = values.index(group[0])
                subsets.extend(
                    g for g in random_cuts(lo, lo + len(group)) if len(g) > 1
                )
    return SubsetCollection(att, subsets)


def random_schema(rng: np.random.Generator) -> Schema:
    """A random 1–3-attribute schema of random collections."""
    r = int(rng.integers(1, 4))
    return Schema([random_collection(rng, f"a{j}") for j in range(r)])


def random_table(
    rng: np.random.Generator, schema: Schema, num_records: int
) -> Table:
    """A random table over ``schema``.

    Values are drawn from a random *skewed* distribution per attribute
    (uniform sampling rarely produces the duplicate-heavy tables where
    tie and degree bugs live), and with small probability a random row
    is duplicated wholesale.
    """
    columns = []
    for coll in schema.collections:
        m = coll.attribute.size
        weights = rng.dirichlet(np.full(m, 0.7))
        codes = rng.choice(m, size=num_records, p=weights)
        columns.append([coll.attribute.values[c] for c in codes])
    rows = [tuple(col[i] for col in columns) for i in range(num_records)]
    for i in range(num_records):
        if num_records > 1 and rng.random() < 0.15:
            rows[i] = rows[int(rng.integers(0, num_records))]
    return Table(schema, rows)


def random_instance(
    seed: int, min_records: int = 4, max_records: int = 18
) -> Instance:
    """The fuzz instance of ``seed`` — deterministic, collision-free.

    Table sizes stay small (default ≤ 18 records) because the
    differential runner executes every registered algorithm *plus* the
    O(n³) reference implementations and the per-edge naive matching
    oracle on each instance.
    """
    rng = np.random.default_rng(seed)
    schema = random_schema(rng)
    n = int(rng.integers(min_records, max_records + 1))
    table = random_table(rng, schema, n)

    k = int(rng.integers(1, min(n, 5) + 1))
    if rng.random() < 0.05:
        k = n  # the k = n edge occasionally, on purpose
    laminar = all(c.is_laminar for c in schema.collections)
    measures = [
        m for m in INSTANCE_MEASURES if laminar or m != "tree"
    ]
    config = InstanceConfig(
        seed=seed,
        k=k,
        notion=str(rng.choice(INSTANCE_NOTIONS)),
        measure=str(rng.choice(measures)),
        distance=str(rng.choice(INSTANCE_DISTANCES)),
        expander=str(rng.choice(("expansion", "nearest"))),
        modified=bool(rng.random() < 0.3),
    )
    return Instance(table=table, config=config)


# ---------------------------------------------------------------------- #
# shrinking
# ---------------------------------------------------------------------- #


def _with_rows(instance: Instance, indices: Sequence[int]) -> Instance:
    table = instance.table.subset(list(indices))
    k = min(instance.config.k, table.num_records)
    return Instance(table=table, config=replace(instance.config, k=k))


def _without_attribute(instance: Instance, j: int) -> Instance:
    schema = instance.table.schema
    collections = [
        c for i, c in enumerate(schema.collections) if i != j
    ]
    new_schema = Schema(collections)
    rows = [
        tuple(v for i, v in enumerate(row) if i != j)
        for row in instance.table.rows
    ]
    return Instance(
        table=Table(new_schema, rows), config=instance.config
    )


def shrink_instance(
    instance: Instance,
    still_fails: Callable[[Instance], bool],
    max_checks: int = 150,
) -> Instance:
    """Greedily minimize a failing instance.

    Repeatedly tries (in order): deleting chunks of rows (halves, then
    quarters, then single rows), deleting whole attributes, and lowering
    k — keeping any change for which ``still_fails`` remains true.  The
    predicate is budgeted by ``max_checks`` calls; the best instance
    found so far is returned when the budget runs out or no single
    change can shrink further.
    """
    checks = 0

    def fails(candidate: Instance) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        try:
            return still_fails(candidate)
        except Exception:
            # A candidate that crashes the checker is not a cleaner
            # counterexample of the *original* failure; skip it.
            return False

    current = instance
    progress = True
    while progress and checks < max_checks:
        progress = False

        # Row deletion, coarse to fine.
        n = current.num_records
        for chunk in (n // 2, n // 4, 1):
            if chunk < 1 or current.num_records <= 1:
                continue
            start = 0
            while start < current.num_records and checks < max_checks:
                keep = [
                    i
                    for i in range(current.num_records)
                    if not (start <= i < start + chunk)
                ]
                if not keep:
                    break
                candidate = _with_rows(current, keep)
                if fails(candidate):
                    current = candidate
                    progress = True
                else:
                    start += chunk

        # Attribute deletion.
        j = 0
        while current.table.schema.num_attributes > 1 and checks < max_checks:
            if j >= current.table.schema.num_attributes:
                break
            candidate = _without_attribute(current, j)
            if fails(candidate):
                current = candidate
                progress = True
            else:
                j += 1

        # Lower k.
        while current.config.k > 1 and checks < max_checks:
            candidate = Instance(
                table=current.table,
                config=replace(current.config, k=current.config.k - 1),
            )
            if fails(candidate):
                current = candidate
                progress = True
            else:
                break

    return current
