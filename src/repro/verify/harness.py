"""The fuzzing loop: seeded cases, budgets, shrinking, replay commands.

:func:`fuzz` drives everything: it derives one deterministic case seed
per iteration (``master_seed + i``), generates the instance, runs the
structural invariants and the full differential battery, and collects
failures.  Every failure carries a shrunk minimal instance and an exact
replay command — because case ``i`` of master seed ``s`` is case ``0``
of master seed ``s + i``, the printed

    repro-anon fuzz --seed <case_seed> --max-cases 1

re-executes precisely the failing case, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.backend import resolve_backend
from repro.runtime import Timer
from repro.verify.differential import differential_check
from repro.verify.generators import (
    Instance,
    random_instance,
    shrink_instance,
)
from repro.verify.invariants import (
    Violation,
    check_closure_algebra,
    check_measure_soundness,
)

#: Default wall-clock budget when neither a budget nor a case count is given.
DEFAULT_BUDGET_SECONDS = 10.0


def check_case(instance: Instance) -> list[Violation]:
    """The complete invariant + differential battery for one instance."""
    enc = instance.encoded()
    rng = np.random.default_rng(instance.config.seed)
    violations = check_closure_algebra(enc, rng)
    violations += check_measure_soundness(instance.model(enc))
    violations += differential_check(instance)
    return violations


@dataclass(frozen=True)
class FuzzFailure:
    """One failing fuzz case, ready to replay and debug."""

    case_seed: int  #: seed that regenerates the failing instance
    violations: tuple[Violation, ...]  #: everything that broke
    shrunk: Instance  #: minimized instance still exhibiting a failure
    backend: str = "python"  #: primary backend the case ran under

    @property
    def replay_command(self) -> str:
        """Shell command that re-executes exactly this case."""
        cmd = f"repro-anon fuzz --seed {self.case_seed} --max-cases 1"
        if self.backend != "python":
            cmd += f" --backend {self.backend}"
        return cmd

    def format(self) -> str:
        """Multi-line failure report."""
        lines = [
            f"FAIL case seed {self.case_seed}: "
            f"{len(self.violations)} violation(s)"
        ]
        for v in self.violations:
            lines.append(f"  {v}")
        lines.append(f"  replay: {self.replay_command}")
        lines.append("  shrunk instance:")
        for line in self.shrunk.describe().splitlines():
            lines.append(f"    {line}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz` run."""

    seed: int  #: the master seed
    cases_run: int = 0  #: how many cases executed
    elapsed_seconds: float = 0.0  #: wall clock spent
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no case failed."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable report."""
        status = "OK" if self.ok else f"{len(self.failures)} FAILING CASE(S)"
        lines = [
            f"fuzz seed={self.seed}: {self.cases_run} cases in "
            f"{self.elapsed_seconds:.1f}s — {status}"
        ]
        for failure in self.failures:
            lines.append(failure.format())
        return "\n".join(lines)


def _shrink_failure(
    case_seed: int, instance: Instance, violations: list[Violation]
) -> FuzzFailure:
    failing_invariants = {v.invariant for v in violations}

    def still_fails(candidate: Instance) -> bool:
        found = check_case(candidate)
        return any(v.invariant in failing_invariants for v in found)

    shrunk = shrink_instance(instance, still_fails)
    return FuzzFailure(
        case_seed=case_seed,
        violations=tuple(violations),
        shrunk=shrunk,
        backend=instance.config.backend,
    )


def fuzz(
    seed: int,
    budget_seconds: float | None = None,
    max_cases: int | None = None,
    max_failures: int = 3,
    on_case: Callable[[int, int, list[Violation]], None] | None = None,
    backend: str | None = None,
) -> FuzzReport:
    """Run the fuzzing harness.

    Parameters
    ----------
    seed:
        Master seed.  Case ``i`` uses seed ``seed + i``, so any failing
        case seed is itself a valid master seed whose first case is the
        failure — the basis of the replay command.
    budget_seconds:
        Stop starting new cases once this much wall clock has elapsed.
        When both this and ``max_cases`` are ``None``, a default budget
        of :data:`DEFAULT_BUDGET_SECONDS` applies.
    max_cases:
        Hard cap on the number of cases.
    max_failures:
        Stop early after this many distinct failing cases (each failure
        triggers an expensive shrinking phase).
    on_case:
        Optional progress callback ``(case_index, case_seed, violations)``.
    backend:
        Primary execution backend for every case
        (:func:`repro.core.backend.resolve_backend` applies).  The
        differential battery cross-checks backend-aware algorithms
        against the other backend either way; the primary choice decides
        which side the invariant checks and the end-to-end API call run
        on, and is preserved in each failure's replay command.

    Returns
    -------
    A :class:`FuzzReport`; ``report.ok`` tells whether all cases passed.
    """
    if budget_seconds is None and max_cases is None:
        budget_seconds = DEFAULT_BUDGET_SECONDS
    resolved_backend = resolve_backend(backend)
    timer = Timer().__enter__()
    report = FuzzReport(seed=seed)
    i = 0
    while True:
        if max_cases is not None and i >= max_cases:
            break
        if (
            budget_seconds is not None
            and timer.elapsed() >= budget_seconds
            and i > 0
        ):
            break
        case_seed = seed + i
        instance = random_instance(case_seed)
        if resolved_backend != instance.config.backend:
            instance = Instance(
                table=instance.table,
                config=replace(instance.config, backend=resolved_backend),
            )
        violations = check_case(instance)
        if on_case is not None:
            on_case(i, case_seed, violations)
        if violations:
            report.failures.append(
                _shrink_failure(case_seed, instance, violations)
            )
        i += 1
        report.cases_run = i
        if len(report.failures) >= max_failures:
            break
    report.elapsed_seconds = timer.elapsed()
    return report
