"""Disjoint-set (union–find) with path compression and union by size.

Used by the forest algorithm's Borůvka-style phase 1, where components
of size < k repeatedly attach themselves to their nearest neighbour.
"""

from __future__ import annotations


class UnionFind:
    """Disjoint sets over the integers ``0..n-1``."""

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"number of elements must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._count = n

    def find(self, x: int) -> int:
        """Canonical representative of x's set (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of a and b; return False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether a and b are in the same set."""
        return self.find(a) == self.find(b)

    def size_of(self, x: int) -> int:
        """Size of the set containing x."""
        return self._size[self.find(x)]

    @property
    def num_sets(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def groups(self) -> dict[int, list[int]]:
        """Mapping root -> sorted members, for all sets."""
        out: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            out.setdefault(self.find(x), []).append(x)
        return out

    def __len__(self) -> int:
        return len(self._parent)
