"""Small general-purpose data structures used by the algorithms."""

from repro.structures.union_find import UnionFind

__all__ = ["UnionFind"]
