"""Flight recorder: a bounded ring of recent request summaries.

Aggregates (counters, windows, SLO burn rates) say *that* the serving
path degraded; the flight recorder keeps the *evidence* — the last N
per-request summaries and error envelopes — so the first breach of an
SLO can be debugged from the dump it triggered instead of from a
reproduction attempt.  Three ways out of the ring:

- :meth:`snapshot` — served live on ``GET /debugz``;
- :meth:`dump` — atomic file write (tmp + ``os.replace``), fired once
  per SLO breach edge and from the chaos drill;
- the ring itself simply forgetting: fixed capacity, oldest-first
  eviction, with an explicit ``dropped`` tally so a dump is honest
  about what it no longer holds.

Entries are plain JSON-ready dicts.  The recorder never touches the
wall clock — the caller's injectable clock stamps entries, keeping
dumps deterministic under fake clocks.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Mapping

from repro.obs.tracer import Clock

__all__ = [
    "FLIGHT_VERSION",
    "FlightRecorder",
]

#: Schema marker on snapshots and dump files.
FLIGHT_VERSION = 1


class FlightRecorder:
    """Thread-safe bounded ring of recent observation entries."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        clock: Clock = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._seq = 0
        self._dropped = 0

    def record(self, kind: str, summary: Mapping[str, Any]) -> int:
        """Append one entry; returns its monotonically increasing seq.

        ``kind`` tags the entry family (``"request"``, ``"error"``,
        ``"breach"``); ``summary`` is copied so later caller mutation
        cannot rewrite history.
        """
        with self._lock:
            self._seq += 1
            if len(self._entries) == self.capacity:
                self._dropped += 1
            self._entries.append(
                {
                    "seq": self._seq,
                    "at": float(self.clock()),
                    "kind": str(kind),
                    "summary": dict(summary),
                }
            )
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of the ring, oldest entry first."""
        with self._lock:
            return {
                "v": FLIGHT_VERSION,
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self._dropped,
                "entries": [dict(entry) for entry in self._entries],
            }

    def dump(self, path: "str | os.PathLike[str]") -> Dict[str, Any]:
        """Write the snapshot atomically; returns what was written.

        Write-to-temp then ``os.replace`` (the ``write_chrome_trace``
        idiom): a reader never sees a half-written dump, and a crash
        mid-dump leaves any previous dump intact.
        """
        snap = self.snapshot()
        target = os.fspath(path)
        tmp = f"{target}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(snap, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        return snap
