"""Prometheus text exposition for metric snapshots.

Renders a v1 or v2 (windowed) snapshot to the Prometheus text format
(version 0.0.4) so a stock scraper can read ``GET /metricz`` without
any adapter.  Mapping choices:

- counters → ``repro_<name>_total``;
- gauges → ``repro_<name>``;
- log2 histograms → cumulative ``_bucket{le="2**e"}`` series plus
  ``_sum``/``_count`` (the upper bucket edge is exact — bucket ``e``
  holds ``(2**(e-1), 2**e]`` — so no precision is lost in translation);
- v2 window block → the same families labelled ``{window="N"}``, plus
  ``_rate`` series and summary-style ``{quantile="..."}`` samples.

Dots become underscores (Prometheus name charset); output is sorted at
every level, so rendering the same snapshot twice is byte-identical —
the property every artifact in this repo is held to.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
]

#: Value for the ``Content-Type`` header when serving this rendering.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantile label per window-snapshot key ("p50" → "0.5").
_QUANTILE_LABELS = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}


def _metric_name(name: str) -> str:
    """Sanitize a dotted metric name into the Prometheus charset."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _fmt(value: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels(**labels: str) -> str:
    """Render a label set (sorted) or the empty string."""
    items = {k: v for k, v in labels.items() if v}
    if not items:
        return ""
    body = ",".join(f'{k}="{items[k]}"' for k in sorted(items))
    return "{" + body + "}"


def _render_histogram(
    lines: List[str],
    name: str,
    snap: Mapping[str, Any],
    *,
    window: str = "",
) -> None:
    """Emit one histogram family as cumulative le-buckets + sum/count."""
    base = _metric_name(name)
    if not window:
        lines.append(f"# TYPE {base} histogram")
    cumulative = 0
    buckets = dict(snap.get("buckets", {}))
    for exp in sorted(int(key) for key in buckets):
        cumulative += int(buckets[str(exp)])
        # The underflow bucket holds values <= 0: its upper edge is 0.
        edge = "0" if exp < -30 else _fmt(2.0**exp)
        labels = _labels(le=edge, window=window)
        lines.append(f"{base}_bucket{labels} {cumulative}")
    inf_labels = _labels(le="+Inf", window=window)
    count = int(snap.get("count", 0))
    lines.append(f"{base}_bucket{inf_labels} {count}")
    suffix = _labels(window=window)
    lines.append(f"{base}_sum{suffix} {_fmt(float(snap.get('sum', 0.0)))}")
    lines.append(f"{base}_count{suffix} {count}")


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a metrics snapshot (v1 or v2) to Prometheus text format."""
    lines: List[str] = []
    counters: Dict[str, float] = dict(snapshot.get("counters", {}))
    for name in sorted(counters):
        base = _metric_name(name)
        lines.append(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total {_fmt(counters[name])}")
    gauges: Dict[str, float] = dict(snapshot.get("gauges", {}))
    for name in sorted(gauges):
        base = _metric_name(name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_fmt(gauges[name])}")
    histograms: Dict[str, Any] = dict(snapshot.get("histograms", {}))
    for name in sorted(histograms):
        _render_histogram(lines, name, histograms[name])

    window = snapshot.get("window")
    if isinstance(window, Mapping):
        tag = _fmt(float(window.get("seconds", 0.0)))
        window_counters = dict(window.get("counters", {}))
        for name in sorted(window_counters):
            base = _metric_name(name)
            labels = _labels(window=tag)
            lines.append(
                f"{base}_window_total{labels} {_fmt(window_counters[name])}"
            )
        rates = dict(window.get("rates", {}))
        for name in sorted(rates):
            base = _metric_name(name)
            labels = _labels(window=tag)
            lines.append(f"{base}_rate{labels} {_fmt(rates[name])}")
        window_gauges = dict(window.get("gauges", {}))
        for name in sorted(window_gauges):
            base = _metric_name(name)
            labels = _labels(window=tag)
            lines.append(f"{base}{labels} {_fmt(window_gauges[name])}")
        window_histograms = dict(window.get("histograms", {}))
        for name in sorted(window_histograms):
            _render_histogram(
                lines, name, window_histograms[name], window=tag
            )
        quantiles = dict(window.get("quantiles", {}))
        for name in sorted(quantiles):
            base = _metric_name(name)
            per_label = dict(quantiles[name])
            for key in sorted(per_label):
                value = per_label[key]
                if value is None:
                    continue
                labels = _labels(
                    quantile=_QUANTILE_LABELS.get(key, key), window=tag
                )
                lines.append(f"{base}{labels} {_fmt(value)}")
    return "\n".join(lines) + "\n"
