"""Counters, gauges and histograms for algorithm work units.

Deterministic by construction: a :class:`MetricsRegistry` never reads a
clock or RNG — every number in a snapshot comes from an explicit
``count``/``gauge``/``observe`` call at an instrumentation point, so two
runs over the same inputs produce byte-identical snapshots (histograms
of *timings* are the caller's choice and the one deliberate exception).

Instrumented code never holds a registry reference.  It calls the
module-level helpers :func:`count`, :func:`gauge` and :func:`observe`,
which fan out to whatever registries are active on the context-local
stack (see :func:`metrics_scope`).  With no scope active the helpers
are a single ``ContextVar`` read — cheap enough for the checkpointed
hot loops, and exactly zero allocation.

The stack (rather than a single slot) is what makes per-cell deltas
possible: the experiment runner pushes a fresh registry around each
grid cell while the run-level registry stays active underneath, so one
increment lands in both and the cell snapshot is a true delta without
any subtraction.

Histograms use fixed log2-scale buckets (one bucket per power of two)
plus exact count/sum/min/max, so merging snapshots across processes is
lossless addition.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Mapping, Tuple

__all__ = [
    "METRICS_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "active_registries",
    "count",
    "gauge",
    "histogram_quantile",
    "install_registry",
    "metrics_scope",
    "observe",
]

#: Schema marker embedded in every snapshot.
METRICS_VERSION = 1

#: Histogram bucket exponents are clamped to this range; values outside
#: land in the edge buckets.  2**-30 ≈ 1 ns, 2**30 ≈ 1e9 — wide enough
#: for both timings (seconds) and work counts.
_MIN_EXP = -30
_MAX_EXP = 30


def _bucket_exponent(value: float) -> int:
    """Exponent ``e`` such that ``2**(e-1) < value <= 2**e``, clamped.

    Non-positive values land in the underflow bucket ``_MIN_EXP - 1``.
    """
    if value <= 0.0:
        return _MIN_EXP - 1
    mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
    if mantissa == 0.5:  # exact power of two: 2**(e-1) belongs below
        exponent -= 1
    return max(_MIN_EXP, min(_MAX_EXP, exponent))


class Histogram:
    """Log2-bucketed distribution with exact count/sum/min/max.

    Buckets are keyed by exponent: bucket ``e`` holds values in
    ``(2**(e-1), 2**e]``.  Exact aggregates ride along so means are
    precise even though the shape is quantized.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        exp = _bucket_exponent(value)
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state (bucket keys as strings, sorted)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {
                str(exp): self.buckets[exp] for exp in sorted(self.buckets)
            },
        }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot produced by :meth:`snapshot` into this one."""
        self.count += int(snap.get("count", 0))
        self.total += float(snap.get("sum", 0.0))
        low, high = snap.get("min"), snap.get("max")
        if low is not None and float(low) < self.minimum:
            self.minimum = float(low)
        if high is not None and float(high) > self.maximum:
            self.maximum = float(high)
        for key, n in dict(snap.get("buckets", {})).items():
            exp = int(key)
            self.buckets[exp] = self.buckets.get(exp, 0) + int(n)


def histogram_quantile(snap: Mapping[str, Any], q: float) -> float | None:
    """Deterministic quantile estimate from a histogram snapshot.

    Walks the sorted log2 buckets to the bucket containing the
    ``ceil(q * count)``-th sample and returns that bucket's upper edge
    (``2**exp``), clamped into the exact ``[min, max]`` range so the
    estimate never leaves the observed support.  Same snapshot, same
    ``q`` → same answer, on any machine — which is what lets fake-clock
    tests assert p99 values byte-for-byte.

    Returns ``None`` for an empty histogram.  ``q`` is clamped to
    ``[0, 1]``.
    """
    total = int(snap.get("count", 0))
    if total <= 0:
        return None
    q = max(0.0, min(1.0, float(q)))
    rank = max(1, math.ceil(q * total))
    seen = 0
    edge: float = 0.0
    for key in sorted(int(k) for k in dict(snap.get("buckets", {}))):
        seen += int(snap["buckets"][str(key)])
        if seen >= rank:
            # Underflow bucket (exponent _MIN_EXP - 1) holds values <= 0.
            edge = 0.0 if key < _MIN_EXP else float(2.0**key)
            break
    low, high = snap.get("min"), snap.get("max")
    if low is not None:
        edge = max(edge, float(low))
    if high is not None:
        edge = min(edge, float(high))
    return edge


class MetricsRegistry:
    """Thread-safe store of named counters, gauges and histograms.

    A plain lock guards every mutation: experiment cells may run on
    worker threads, and losing increments to a read-modify-write race
    would make snapshots nondeterministic — the one thing this module
    promises not to be.
    """

    #: False only on :class:`NullRegistry`; lets scopes skip no-ops.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- writes ------------------------------------------------------- #

    def inc(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- reads -------------------------------------------------------- #

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready, key-sorted snapshot of everything recorded."""
        with self._lock:
            return {
                "v": METRICS_VERSION,
                "counters": {
                    name: self._counters[name]
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name] for name in sorted(self._gauges)
                },
                "histograms": {
                    name: self._histograms[name].snapshot()
                    for name in sorted(self._histograms)
                },
            }

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this one.

        Counters and histograms add; gauges are last-write-wins.
        """
        with self._lock:
            for name, value in dict(snap.get("counters", {})).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in dict(snap.get("gauges", {})).items():
                self._gauges[name] = value
            for name, hist_snap in dict(snap.get("histograms", {})).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge(hist_snap)


class NullRegistry(MetricsRegistry):
    """Registry that records nothing; activating it is a no-op."""

    enabled = False

    def inc(self, name: str, n: float = 1) -> None:  # noqa: D102
        pass

    def set_gauge(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def observe(self, name: str, value: float) -> None:  # noqa: D102
        pass


#: Context-local stack of active registries.  A tuple so pushes copy
#: (cheap at this depth) and forked worker processes inherit a frozen,
#: consistent view.
_REGISTRIES: ContextVar[Tuple[MetricsRegistry, ...]] = ContextVar(
    "repro_obs_registries", default=()
)


def active_registries() -> Tuple[MetricsRegistry, ...]:
    """The registries currently receiving metric writes (may be empty)."""
    return _REGISTRIES.get()


@contextmanager
def metrics_scope(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Push ``registry`` onto the active stack for the ``with`` body.

    A :class:`NullRegistry` is not pushed at all, so the off path keeps
    its empty-stack fast path.
    """
    if not registry.enabled:
        yield registry
        return
    token = _REGISTRIES.set(_REGISTRIES.get() + (registry,))
    try:
        yield registry
    finally:
        _REGISTRIES.reset(token)


def install_registry(registry: MetricsRegistry) -> None:
    """Permanently add ``registry`` to the active stack.

    For process-pool workers (where there is no enclosing ``with`` to
    scope the registry); the stack entry lives until the process exits.
    """
    if registry.enabled:
        # repro: allow[REP013] deliberate worker-lifetime installation; the registry must outlive this call and dies with the process
        _REGISTRIES.set(_REGISTRIES.get() + (registry,))


def count(name: str, n: float = 1) -> None:
    """Add ``n`` to counter ``name`` in every active registry."""
    registries = _REGISTRIES.get()
    if registries:
        for registry in registries:
            registry.inc(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` in every active registry."""
    registries = _REGISTRIES.get()
    if registries:
        for registry in registries:
            registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` in every active registry."""
    registries = _REGISTRIES.get()
    if registries:
        for registry in registries:
            registry.observe(name, value)
