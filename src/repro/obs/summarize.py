"""Human-readable roll-ups of traces and metrics snapshots.

Sits one layer above the rest of ``repro.obs`` (mirroring the
``runtime.fallback`` carve-out) because it renders through
``repro.report`` — the collection machinery in ``tracer``/``metrics``
stays importable from the lowest layers, while this module is only
pulled in by the CLI.  Keep it out of ``repro.obs.__init__`` for the
same reason.

The output is the profiling deliverable: a per-phase time/work table
(span name → count, total/mean duration, checkpoint hits) plus counter,
gauge and histogram tables from a :class:`~repro.obs.MetricsRegistry`
snapshot.

Accepts both snapshot schemas (the ``v`` field): v1 (cumulative only)
and v2 (:meth:`~repro.obs.WindowedRegistry.window_snapshot`, which adds
a ``window`` block of in-window sums, rates and quantiles) — the same
both-versions posture as the bench report's v1→v2 loader shim.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.report import format_table

__all__ = [
    "normalize_snapshot",
    "summarize",
    "summarize_flight",
    "summarize_metrics",
    "summarize_spans",
]


def normalize_snapshot(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """Coerce a v1 or v2 metrics snapshot into the v2 shape.

    v1 snapshots (no ``window`` key) gain an empty ``window`` block so
    downstream renderers can branch on content, not on version — the
    loader-shim pattern the bench schema established.  Unknown future
    versions are passed through untouched beyond the same guarantee.
    """
    version = int(snapshot.get("v", 1))
    normalized: Dict[str, Any] = {
        "v": version,
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": dict(snapshot.get("histograms", {})),
        "window": dict(snapshot.get("window", {})),
    }
    return normalized


def summarize_spans(events: Sequence[Mapping[str, Any]]) -> str:
    """Per-phase time/work table from span records.

    Groups spans by name; ``hits`` is the total number of cooperative
    checkpoints observed inside spans of that name (the work proxy that
    piggybacks on the existing hot-loop hooks).
    """
    grouped: Dict[str, Dict[str, float]] = {}
    for event in events:
        name = str(event.get("name", "?"))
        stats = grouped.setdefault(
            name, {"spans": 0, "seconds": 0.0, "hits": 0}
        )
        stats["spans"] += 1
        stats["seconds"] += float(event.get("dur", 0.0))
        stats["hits"] += sum(dict(event.get("sites", {})).values())
    rows: List[List[object]] = []
    for name in sorted(grouped, key=lambda n: -grouped[n]["seconds"]):
        stats = grouped[name]
        spans = int(stats["spans"])
        rows.append(
            [
                name,
                spans,
                stats["seconds"],
                (stats["seconds"] / spans) * 1e3 if spans else 0.0,
                int(stats["hits"]),
            ]
        )
    if not rows:
        return "(no spans recorded)"
    return format_table(
        ["phase", "spans", "total s", "mean ms", "ckpt hits"],
        rows,
        precision=3,
    )


def summarize_metrics(snapshot: Mapping[str, Any]) -> str:
    """Counter / gauge / histogram tables from a v1 or v2 snapshot.

    A v2 (windowed) snapshot additionally gets an in-window table of
    counter sums with per-second rates, and a quantile table per
    windowed histogram.
    """
    snapshot = normalize_snapshot(snapshot)
    sections: List[str] = []
    counters = dict(snapshot.get("counters", {}))
    if counters:
        sections.append(
            format_table(
                ["counter", "value"],
                [[name, counters[name]] for name in sorted(counters)],
                precision=0,
            )
        )
    gauges = dict(snapshot.get("gauges", {}))
    if gauges:
        sections.append(
            format_table(
                ["gauge", "value"],
                [[name, gauges[name]] for name in sorted(gauges)],
                precision=4,
            )
        )
    histograms = dict(snapshot.get("histograms", {}))
    if histograms:
        rows = []
        for name in sorted(histograms):
            hist = histograms[name]
            count = int(hist.get("count", 0))
            total = float(hist.get("sum", 0.0))
            rows.append(
                [
                    name,
                    count,
                    total,
                    total / count if count else 0.0,
                    hist.get("min"),
                    hist.get("max"),
                ]
            )
        sections.append(
            format_table(
                ["histogram", "count", "sum", "mean", "min", "max"],
                rows,
                precision=4,
            )
        )
    window = dict(snapshot.get("window", {}))
    window_counters = dict(window.get("counters", {}))
    if window_counters:
        seconds = float(window.get("seconds", 0.0))
        rates = dict(window.get("rates", {}))
        sections.append(
            format_table(
                [f"counter (last {seconds:g}s)", "sum", "per second"],
                [
                    [name, window_counters[name], rates.get(name, 0.0)]
                    for name in sorted(window_counters)
                ],
                precision=3,
            )
        )
    quantiles = dict(window.get("quantiles", {}))
    if quantiles:
        rows = []
        for name in sorted(quantiles):
            per = dict(quantiles[name])
            rows.append(
                [name, per.get("p50"), per.get("p90"), per.get("p99")]
            )
        sections.append(
            format_table(
                ["windowed histogram", "p50", "p90", "p99"],
                rows,
                precision=4,
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def summarize_flight(flight: Mapping[str, Any]) -> str:
    """Recent-entries table from a flight-recorder snapshot or dump."""
    entries = list(flight.get("entries", []))
    header = (
        f"flight ring: {len(entries)} held, "
        f"{int(flight.get('recorded', len(entries)))} recorded, "
        f"{int(flight.get('dropped', 0))} dropped"
    )
    if not entries:
        return header + "\n(no entries)"
    rows: List[List[object]] = []
    for entry in entries:
        summary = dict(entry.get("summary", {}))
        detail = ", ".join(
            f"{key}={summary[key]}"
            for key in sorted(summary)
            if key in ("status", "elapsed_seconds", "request_id")
        )
        rows.append(
            [
                int(entry.get("seq", 0)),
                float(entry.get("at", 0.0)),
                str(entry.get("kind", "?")),
                detail,
            ]
        )
    return header + "\n" + format_table(
        ["seq", "at", "kind", "summary"], rows, precision=3
    )


def summarize(
    events: Sequence[Mapping[str, Any]] = (),
    snapshot: Mapping[str, Any] | None = None,
    flight: Mapping[str, Any] | None = None,
) -> str:
    """Combined per-phase / metrics / flight report (each part optional)."""
    parts: List[str] = []
    if events:
        parts.append("Per-phase time/work\n" + summarize_spans(events))
    if snapshot is not None:
        parts.append("Metrics\n" + summarize_metrics(snapshot))
    if flight is not None:
        parts.append("Flight recorder\n" + summarize_flight(flight))
    if not parts:
        return "(nothing to summarize)"
    return "\n\n".join(parts)
