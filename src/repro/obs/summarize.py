"""Human-readable roll-ups of traces and metrics snapshots.

Sits one layer above the rest of ``repro.obs`` (mirroring the
``runtime.fallback`` carve-out) because it renders through
``repro.report`` — the collection machinery in ``tracer``/``metrics``
stays importable from the lowest layers, while this module is only
pulled in by the CLI.  Keep it out of ``repro.obs.__init__`` for the
same reason.

The output is the profiling deliverable: a per-phase time/work table
(span name → count, total/mean duration, checkpoint hits) plus counter,
gauge and histogram tables from a :class:`~repro.obs.MetricsRegistry`
snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.report import format_table

__all__ = ["summarize", "summarize_metrics", "summarize_spans"]


def summarize_spans(events: Sequence[Mapping[str, Any]]) -> str:
    """Per-phase time/work table from span records.

    Groups spans by name; ``hits`` is the total number of cooperative
    checkpoints observed inside spans of that name (the work proxy that
    piggybacks on the existing hot-loop hooks).
    """
    grouped: Dict[str, Dict[str, float]] = {}
    for event in events:
        name = str(event.get("name", "?"))
        stats = grouped.setdefault(
            name, {"spans": 0, "seconds": 0.0, "hits": 0}
        )
        stats["spans"] += 1
        stats["seconds"] += float(event.get("dur", 0.0))
        stats["hits"] += sum(dict(event.get("sites", {})).values())
    rows: List[List[object]] = []
    for name in sorted(grouped, key=lambda n: -grouped[n]["seconds"]):
        stats = grouped[name]
        spans = int(stats["spans"])
        rows.append(
            [
                name,
                spans,
                stats["seconds"],
                (stats["seconds"] / spans) * 1e3 if spans else 0.0,
                int(stats["hits"]),
            ]
        )
    if not rows:
        return "(no spans recorded)"
    return format_table(
        ["phase", "spans", "total s", "mean ms", "ckpt hits"],
        rows,
        precision=3,
    )


def summarize_metrics(snapshot: Mapping[str, Any]) -> str:
    """Counter / gauge / histogram tables from a registry snapshot."""
    sections: List[str] = []
    counters = dict(snapshot.get("counters", {}))
    if counters:
        sections.append(
            format_table(
                ["counter", "value"],
                [[name, counters[name]] for name in sorted(counters)],
                precision=0,
            )
        )
    gauges = dict(snapshot.get("gauges", {}))
    if gauges:
        sections.append(
            format_table(
                ["gauge", "value"],
                [[name, gauges[name]] for name in sorted(gauges)],
                precision=4,
            )
        )
    histograms = dict(snapshot.get("histograms", {}))
    if histograms:
        rows = []
        for name in sorted(histograms):
            hist = histograms[name]
            count = int(hist.get("count", 0))
            total = float(hist.get("sum", 0.0))
            rows.append(
                [
                    name,
                    count,
                    total,
                    total / count if count else 0.0,
                    hist.get("min"),
                    hist.get("max"),
                ]
            )
        sections.append(
            format_table(
                ["histogram", "count", "sum", "mean", "min", "max"],
                rows,
                precision=4,
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def summarize(
    events: Sequence[Mapping[str, Any]] = (),
    snapshot: Mapping[str, Any] | None = None,
) -> str:
    """Combined per-phase and metrics report (either part optional)."""
    parts: List[str] = []
    if events:
        parts.append("Per-phase time/work\n" + summarize_spans(events))
    if snapshot is not None:
        parts.append("Metrics\n" + summarize_metrics(snapshot))
    if not parts:
        return "(nothing to summarize)"
    return "\n\n".join(parts)
