"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`SLObjective` states what "good" means — a latency quantile
bound, a maximum error ratio, a maximum shed ratio — and
:class:`SLOMonitor` evaluates it against two windows of a
:class:`~repro.obs.windows.WindowedRegistry`: a *fast* window that
reacts quickly and a *slow* window that filters blips.  The burn rate
is how many times over budget the window is running (observed / target,
so ``1.0`` = exactly on target).  Following the multi-window
burn-rate discipline, status is:

- ``breach`` — both windows over their burn thresholds: the regression
  is real and sustained.
- ``warn``   — exactly one window over: either a fresh spike the slow
  window has not confirmed, or the lingering tail of a resolved one.
- ``ok``     — otherwise (including "no traffic yet": an empty window
  burns nothing).

Everything reads from window snapshots of the injectable-clock
registry, so a fake-clock test can walk an objective through
ok → warn → breach deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.obs.metrics import histogram_quantile
from repro.obs.windows import WindowedRegistry

__all__ = [
    "SLObjective",
    "SLOMonitor",
    "SLOResult",
    "default_objectives",
    "worst_status",
]

#: Severity order for :func:`worst_status`.
_STATUS_RANK = {"ok": 0, "warn": 1, "breach": 2}

#: Objective kinds understood by the evaluator.
_KINDS = ("latency_quantile", "error_ratio", "shed_ratio")


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective.

    ``kind`` selects the measurement: ``latency_quantile`` compares the
    windowed ``quantile`` of histogram ``metric`` against ``target``
    seconds; ``error_ratio`` and ``shed_ratio`` compare the ratio of
    ``bad`` counters (names, or prefix families ending in ``.``) over
    the ``total`` counter against a ``target`` ratio.  Burn thresholds
    follow the fast-window-reacts / slow-window-confirms split.
    """

    name: str
    kind: str
    target: float
    quantile: float = 0.99
    metric: str = "serve.request_seconds"
    total: str = "serve.requests"
    bad: Tuple[str, ...] = field(default_factory=tuple)
    fast_window: float = 60.0
    slow_window: float = 300.0
    fast_burn: float = 2.0
    slow_burn: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.target <= 0:
            raise ValueError("SLO target must be positive")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError("SLO windows must be positive")

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready description of the objective."""
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "quantile": self.quantile,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        }


@dataclass(frozen=True)
class SLOResult:
    """Outcome of evaluating one objective at one instant."""

    objective: SLObjective
    status: str
    fast_burn_rate: float
    slow_burn_rate: float
    fast_value: float
    slow_value: float

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready result (objective inlined for self-description)."""
        return {
            "objective": self.objective.to_json(),
            "status": self.status,
            "fast_burn_rate": self.fast_burn_rate,
            "slow_burn_rate": self.slow_burn_rate,
            "fast_value": self.fast_value,
            "slow_value": self.slow_value,
        }


def worst_status(results: Sequence[SLOResult]) -> str:
    """Aggregate status across results: the most severe one wins."""
    worst = "ok"
    for result in results:
        if _STATUS_RANK[result.status] > _STATUS_RANK[worst]:
            worst = result.status
    return worst


def default_objectives(
    *,
    latency_target: float = 0.5,
    latency_quantile: float = 0.99,
    error_target: float = 0.01,
    shed_target: float = 0.05,
    fast_window: float = 60.0,
    slow_window: float = 300.0,
) -> Tuple[SLObjective, ...]:
    """The serving path's stock objectives: p99 latency, errors, shed."""
    return (
        SLObjective(
            name="latency-p99",
            kind="latency_quantile",
            target=latency_target,
            quantile=latency_quantile,
            metric="serve.request_seconds",
            fast_window=fast_window,
            slow_window=slow_window,
        ),
        SLObjective(
            name="error-ratio",
            kind="error_ratio",
            target=error_target,
            bad=("serve.errors.",),
            total="serve.requests",
            fast_window=fast_window,
            slow_window=slow_window,
        ),
        SLObjective(
            name="shed-ratio",
            kind="shed_ratio",
            target=shed_target,
            bad=("serve.shed.",),
            total="serve.requests",
            fast_window=fast_window,
            slow_window=slow_window,
        ),
    )


def _bad_sum(
    counters: Mapping[str, float], bad: Tuple[str, ...]
) -> float:
    """Sum the in-window counters named by ``bad``.

    An entry ending in ``.`` is a prefix family (e.g. ``serve.shed.``
    sums every shed reason); anything else matches exactly.
    """
    total = 0.0
    for name, value in counters.items():
        for spec in bad:
            if name == spec or (spec.endswith(".") and name.startswith(spec)):
                total += float(value)
                break
    return total


def _measure(objective: SLObjective, snap: Mapping[str, Any]) -> float:
    """The objective's observed value over one window snapshot."""
    window = snap.get("window", {})
    if objective.kind == "latency_quantile":
        hist = dict(window.get("histograms", {})).get(objective.metric)
        if not hist:
            return 0.0
        value = histogram_quantile(hist, objective.quantile)
        return 0.0 if value is None else float(value)
    counters = dict(window.get("counters", {}))
    denominator = float(counters.get(objective.total, 0.0))
    if denominator <= 0:
        return 0.0
    return _bad_sum(counters, objective.bad) / denominator


class SLOMonitor:
    """Evaluate a set of objectives against a windowed registry."""

    def __init__(
        self,
        objectives: Sequence[SLObjective],
        registry: WindowedRegistry,
    ) -> None:
        self.objectives: Tuple[SLObjective, ...] = tuple(objectives)
        self.registry = registry

    def evaluate(self) -> List[SLOResult]:
        """One pass over every objective, reusing snapshots per window."""
        snaps: Dict[float, Dict[str, Any]] = {}

        def snap_for(seconds: float) -> Dict[str, Any]:
            if seconds not in snaps:
                snaps[seconds] = self.registry.window_snapshot(seconds)
            return snaps[seconds]

        results: List[SLOResult] = []
        for objective in self.objectives:
            fast_value = _measure(objective, snap_for(objective.fast_window))
            slow_value = _measure(objective, snap_for(objective.slow_window))
            fast_rate = fast_value / objective.target
            slow_rate = slow_value / objective.target
            fast_hot = fast_rate >= objective.fast_burn
            slow_hot = slow_rate >= objective.slow_burn
            if fast_hot and slow_hot:
                status = "breach"
            elif fast_hot or slow_hot:
                status = "warn"
            else:
                status = "ok"
            results.append(
                SLOResult(
                    objective=objective,
                    status=status,
                    fast_burn_rate=fast_rate,
                    slow_burn_rate=slow_rate,
                    fast_value=fast_value,
                    slow_value=slow_value,
                )
            )
        return results
