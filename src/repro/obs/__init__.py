"""repro.obs — structured tracing, metrics and profiling.

Zero-dependency, deterministic-by-default observability:

- :class:`Tracer` / :func:`span` / :func:`trace_scope` — nested spans
  with JSONL persistence and Chrome ``trace_event`` export, fed
  checkpoint-site tallies by the runtime's cooperative checkpoints.
- :class:`MetricsRegistry` / :func:`count` / :func:`observe` /
  :func:`gauge` / :func:`metrics_scope` — counters, gauges and
  log2-bucket histograms of algorithm work units.
- :class:`WindowedRegistry` — time-bucketed ring aggregation on the
  injectable clock: per-window rates, last gauges and merged
  histograms for "what happened in the last N seconds".
- :class:`SLOMonitor` / :class:`SLObjective` — declarative objectives
  evaluated as fast/slow multi-window burn rates.
- :class:`FlightRecorder` — bounded ring of recent request summaries,
  dumped atomically on SLO breach or on demand.
- :func:`render_prometheus` — Prometheus text exposition of any
  snapshot; :func:`append_obs_record` / :func:`load_obs_journal` — the
  ``OBS_*.jsonl`` snapshot journal.
- ``repro.obs.names`` — the checked-in metric/span name registry
  enforced by lint rule REP015.

Everything is off by default: with no scope active the helpers cost a
single ``ContextVar`` read, and :class:`NullTracer` /
:class:`NullRegistry` make "explicitly disabled" indistinguishable from
"never enabled".  ``repro.obs.summarize`` (the report renderer) is a
deliberate non-export — it lives in a higher layer; import it directly.
"""

from repro.obs.expo import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.obs.flight import (
    FLIGHT_VERSION,
    FlightRecorder,
)
from repro.obs.metrics import (
    METRICS_VERSION,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    active_registries,
    count,
    gauge,
    histogram_quantile,
    install_registry,
    metrics_scope,
    observe,
)
from repro.obs.names import (
    DYNAMIC_METRIC_PREFIXES,
    METRIC_NAMES,
    SPAN_NAMES,
    is_registered_metric,
    is_registered_span,
)
from repro.obs.slo import (
    SLObjective,
    SLOMonitor,
    SLOResult,
    default_objectives,
    worst_status,
)
from repro.obs.tracer import (
    TRACE_VERSION,
    Clock,
    NullTracer,
    Tracer,
    active_tracer,
    chrome_trace,
    load_trace,
    observe_site,
    span,
    trace_scope,
    write_chrome_trace,
)
from repro.obs.windows import (
    OBS_SCHEMA,
    WINDOW_VERSION,
    WindowedRegistry,
    append_obs_record,
    load_obs_journal,
)

__all__ = [
    "Clock",
    "DYNAMIC_METRIC_PREFIXES",
    "FLIGHT_VERSION",
    "METRICS_VERSION",
    "METRIC_NAMES",
    "OBS_SCHEMA",
    "PROMETHEUS_CONTENT_TYPE",
    "SPAN_NAMES",
    "TRACE_VERSION",
    "WINDOW_VERSION",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "SLOMonitor",
    "SLOResult",
    "SLObjective",
    "Tracer",
    "WindowedRegistry",
    "active_registries",
    "active_tracer",
    "append_obs_record",
    "chrome_trace",
    "count",
    "default_objectives",
    "gauge",
    "histogram_quantile",
    "install_registry",
    "is_registered_metric",
    "is_registered_span",
    "load_obs_journal",
    "load_trace",
    "metrics_scope",
    "observe",
    "observe_site",
    "render_prometheus",
    "span",
    "trace_scope",
    "worst_status",
    "write_chrome_trace",
]
