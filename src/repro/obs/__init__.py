"""repro.obs — structured tracing, metrics and profiling.

Zero-dependency, deterministic-by-default observability:

- :class:`Tracer` / :func:`span` / :func:`trace_scope` — nested spans
  with JSONL persistence and Chrome ``trace_event`` export, fed
  checkpoint-site tallies by the runtime's cooperative checkpoints.
- :class:`MetricsRegistry` / :func:`count` / :func:`observe` /
  :func:`gauge` / :func:`metrics_scope` — counters, gauges and
  log2-bucket histograms of algorithm work units.

Everything is off by default: with no scope active the helpers cost a
single ``ContextVar`` read, and :class:`NullTracer` /
:class:`NullRegistry` make "explicitly disabled" indistinguishable from
"never enabled".  ``repro.obs.summarize`` (the report renderer) is a
deliberate non-export — it lives in a higher layer; import it directly.
"""

from repro.obs.metrics import (
    METRICS_VERSION,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    active_registries,
    count,
    gauge,
    install_registry,
    metrics_scope,
    observe,
)
from repro.obs.tracer import (
    TRACE_VERSION,
    Clock,
    NullTracer,
    Tracer,
    active_tracer,
    chrome_trace,
    load_trace,
    observe_site,
    span,
    trace_scope,
    write_chrome_trace,
)

__all__ = [
    "Clock",
    "METRICS_VERSION",
    "TRACE_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Tracer",
    "active_registries",
    "active_tracer",
    "chrome_trace",
    "count",
    "gauge",
    "install_registry",
    "load_trace",
    "metrics_scope",
    "observe",
    "observe_site",
    "span",
    "trace_scope",
    "write_chrome_trace",
]
