"""Checked-in registry of every metric and span name in the codebase.

Metric names are stringly-typed: ``count("core.aglomerative.merges")``
(note the typo) silently records to a dead key and every dashboard,
SLO and cost model downstream reads zero forever.  This module is the
single source of truth that turns that silent failure into a lint
error: rule ``REP015`` (``repro.analysis.rules``) requires every
``count``/``gauge``/``observe``/``span`` call site to pass a literal
name found here, or an f-string whose literal prefix matches one of
:data:`DYNAMIC_METRIC_PREFIXES`.

Adding an instrumentation point is therefore a two-line change: the
call site plus one entry here — which is exactly the point, because
the diff makes new telemetry reviewable.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = [
    "DYNAMIC_METRIC_PREFIXES",
    "METRIC_NAMES",
    "SPAN_NAMES",
    "is_registered_metric",
    "is_registered_span",
]

#: Every literal counter / gauge / histogram name, sorted.
METRIC_NAMES: FrozenSet[str] = frozenset(
    {
        # core (agglomerative family, python + columnar backends)
        "core.agglomerative.bucket_evals",
        "core.agglomerative.bucket_pruned",
        "core.agglomerative.candidates_pruned",
        "core.agglomerative.candidates_scanned",
        "core.agglomerative.merges",
        "core.agglomerative.records_expelled",
        "core.agglomerative.row_rescans",
        "core.agglomerative.shrink_candidates",
        # experiments
        "experiments.cell_seconds",
        # matching
        "matching.hopcroft_karp.augmenting_paths",
        "matching.hopcroft_karp.path_steps",
        "matching.hopcroft_karp.phases",
        "matching.kuhn.augmenting_paths",
        "matching.kuhn.path_steps",
        # runtime
        "runtime.fallback.records_suppressed",
        "runtime.retry.attempts",
        "runtime.retry.retries",
        # serve — counters
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.recovered",
        "serve.cache.skipped_records",
        "serve.cache.store_failures",
        "serve.degraded",
        "serve.errors.internal",
        "serve.errors.request",
        "serve.execute.computed",
        "serve.exhausted",
        "serve.flight.dumps",
        "serve.requests",
        "serve.slo.breaches",
        # serve — health gauges (mirrored on /metricz)
        "serve.breaker.state",
        "serve.cache.entries",
        "serve.cache.journal_bytes",
        "serve.gate.depth",
        # serve — histograms
        "serve.request_seconds",
        # tabular
        "tabular.closure.memo_hits",
        "tabular.closure.memo_misses",
    }
)

#: Every literal span name, sorted.
SPAN_NAMES: FrozenSet[str] = frozenset(
    {
        "datasets.load",
        "experiments.cell",
        "perf.bench.case",
        "perf.parallel.grid",
        "runtime.fallback.rung",
        "serve.admit",
        "serve.cache.lookup",
        "serve.execute",
        "serve.recover",
        "serve.request",
    }
)

#: Prefixes under which names may be composed at runtime (f-strings).
#: Each is a deliberate enum-suffix family — the suffix set is closed
#: (statuses, shed reasons, rung outcomes), just not worth spelling out
#: as distinct counters at the call site.
DYNAMIC_METRIC_PREFIXES: FrozenSet[str] = frozenset(
    {
        "runtime.fallback.rung.",
        "serve.shed.",
        "serve.status.",
    }
)


def is_registered_metric(name: str) -> bool:
    """True if ``name`` is a known metric or a dynamic-family member."""
    if name in METRIC_NAMES:
        return True
    return any(name.startswith(p) for p in DYNAMIC_METRIC_PREFIXES)


def is_registered_span(name: str) -> bool:
    """True if ``name`` is a registered span name."""
    return name in SPAN_NAMES
