"""Structured spans with JSONL export and Chrome trace conversion.

A :class:`Tracer` records *spans* — named, nested durations opened with
the :meth:`Tracer.span` context manager.  Instrumented code does not
hold a tracer; it calls the module-level :func:`span` helper, which
no-ops unless a tracer was activated with :func:`trace_scope` (one
``ContextVar`` read on the off path, same pattern as the metrics
stack).

Checkpoint piggybacking: :func:`observe_site` is called by
``repro.runtime.checkpoint`` on every cooperative-checkpoint hit, and
folds the site name into the innermost open span's ``sites`` tally.
The 20+ existing checkpoint sites already thread through every
registered algorithm's hot loop, the bipartite row scan, dataset
loaders, fallback rungs and the parallel submit/collect loop — so
traces show *where work went* without any per-iteration event emission
or new plumbing.

Durability follows the journal's single-writer discipline: each
completed span is one JSON line, appended under a lock with
flush+fsync, and the loader tolerates a torn final line.  Timestamps
come from an injectable :data:`Clock` (the same callable shape
``repro.runtime.deadline`` uses), stored relative to the tracer's
origin so fake clocks yield byte-deterministic traces.

``repro-anon trace convert`` turns the JSONL into Chrome
``trace_event`` JSON loadable by ``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Clock",
    "TRACE_VERSION",
    "Tracer",
    "NullTracer",
    "active_tracer",
    "chrome_trace",
    "load_trace",
    "observe_site",
    "span",
    "trace_scope",
    "write_chrome_trace",
]

#: Monotonic-seconds supplier.  Canonical home of the alias shared with
#: ``repro.runtime.deadline`` (which re-exports it — the runtime layer
#: sits above ``obs``, so the import runs this way).
Clock = Callable[[], float]

#: Version stamped on every span line.
TRACE_VERSION = 1


class _SpanFrame:
    """Mutable book-keeping for one open span."""

    __slots__ = ("name", "started", "args", "sites")

    def __init__(self, name: str, started: float, args: Dict[str, Any]):
        self.name = name
        self.started = started
        self.args = args
        self.sites: Dict[str, int] = {}


class Tracer:
    """Span recorder with optional append-only JSONL persistence.

    Parameters
    ----------
    path:
        JSONL file to append completed spans to.  ``None`` keeps spans
        in memory only (:attr:`events`).
    clock:
        Injectable time source; defaults to ``time.monotonic``.
        Timestamps are recorded relative to the tracer's construction
        so a fake clock produces fully deterministic traces.
    pid / tid:
        Overrides for the process id and thread-id supplier, for tests.
    """

    #: False only on :class:`NullTracer`; lets scopes skip no-ops.
    enabled = True

    def __init__(
        self,
        path: "str | os.PathLike[str] | None" = None,
        clock: Clock = time.monotonic,
        pid: Optional[int] = None,
        tid: Optional[Callable[[], int]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.clock = clock
        self.pid = os.getpid() if pid is None else pid
        self._tid = tid if tid is not None else threading.get_ident
        self._origin = clock()
        self._lock = threading.Lock()
        #: Completed spans, in completion order (children before parents).
        self.events: List[Dict[str, Any]] = []

    # ----------------------------------------------------------------- #

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Open a named span for the duration of the ``with`` body.

        Keyword arguments become the span's ``args`` payload (must be
        JSON-serializable).  Checkpoint hits inside the body are tallied
        into the span's ``sites`` map via :func:`observe_site`.
        """
        frame = _SpanFrame(name, self.clock(), dict(args))
        token = _SPANS.set(_SPANS.get() + (frame,))
        try:
            yield
        finally:
            _SPANS.reset(token)
            self._emit(frame, self.clock())

    def _emit(self, frame: _SpanFrame, ended: float) -> None:
        record: Dict[str, Any] = {
            "v": TRACE_VERSION,
            "name": frame.name,
            "ts": frame.started - self._origin,
            "dur": ended - frame.started,
            "pid": self.pid,
            "tid": self._tid(),
        }
        if frame.args:
            record["args"] = frame.args
        if frame.sites:
            record["sites"] = {
                site: frame.sites[site] for site in sorted(frame.sites)
            }
        line = json.dumps(record, sort_keys=True)
        # Single-writer discipline (same as runtime.journal): one lock,
        # append, flush, fsync — concurrent threads interleave whole
        # lines, never fragments, and a crash loses at most the last.
        with self._lock:
            self.events.append(record)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())


class NullTracer(Tracer):
    """Tracer that records nothing; activating it is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(path=None, clock=lambda: 0.0, pid=0, tid=lambda: 0)

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:  # noqa: D102
        yield


#: The active tracer, if any.  A single slot (not a stack): traces from
#: two tracers at once have no consumer, and one slot keeps the hot
#: :func:`observe_site` path to a single ContextVar read.
_TRACER: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None
)

#: Context-local stack of open span frames (shared across tracers —
#: only one can be active).
_SPANS: ContextVar[Tuple[_SpanFrame, ...]] = ContextVar(
    "repro_obs_spans", default=()
)


def active_tracer() -> Optional[Tracer]:
    """The tracer activated by the innermost :func:`trace_scope`."""
    return _TRACER.get()


@contextmanager
def trace_scope(tracer: Tracer) -> Iterator[Tracer]:
    """Activate ``tracer`` for the ``with`` body.

    A :class:`NullTracer` is not installed at all, preserving the
    empty fast path in :func:`observe_site` and :func:`span`.
    """
    if not tracer.enabled:
        yield tracer
        return
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


@contextmanager
def span(name: str, **args: Any) -> Iterator[None]:
    """Open a span on the active tracer, or do nothing if tracing is off."""
    tracer = _TRACER.get()
    if tracer is None:
        yield
        return
    with tracer.span(name, **args):
        yield


def observe_site(site: str) -> None:
    """Tally a checkpoint hit into the innermost open span.

    Called by ``repro.runtime.checkpoint`` on every cooperative
    checkpoint; with tracing off this is one ContextVar read.  Hits
    outside any span are dropped — a site tally is only meaningful
    against a span's duration.
    """
    if _TRACER.get() is None:
        return
    stack = _SPANS.get()
    if stack:
        sites = stack[-1].sites
        sites[site] = sites.get(site, 0) + 1


# --------------------------------------------------------------------- #
# Loading and Chrome trace_event conversion
# --------------------------------------------------------------------- #


def load_trace(path: "str | os.PathLike[str]") -> List[Dict[str, Any]]:
    """Read a span JSONL file, tolerating a torn final line.

    Mirrors the journal loader's crash posture: a truncated or corrupt
    trailing line (the only kind an fsync-per-line writer can produce)
    is skipped rather than fatal.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


def chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert span records to Chrome ``trace_event`` JSON.

    Each span becomes a complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur``, viewable in ``chrome://tracing`` or
    https://ui.perfetto.dev.  Checkpoint-site tallies ride along in
    ``args``.
    """
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        args = dict(event.get("args", {}))
        if event.get("sites"):
            args["sites"] = event["sites"]
        trace_events.append(
            {
                "ph": "X",
                "name": str(event.get("name", "?")),
                "cat": "repro",
                "ts": round(float(event.get("ts", 0.0)) * 1e6, 3),
                "dur": round(float(event.get("dur", 0.0)) * 1e6, 3),
                "pid": int(event.get("pid", 0)),
                "tid": int(event.get("tid", 0)),
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: List[Dict[str, Any]], path: "str | os.PathLike[str]"
) -> None:
    """Serialize :func:`chrome_trace` output to ``path`` atomically."""
    target = Path(path)
    payload = json.dumps(chrome_trace(events), sort_keys=True)
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(payload + "\n", encoding="utf-8")
    os.replace(tmp, target)
