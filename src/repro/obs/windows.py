"""Sliding-window telemetry: time-bucketed aggregation over a registry.

:class:`WindowedRegistry` extends :class:`~repro.obs.metrics.MetricsRegistry`
with a ring of time buckets on the injectable clock.  Every write lands
twice under one lock acquisition — once in the cumulative since-boot
store (so plain :meth:`snapshot` stays schema-v1 and byte-identical to
the base class) and once in the bucket covering "now".
:meth:`window_snapshot` then answers "what happened in the last N
seconds": counter sums and per-second rates, last-written gauge values,
and histograms merged across buckets via the lossless
:meth:`Histogram.merge` — which is what makes p50/p99-over-a-window
deterministic under a fake clock.

The ring holds ``ceil(horizon / bucket) + 1`` buckets; a slot is lazily
reset when the clock has wrapped past it, so an idle registry costs
nothing and there is no background thread to schedule (or to make
tests flaky).

This module also owns the ``OBS_*.jsonl`` snapshot journal — the
committed artifact the cost-model planner (ROADMAP item 2) fits
against.  Appends are flush+fsync whole lines and the loader tolerates
a torn tail, mirroring ``Tracer``'s crash posture.  The journal I/O is
local on purpose: ``repro.obs`` sits below ``repro.runtime`` in the
import DAG and must not borrow its helpers.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)
from repro.obs.tracer import Clock

__all__ = [
    "OBS_SCHEMA",
    "WINDOW_VERSION",
    "WindowedRegistry",
    "append_obs_record",
    "load_obs_journal",
]

#: Schema marker on :meth:`WindowedRegistry.window_snapshot` payloads.
#: Version 1 (plain ``MetricsRegistry.snapshot``) has no ``window`` key.
WINDOW_VERSION = 2

#: Schema tag on every ``OBS_*.jsonl`` record.
OBS_SCHEMA = "repro.obs.snapshot/1"

#: Quantiles reported per windowed histogram.
_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class _Bucket:
    """One time slice of the ring: partial sums keyed by metric name."""

    __slots__ = ("index", "counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.index = -1
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def reset(self, index: int) -> None:
        self.index = index
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


class WindowedRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` that also aggregates per time bucket.

    ``clock`` is any zero-argument float callable — ``time.monotonic``
    in production, a hand-advanced fake in tests.  ``bucket_seconds``
    sets window resolution; ``horizon_seconds`` bounds how far back a
    window may reach (memory is ``O(horizon / bucket)`` buckets, each
    holding only the names written during that slice).
    """

    def __init__(
        self,
        clock: Clock = time.monotonic,
        *,
        bucket_seconds: float = 1.0,
        horizon_seconds: float = 300.0,
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if horizon_seconds < bucket_seconds:
            raise ValueError("horizon_seconds must cover at least one bucket")
        super().__init__()
        self.clock = clock
        self.bucket_seconds = float(bucket_seconds)
        self.horizon_seconds = float(horizon_seconds)
        # +1 so the current partial bucket never evicts the oldest full
        # bucket still inside the horizon.
        self._ring: List[_Bucket] = [
            _Bucket()
            for _ in range(
                int(math.ceil(self.horizon_seconds / self.bucket_seconds)) + 1
            )
        ]

    # -- ring internals (callers hold self._lock) ---------------------- #

    def _bucket_now_locked(self) -> _Bucket:
        index = int(self.clock() // self.bucket_seconds)
        bucket = self._ring[index % len(self._ring)]
        if bucket.index != index:
            bucket.reset(index)
        return bucket

    # -- writes (cumulative + bucket under one lock) ------------------- #

    def inc(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name``, cumulatively and in-window."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
            bucket = self._bucket_now_locked()
            bucket.counters[name] = bucket.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; the window keeps the last write per bucket."""
        with self._lock:
            self._gauges[name] = value
            self._bucket_now_locked().gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``, cumulative + bucket."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)
            bucket = self._bucket_now_locked()
            whist = bucket.histograms.get(name)
            if whist is None:
                whist = bucket.histograms[name] = Histogram()
            whist.observe(value)

    # -- reads --------------------------------------------------------- #

    def window_snapshot(
        self, window_seconds: Optional[float] = None
    ) -> Dict[str, Any]:
        """Version-2 snapshot: cumulative state plus a ``window`` block.

        ``window_seconds`` defaults to the full horizon and is clamped
        into ``[bucket_seconds, horizon_seconds]``.  The window covers
        the current (partial) bucket and the ``ceil(w / bucket) - 1``
        buckets before it, so rates are conservative rather than
        flattered by a just-opened slice.
        """
        if window_seconds is None:
            window_seconds = self.horizon_seconds
        window_seconds = max(
            self.bucket_seconds, min(float(window_seconds), self.horizon_seconds)
        )
        spans = int(math.ceil(window_seconds / self.bucket_seconds))
        with self._lock:
            now_index = int(self.clock() // self.bucket_seconds)
            first_index = now_index - spans + 1
            live = sorted(
                (
                    bucket
                    for bucket in self._ring
                    if first_index <= bucket.index <= now_index
                ),
                key=lambda bucket: bucket.index,
            )
            counters: Dict[str, float] = {}
            gauges: Dict[str, float] = {}
            merged: Dict[str, Histogram] = {}
            for bucket in live:  # ascending index → gauge last-write wins
                for name, value in bucket.counters.items():
                    counters[name] = counters.get(name, 0) + value
                gauges.update(bucket.gauges)
                for name, hist in bucket.histograms.items():
                    target = merged.get(name)
                    if target is None:
                        target = merged[name] = Histogram()
                    target.merge(hist.snapshot())
            snap = {
                "v": WINDOW_VERSION,
                "counters": {
                    name: self._counters[name]
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name] for name in sorted(self._gauges)
                },
                "histograms": {
                    name: self._histograms[name].snapshot()
                    for name in sorted(self._histograms)
                },
                "window": {
                    "seconds": window_seconds,
                    "bucket_seconds": self.bucket_seconds,
                    "counters": {
                        name: counters[name] for name in sorted(counters)
                    },
                    "rates": {
                        name: counters[name] / window_seconds
                        for name in sorted(counters)
                    },
                    "gauges": {
                        name: gauges[name] for name in sorted(gauges)
                    },
                    "histograms": {
                        name: merged[name].snapshot()
                        for name in sorted(merged)
                    },
                    "quantiles": {
                        name: {
                            label: histogram_quantile(
                                merged[name].snapshot(), q
                            )
                            for label, q in _QUANTILES
                        }
                        for name in sorted(merged)
                    },
                },
            }
        return snap


# --------------------------------------------------------------------- #
# OBS_*.jsonl snapshot journal
# --------------------------------------------------------------------- #


def append_obs_record(
    path: "str | os.PathLike[str]",
    *,
    kind: str,
    stamp: str,
    snapshot: Mapping[str, Any],
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Append one snapshot record to an ``OBS_*.jsonl`` journal.

    ``kind`` names the producer (``"bench"``, ``"experiment"``,
    ``"serve"``); ``stamp`` is the producer's run stamp so records join
    against ``BENCH_*.json`` baselines.  Whole-line append with
    flush+fsync; returns the record written.
    """
    record: Dict[str, Any] = {
        "schema": OBS_SCHEMA,
        "kind": kind,
        "stamp": stamp,
        "snapshot": dict(snapshot),
    }
    if extra:
        for key in sorted(extra):
            if key in record:
                raise ValueError(f"extra key {key!r} collides with the schema")
            record[key] = extra[key]
    line = json.dumps(record, sort_keys=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return record


def load_obs_journal(
    path: "str | os.PathLike[str]",
) -> List[Dict[str, Any]]:
    """Read an OBS journal, tolerating a torn final line.

    Records whose ``schema`` is not ``repro.obs.snapshot/*`` are
    skipped (forward compatibility), matching the trace loader's
    posture of never failing a read over a tail the writer may have
    been killed in the middle of.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            schema = record.get("schema", "")
            if not str(schema).startswith("repro.obs.snapshot/"):
                continue
            records.append(record)
    return records
