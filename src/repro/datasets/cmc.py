"""The CMC dataset — a synthetic stand-in for the UCI Contraceptive
Method Choice survey.

The paper's second real dataset is CMC — a subset of the 1987 National
Indonesia Contraceptive Prevalence Survey with nine demographic /
socio-economic attributes and the contraceptive-method choice as the
class.  The paper cites n = 1500 ("This dataset has n = 1500 records";
the UCI file actually holds 1473 — we default to the paper's 1500).

With no local copy and no network (DESIGN.md §2), this module samples a
synthetic table whose marginals follow the published UCI summary
statistics, with the survey's strongest dependencies preserved:
children ~ age (older wives have more children), method ~ (age,
education, children).  Ordinal attributes generalize by adjacent pairs;
wife's age by 5/10-year bands; children by small semantic bands.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import check_probs, validate_n
from repro.tabular.attribute import Attribute, integer_attribute
from repro.tabular.hierarchy import SubsetCollection, interval_hierarchy
from repro.tabular.table import Schema, Table

WIFE_AGE_LOW, WIFE_AGE_HIGH = 16, 49
ORDINAL = ["1", "2", "3", "4"]
BINARY = ["0", "1"]
CHILDREN = [str(v) for v in range(0, 17)]
METHOD = ["no-use", "long-term", "short-term"]

_WIFE_EDU_P = [0.10, 0.22, 0.28, 0.40]
_HUSB_EDU_P = [0.03, 0.12, 0.24, 0.61]
_RELIGION_P = [0.15, 0.85]  # 0 = non-Islam, 1 = Islam
_WORKING_P = [0.25, 0.75]  # 0 = yes, 1 = no  (UCI coding)
_HUSB_OCC_P = [0.29, 0.29, 0.40, 0.02]
_LIVING_P = [0.09, 0.16, 0.29, 0.46]
_MEDIA_P = [0.926, 0.074]  # 0 = good exposure, 1 = not good

#: Age histogram: survey wives cluster in the late 20s / 30s.
_AGE_VALUES = np.arange(WIFE_AGE_LOW, WIFE_AGE_HIGH + 1)
_AGE_WEIGHTS = np.exp(-0.5 * ((_AGE_VALUES - 32.5) / 8.2) ** 2) + 0.05

#: P(method | age band, has-children) — no-use dominates for childless
#: and older wives; short-term for young mothers (rough survey shape).
_METHOD_TABLE = {
    (0, False): [0.70, 0.03, 0.27],
    (0, True): [0.30, 0.12, 0.58],
    (1, False): [0.75, 0.05, 0.20],
    (1, True): [0.33, 0.27, 0.40],
    (2, False): [0.85, 0.04, 0.11],
    (2, True): [0.55, 0.28, 0.17],
}


def _age_band(age: int) -> int:
    if age < 27:
        return 0
    if age < 40:
        return 1
    return 2


def _children_count(rng: np.random.Generator, age: int) -> int:
    """Children ~ truncated Poisson whose mean grows with wife's age."""
    mean = max(0.2, (age - 17) * 0.18)
    return int(min(16, rng.poisson(mean)))


def make_schema(private: bool = True) -> Schema:
    """The CMC schema with its generalization hierarchies."""
    wife_age = integer_attribute("wife-age", WIFE_AGE_LOW, WIFE_AGE_HIGH)
    ordinal_pairs = [["1", "2"], ["3", "4"]]
    children = Attribute("children", CHILDREN)
    collections = [
        interval_hierarchy(wife_age, 5, 10),
        SubsetCollection(Attribute("wife-education", ORDINAL), ordinal_pairs),
        SubsetCollection(Attribute("husband-education", ORDINAL), ordinal_pairs),
        SubsetCollection(
            children,
            [
                ["1", "2"], ["3", "4"], ["5", "6", "7", "8"],
                [str(v) for v in range(9, 17)],
                ["1", "2", "3", "4"],
                [str(v) for v in range(5, 17)],
            ],
        ),
        SubsetCollection(Attribute("wife-religion", BINARY)),
        SubsetCollection(Attribute("wife-working", BINARY)),
        SubsetCollection(Attribute("husband-occupation", ORDINAL), ordinal_pairs),
        SubsetCollection(Attribute("living-standard", ORDINAL), ordinal_pairs),
        SubsetCollection(Attribute("media-exposure", BINARY)),
    ]
    return Schema(collections, ("method",) if private else ())


def generate(n: int = 1500, seed: int = 0, private: bool = True) -> Table:
    """Sample a synthetic CMC table of n records (paper: n = 1500)."""
    validate_n(n)
    rng = np.random.default_rng(seed)
    schema = make_schema(private)

    age_p = _AGE_WEIGHTS / _AGE_WEIGHTS.sum()
    ages = rng.choice(_AGE_VALUES, size=n, p=age_p)

    def draw(values: list[str], probs: list[float]) -> list[str]:
        p = check_probs("cmc", probs, len(values))
        return [values[i] for i in rng.choice(len(values), size=n, p=p)]

    wife_edu = draw(ORDINAL, _WIFE_EDU_P)
    husb_edu = draw(ORDINAL, _HUSB_EDU_P)
    religion = draw(BINARY, _RELIGION_P)
    working = draw(BINARY, _WORKING_P)
    husb_occ = draw(ORDINAL, _HUSB_OCC_P)
    living = draw(ORDINAL, _LIVING_P)
    media = draw(BINARY, _MEDIA_P)

    method_tables = {
        key: check_probs("method", row, len(METHOD))
        for key, row in _METHOD_TABLE.items()
    }

    rows = []
    private_rows: list[tuple[str, ...]] | None = [] if private else None
    for i in range(n):
        age = int(ages[i])
        kids = _children_count(rng, age)
        rows.append(
            (
                str(age), wife_edu[i], husb_edu[i], str(kids), religion[i],
                working[i], husb_occ[i], living[i], media[i],
            )
        )
        if private_rows is not None:
            key = (_age_band(age), kids > 0)
            method = METHOD[rng.choice(len(METHOD), p=method_tables[key])]
            private_rows.append((method,))
    return Table(schema, rows, private_rows)
