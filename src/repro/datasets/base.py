"""Shared helpers for the evaluation-dataset generators.

Each dataset module exposes ``make_schema()`` and
``generate(n, seed, private)``; the registry in
:mod:`repro.datasets.registry` wires them up behind
:func:`repro.datasets.load`.

All generators are deterministic given (n, seed) — numpy's
``default_rng`` PCG64 stream — so every experiment in EXPERIMENTS.md is
exactly rerunnable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DatasetError


def check_probs(name: str, probs: Sequence[float], num_values: int) -> np.ndarray:
    """Validate and renormalize a probability vector for one attribute."""
    p = np.asarray(probs, dtype=np.float64)
    if p.shape != (num_values,):
        raise DatasetError(
            f"{name}: {len(p)} probabilities for {num_values} values"
        )
    if (p < 0).any():
        raise DatasetError(f"{name}: negative probability")
    total = p.sum()
    if total <= 0:
        raise DatasetError(f"{name}: probabilities sum to zero")
    return p / total


def sample_categorical(
    rng: np.random.Generator,
    values: Sequence[str],
    probs: Sequence[float],
    n: int,
) -> list[str]:
    """Sample n values from a categorical distribution."""
    p = check_probs("categorical", probs, len(values))
    idx = rng.choice(len(values), size=n, p=p)
    values = list(values)
    return [values[i] for i in idx]


def validate_n(n: int, minimum: int = 1) -> int:
    """Validate a requested table size."""
    if n < minimum:
        raise DatasetError(f"dataset size must be ≥ {minimum}, got {n}")
    return n
