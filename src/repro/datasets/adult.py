"""The ADT dataset — a synthetic stand-in for the UCI Adult extract.

The paper anonymizes a 5000-record subset of the UCI Adult census data
projected on nine public attributes: age, work-class, education-level,
marital-status, occupation, family-relationship, race, sex and
native-country.  This environment has no copy of Adult and no network,
so (per the substitution policy in DESIGN.md §2) this module generates a
synthetic table over the same nine attributes whose

* marginal distributions follow the published UCI Adult marginals
  (rounded from the dataset's documented value counts), and
* joint distribution carries the strongest real-data dependencies via a
  small Bayesian-network factorization:
  age → marital-status, (marital-status, sex) → relationship,
  education → occupation.

The generalization collections group semantically close values, exactly
in the paper's spirit — its one worked example, education-level split
into {high-school, college, advanced-degrees}, is reproduced verbatim.
The private attribute is ``income`` (≤50K / >50K), Adult's class label,
sampled conditionally on education.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import check_probs, validate_n
from repro.tabular.attribute import Attribute, integer_attribute
from repro.tabular.hierarchy import SubsetCollection, interval_hierarchy
from repro.tabular.table import Schema, Table

AGE_LOW, AGE_HIGH = 17, 90

WORKCLASS = [
    "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov", "State-gov", "Without-pay", "Never-worked",
]
_WORKCLASS_P = [0.697, 0.079, 0.035, 0.030, 0.064, 0.041, 0.0004, 0.0002]

EDUCATION = [
    "Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th",
    "12th", "HS-grad", "Some-college", "Assoc-voc", "Assoc-acdm",
    "Bachelors", "Masters", "Prof-school", "Doctorate",
]
_EDUCATION_P = [
    0.002, 0.005, 0.010, 0.020, 0.016, 0.028, 0.036,
    0.013, 0.322, 0.223, 0.042, 0.033,
    0.164, 0.054, 0.018, 0.013,
]
#: The paper's worked example: education grouped into three levels.
EDUCATION_GROUPS = {
    "high-school": EDUCATION[:9],
    "college": EDUCATION[9:13],
    "advanced-degrees": EDUCATION[13:],
}

MARITAL = [
    "Married-civ-spouse", "Married-AF-spouse", "Married-spouse-absent",
    "Divorced", "Separated", "Widowed", "Never-married",
]
#: P(marital | age band) — young people are mostly never-married, the
#: widowed share grows with age.  Rows: <26, 26-45, 46-64, 65+.
_MARITAL_BY_AGE = [
    [0.12, 0.001, 0.008, 0.02, 0.02, 0.001, 0.83],
    [0.55, 0.002, 0.015, 0.17, 0.04, 0.010, 0.21],
    [0.62, 0.001, 0.015, 0.20, 0.03, 0.060, 0.07],
    [0.55, 0.001, 0.010, 0.12, 0.01, 0.270, 0.04],
]

OCCUPATION = [
    "Exec-managerial", "Prof-specialty", "Tech-support", "Adm-clerical",
    "Sales", "Craft-repair", "Machine-op-inspct", "Handlers-cleaners",
    "Transport-moving", "Farming-fishing", "Other-service",
    "Priv-house-serv", "Protective-serv", "Armed-Forces",
]
#: P(occupation | education level): high-school / college / advanced.
_OCCUPATION_BY_EDU = [
    [0.07, 0.03, 0.02, 0.11, 0.10, 0.18, 0.10, 0.07, 0.08, 0.05, 0.15,
     0.01, 0.025, 0.005],
    [0.16, 0.13, 0.05, 0.14, 0.13, 0.09, 0.04, 0.03, 0.03, 0.02, 0.14,
     0.004, 0.025, 0.001],
    [0.25, 0.47, 0.04, 0.05, 0.08, 0.02, 0.01, 0.005, 0.01, 0.01, 0.04,
     0.001, 0.013, 0.001],
]

RELATIONSHIP = [
    "Husband", "Wife", "Own-child", "Other-relative",
    "Not-in-family", "Unmarried",
]
#: P(relationship | married?, sex).
_RELATIONSHIP_TABLE = {
    (True, "Male"): [0.93, 0.0, 0.01, 0.01, 0.04, 0.01],
    (True, "Female"): [0.0, 0.82, 0.02, 0.03, 0.08, 0.05],
    (False, "Male"): [0.0, 0.0, 0.33, 0.05, 0.49, 0.13],
    (False, "Female"): [0.0, 0.0, 0.28, 0.06, 0.31, 0.35],
}

RACE = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]
_RACE_P = [0.854, 0.096, 0.032, 0.010, 0.008]

SEX = ["Male", "Female"]
_SEX_P = [0.669, 0.331]

#: 41 countries, grouped into the four regions used for generalization.
COUNTRY_REGIONS = {
    "North-America": ["United-States", "Canada", "Outlying-US(Guam-USVI-etc)"],
    "Latin-America": [
        "Mexico", "Puerto-Rico", "Cuba", "Jamaica", "Honduras", "Columbia",
        "Ecuador", "Haiti", "Dominican-Republic", "El-Salvador", "Guatemala",
        "Nicaragua", "Peru", "Trinadad&Tobago",
    ],
    "Europe": [
        "England", "Germany", "Greece", "Italy", "Poland", "Portugal",
        "Ireland", "France", "Hungary", "Scotland", "Yugoslavia",
        "Holand-Netherlands",
    ],
    "Asia": [
        "Philippines", "India", "China", "Japan", "Vietnam", "Taiwan",
        "Iran", "South", "Cambodia", "Laos", "Thailand", "Hong",
    ],
}
COUNTRY = [c for region in COUNTRY_REGIONS.values() for c in region]
_COUNTRY_P = (
    [0.897, 0.0037, 0.0005]
    + [0.0196, 0.0035, 0.0029, 0.0025, 0.0012, 0.0018, 0.0009, 0.0014,
       0.0021, 0.0032, 0.0019, 0.0010, 0.0009, 0.0006]
    + [0.0028, 0.0042, 0.0009, 0.0022, 0.0018, 0.0011, 0.0007, 0.0009,
       0.0004, 0.0004, 0.0005, 0.0001]
    + [0.0061, 0.0031, 0.0023, 0.0019, 0.0021, 0.0016, 0.0013, 0.0025,
       0.0006, 0.0006, 0.0006, 0.0006]
)

INCOME = ["<=50K", ">50K"]
#: P(>50K | education level) — rough Adult class rates per level.
_INCOME_HIGH_BY_EDU = [0.12, 0.25, 0.58]

#: Age sampling: a two-component mixture approximating Adult's
#: right-skewed age histogram (working-age bulge, thinning tail).
_AGE_VALUES = np.arange(AGE_LOW, AGE_HIGH + 1)
_AGE_WEIGHTS = 0.75 * np.exp(-0.5 * ((_AGE_VALUES - 33.0) / 9.5) ** 2) + 0.25 * np.exp(
    -0.5 * ((_AGE_VALUES - 50.0) / 13.0) ** 2
)


def _edu_level(value: str) -> int:
    """0 = high-school, 1 = college, 2 = advanced (paper's grouping)."""
    if value in EDUCATION_GROUPS["high-school"]:
        return 0
    if value in EDUCATION_GROUPS["college"]:
        return 1
    return 2


def _age_band(age: int) -> int:
    if age < 26:
        return 0
    if age < 46:
        return 1
    if age < 65:
        return 2
    return 3


def make_schema(private: bool = True) -> Schema:
    """The ADT schema with its semantic generalization hierarchies."""
    age = integer_attribute("age", AGE_LOW, AGE_HIGH)
    collections = [
        interval_hierarchy(age, 5, 10, 20),
        SubsetCollection(
            Attribute("work-class", WORKCLASS),
            [
                ["Self-emp-not-inc", "Self-emp-inc"],
                ["Federal-gov", "Local-gov", "State-gov"],
                ["Without-pay", "Never-worked"],
            ],
        ),
        SubsetCollection(
            Attribute("education-level", EDUCATION),
            list(EDUCATION_GROUPS.values()),
        ),
        SubsetCollection(
            Attribute("marital-status", MARITAL),
            [
                ["Married-civ-spouse", "Married-AF-spouse",
                 "Married-spouse-absent"],
                ["Divorced", "Separated", "Widowed"],
            ],
        ),
        SubsetCollection(
            Attribute("occupation", OCCUPATION),
            [
                OCCUPATION[:5],   # white-collar
                OCCUPATION[5:10],  # blue-collar
                OCCUPATION[10:],   # service
            ],
        ),
        SubsetCollection(
            Attribute("family-relationship", RELATIONSHIP),
            [
                ["Husband", "Wife"],
                ["Own-child", "Other-relative"],
                ["Not-in-family", "Unmarried"],
            ],
        ),
        SubsetCollection(Attribute("race", RACE)),
        SubsetCollection(Attribute("sex", SEX)),
        SubsetCollection(
            Attribute("native-country", COUNTRY),
            list(COUNTRY_REGIONS.values()),
        ),
    ]
    return Schema(collections, ("income",) if private else ())


def generate(n: int = 5000, seed: int = 0, private: bool = True) -> Table:
    """Sample a synthetic ADT table of n records (paper: n = 5000)."""
    validate_n(n)
    rng = np.random.default_rng(seed)
    schema = make_schema(private)

    age_p = _AGE_WEIGHTS / _AGE_WEIGHTS.sum()
    ages = rng.choice(_AGE_VALUES, size=n, p=age_p)

    sexes = [SEX[i] for i in rng.choice(2, size=n, p=check_probs("sex", _SEX_P, 2))]
    workclass = [
        WORKCLASS[i]
        for i in rng.choice(
            len(WORKCLASS), size=n, p=check_probs("work-class", _WORKCLASS_P, 8)
        )
    ]
    education = [
        EDUCATION[i]
        for i in rng.choice(
            len(EDUCATION), size=n, p=check_probs("education", _EDUCATION_P, 16)
        )
    ]
    races = [
        RACE[i]
        for i in rng.choice(len(RACE), size=n, p=check_probs("race", _RACE_P, 5))
    ]
    countries = [
        COUNTRY[i]
        for i in rng.choice(
            len(COUNTRY), size=n, p=check_probs("country", _COUNTRY_P, len(COUNTRY))
        )
    ]

    marital_tables = [
        check_probs("marital", row, len(MARITAL)) for row in _MARITAL_BY_AGE
    ]
    occupation_tables = [
        check_probs("occupation", row, len(OCCUPATION))
        for row in _OCCUPATION_BY_EDU
    ]
    relationship_tables = {
        key: check_probs("relationship", row, len(RELATIONSHIP))
        for key, row in _RELATIONSHIP_TABLE.items()
    }

    rows = []
    private_rows: list[tuple[str, ...]] | None = [] if private else None
    for i in range(n):
        age = int(ages[i])
        marital = MARITAL[
            rng.choice(len(MARITAL), p=marital_tables[_age_band(age)])
        ]
        married = marital in ("Married-civ-spouse", "Married-AF-spouse")
        relationship = RELATIONSHIP[
            rng.choice(
                len(RELATIONSHIP), p=relationship_tables[(married, sexes[i])]
            )
        ]
        level = _edu_level(education[i])
        occupation = OCCUPATION[
            rng.choice(len(OCCUPATION), p=occupation_tables[level])
        ]
        rows.append(
            (
                str(age), workclass[i], education[i], marital, occupation,
                relationship, races[i], sexes[i], countries[i],
            )
        )
        if private_rows is not None:
            high = rng.random() < _INCOME_HIGH_BY_EDU[level]
            private_rows.append((INCOME[1] if high else INCOME[0],))
    return Table(schema, rows, private_rows)
