"""Dataset registry: ``load("art" | "adult" | "cmc", ...)``.

The three datasets of Section VI behind one uniform entry point, plus
introspection helpers for the harness.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets import adult, artificial, cmc
from repro.errors import DatasetError
from repro.obs import span
from repro.runtime import checkpoint
from repro.tabular.table import Schema, Table

_GENERATORS: dict[str, tuple[Callable[..., Table], Callable[..., Schema], int]] = {
    # name: (generate, make_schema, paper default n)
    "art": (artificial.generate, artificial.make_schema, 1000),
    "adult": (adult.generate, adult.make_schema, 5000),
    "cmc": (cmc.generate, cmc.make_schema, 1500),
}
_ALIASES = {"adt": "adult", "artificial": "art"}


def dataset_names() -> list[str]:
    """Canonical dataset names."""
    return sorted(_GENERATORS)


def _resolve(name: str) -> str:
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _GENERATORS:
        raise DatasetError(
            f"unknown dataset {name!r}; known datasets: {dataset_names()}"
        )
    return key


def default_size(name: str) -> int:
    """The table size the paper used for this dataset."""
    return _GENERATORS[_resolve(name)][2]


def load(
    name: str, n: int | None = None, seed: int = 0, private: bool = False
) -> Table:
    """Generate one of the paper's evaluation datasets.

    Parameters
    ----------
    name:
        ``"art"``, ``"adult"`` (alias ``"adt"``) or ``"cmc"``.
    n:
        Number of records; defaults to the paper's size
        (ART 1000, ADT 5000, CMC 1500).
    seed:
        RNG seed for reproducibility.
    private:
        Attach the dataset's private (sensitive) attribute.
    """
    key = _resolve(name)
    checkpoint("datasets.load")
    generate, _, default_n = _GENERATORS[key]
    size = n if n is not None else default_n
    with span("datasets.load", dataset=key, n=size):
        return generate(size, seed=seed, private=private)


def schema_of(name: str, private: bool = False) -> Schema:
    """Just the schema of a dataset, without sampling records."""
    key = _resolve(name)
    return _GENERATORS[key][1](private=private)
