"""The ART dataset — the paper's artificial data, verbatim (Section VI).

Six attributes A1..A6 with the exact value-probability vectors and
permissible-subset collections listed in the paper:

    A1 : {0.7, 0.3}
    A2 : {0.3, 0.3, 0.2, 0.2}
    A3 : {0.25, 0.25, 0.4, 0.1}
    A4 : {6 × 0.07, 10 × 0.04, 9 × 0.02}           (25 values)
    A5 : {10 × 0.1}
    A6 : {0.05, 0.05, 0.5, 0.3, 0.1}

and non-trivial subsets

    A1 : none
    A2 : {a1,a2}, {a3,a4}
    A3 : {a1,a2}, {a3,a4}
    A4 : {a1..a6}, {a7..a12}, {a13..a18}, {a19..a25},
         {a1..a12}, {a13..a25}
    A5 : {a1,a2}, {a3,a4}, {a6,a7}, {a8,a9},
         {a1..a5}, {a6..a10}
    A6 : {a1,a2}, {a4,a5}, {a3,a4,a5}

Values are named ``a1..am`` per attribute; records are sampled i.i.d.
(the paper gives no correlation structure).  An optional synthetic
private attribute ``condition`` is attached for the privacy/extension
demos — it never influences the public data.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import check_probs, validate_n
from repro.tabular.attribute import Attribute
from repro.tabular.hierarchy import SubsetCollection
from repro.tabular.table import Schema, Table

#: (probabilities, non-trivial subsets as index ranges) per attribute.
_SPEC: list[tuple[list[float], list[list[int]]]] = [
    ([0.7, 0.3], []),
    ([0.3, 0.3, 0.2, 0.2], [[1, 2], [3, 4]]),
    ([0.25, 0.25, 0.4, 0.1], [[1, 2], [3, 4]]),
    (
        [0.07] * 6 + [0.04] * 10 + [0.02] * 9,
        [
            list(range(1, 7)),
            list(range(7, 13)),
            list(range(13, 19)),
            list(range(19, 26)),
            list(range(1, 13)),
            list(range(13, 26)),
        ],
    ),
    (
        [0.1] * 10,
        [[1, 2], [3, 4], [6, 7], [8, 9], [1, 2, 3, 4, 5], [6, 7, 8, 9, 10]],
    ),
    ([0.05, 0.05, 0.5, 0.3, 0.1], [[1, 2], [4, 5], [3, 4, 5]]),
]

#: Synthetic private-attribute domain for demos.
CONDITIONS = (
    "flu",
    "diabetes",
    "asthma",
    "hypertension",
    "fracture",
    "migraine",
    "allergy",
    "healthy",
)
_CONDITION_PROBS = (0.15, 0.1, 0.1, 0.15, 0.05, 0.1, 0.1, 0.25)


def make_schema(private: bool = False) -> Schema:
    """The ART schema; ``private=True`` adds the ``condition`` column."""
    collections = []
    for idx, (probs, subsets) in enumerate(_SPEC, start=1):
        values = [f"a{i}" for i in range(1, len(probs) + 1)]
        att = Attribute(f"A{idx}", values)
        named_subsets = [[f"a{i}" for i in subset] for subset in subsets]
        collections.append(SubsetCollection(att, named_subsets))
    return Schema(collections, ("condition",) if private else ())


def generate(n: int = 1000, seed: int = 0, private: bool = False) -> Table:
    """Sample an ART table of n records.

    Parameters
    ----------
    n:
        Number of records.  The paper does not state the size it used;
        1000 is this reproduction's default (see EXPERIMENTS.md).
    seed:
        RNG seed; the same (n, seed) always yields the same table.
    private:
        Attach the synthetic ``condition`` private attribute.
    """
    validate_n(n)
    rng = np.random.default_rng(seed)
    schema = make_schema(private)
    columns = []
    for j, (probs, _) in enumerate(_SPEC):
        p = check_probs(f"A{j + 1}", probs, len(probs))
        idx = rng.choice(len(p), size=n, p=p)
        values = schema.collections[j].attribute.values
        columns.append([values[i] for i in idx])
    rows = list(zip(*columns))
    private_rows = None
    if private:
        p = check_probs("condition", _CONDITION_PROBS, len(CONDITIONS))
        idx = rng.choice(len(CONDITIONS), size=n, p=p)
        private_rows = [(CONDITIONS[i],) for i in idx]
    return Table(schema, rows, private_rows)
