"""Human-readable dataset descriptions for the CLI and docs.

``repro-anon datasets --verbose`` prints, per dataset, every attribute
with its domain size, hierarchy shape (node count, height) and — after
sampling — the most frequent values, so a user can judge at a glance
what the generalization space looks like.
"""

from __future__ import annotations

from collections import Counter

from repro.datasets.registry import default_size, load, schema_of
from repro.report import format_table


def describe_dataset(name: str, sample_n: int = 400, seed: int = 0) -> str:
    """A multi-line description of one built-in dataset."""
    schema = schema_of(name, private=True)
    table = load(name, n=sample_n, seed=seed, private=True)

    rows = []
    for j, coll in enumerate(schema.collections):
        att = coll.attribute
        column = [row[j] for row in table.rows]
        top = Counter(column).most_common(2)
        top_text = ", ".join(f"{v} ({c / sample_n:.0%})" for v, c in top)
        height = coll.height() if coll.is_laminar else -1
        rows.append(
            [
                att.name,
                att.size,
                coll.num_nodes,
                height if height >= 0 else "n/a",
                top_text,
            ]
        )
    header = (
        f"{name}: paper size n = {default_size(name)}, "
        f"{schema.num_attributes} public attributes, "
        f"private: {', '.join(schema.private_attributes) or '(none)'}\n"
        f"(value shares from a {sample_n}-record sample, seed {seed})"
    )
    return header + "\n" + format_table(
        ["attribute", "|domain|", "nodes", "height", "top values"], rows
    )
