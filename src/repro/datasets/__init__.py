"""The paper's evaluation datasets (Section VI).

* ART — the artificial dataset, generated exactly per the paper's
  distributions and permissible subsets.
* ADT — a synthetic stand-in for the UCI Adult extract (see DESIGN.md §2
  for the substitution rationale).
* CMC — a synthetic stand-in for the UCI Contraceptive Method Choice
  survey.

Use :func:`load` to obtain a table::

    from repro.datasets import load
    table = load("adult", n=1000, seed=7, private=True)
"""

from repro.datasets.registry import (
    dataset_names,
    default_size,
    load,
    schema_of,
)

__all__ = ["load", "schema_of", "dataset_names", "default_size"]
