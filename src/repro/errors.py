"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An attribute, hierarchy, or schema definition is invalid.

    Examples: duplicate attribute values, a permissible-subset collection
    that is missing a singleton or the full set, or a record that refers to
    a value outside its attribute's domain.
    """


class ClosureError(ReproError):
    """A closure could not be computed or is ambiguous.

    Raised when a set of values has no permissible superset (impossible for
    valid collections, which always contain the full set) or when a
    non-laminar collection has several minimal supersets and the caller
    requested strict (unambiguous) closures.
    """


class AnonymityError(ReproError):
    """An anonymization request is infeasible or inconsistent.

    Examples: requesting ``k`` larger than the number of records, or
    feeding Algorithm 5/6 a generalized table whose i-th record does not
    generalize the i-th original record.
    """


class MatchingError(ReproError):
    """A bipartite-matching computation failed its preconditions.

    Example: asking for allowed edges of a graph that admits no perfect
    matching (every generalization graph has one, the identity matching,
    so hitting this indicates caller error).
    """


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run failed."""
