"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An attribute, hierarchy, or schema definition is invalid.

    Examples: duplicate attribute values, a permissible-subset collection
    that is missing a singleton or the full set, or a record that refers to
    a value outside its attribute's domain.
    """


class ClosureError(ReproError):
    """A closure could not be computed or is ambiguous.

    Raised when a set of values has no permissible superset (impossible for
    valid collections, which always contain the full set) or when a
    non-laminar collection has several minimal supersets and the caller
    requested strict (unambiguous) closures.
    """


class AnonymityError(ReproError):
    """An anonymization request is infeasible or inconsistent.

    Examples: requesting ``k`` larger than the number of records, or
    feeding Algorithm 5/6 a generalized table whose i-th record does not
    generalize the i-th original record.
    """


class MatchingError(ReproError):
    """A bipartite-matching computation failed its preconditions.

    Example: asking for allowed edges of a graph that admits no perfect
    matching (every generalization graph has one, the identity matching,
    so hitting this indicates caller error).
    """


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run failed."""


class DeadlineExceeded(ReproError):
    """A cooperative execution limit expired mid-run.

    Raised from :func:`repro.runtime.checkpoint` when the active
    :class:`~repro.runtime.Deadline` (wall-clock) or
    :class:`~repro.runtime.Budget` (deterministic checkpoint count) is
    exhausted.  The algorithms guarantee their inputs are left
    unmutated when this propagates.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        elapsed: float | None = None,
        budget: float | None = None,
    ) -> None:
        super().__init__(message)
        self.site = site  #: checkpoint site that observed the expiry
        self.elapsed = elapsed  #: seconds (or checkpoints) consumed
        self.budget = budget  #: the limit that was configured


class RunCancelled(ReproError):
    """A run was cancelled via :class:`repro.runtime.CancelToken`."""

    def __init__(self, message: str, *, site: str = "") -> None:
        super().__init__(message)
        self.site = site  #: checkpoint site that observed the cancellation


class InjectedFault(ReproError):
    """The default error raised by the fault-injection layer.

    Never raised in production operation — only when a test or smoke
    run activates a :class:`repro.runtime.FaultPlan` around the code
    under test.
    """

    def __init__(self, message: str, *, site: str = "") -> None:
        super().__init__(message)
        self.site = site  #: fault site that fired


class RequestError(ReproError):
    """A service request payload is malformed or names unknown options.

    Raised while parsing a :mod:`repro.serve` request envelope, before
    any work is admitted; maps to a 400-style response.
    """


class ServiceOverloaded(ReproError):
    """A request was shed by admission control instead of being run.

    Carries the typed shed *reason* (``queue_full``, ``breaker_open``
    or ``deadline_unmeetable``) and a ``retry_after`` hint in seconds;
    maps to a 429-style response.  Shedding is deliberate degradation —
    the service refuses work it cannot finish inside the SLO rather
    than hanging or silently weakening the served guarantee.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "",
        retry_after: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.reason = reason  #: typed shed reason
        self.retry_after = retry_after  #: suggested client backoff, seconds


class FallbackExhausted(ReproError):
    """Every rung of a degradation chain failed.

    Carries the structured :class:`repro.runtime.fallback.FallbackReport`
    (as :attr:`report`) describing why each rung was rejected.
    """

    def __init__(self, message: str, *, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report  #: the per-rung FallbackReport
