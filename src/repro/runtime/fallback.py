"""Degradation chains: always return *a* valid k-anonymization.

"Constrained Generalization for Data Anonymization" (Hore et al.)
frames anonymization as budgeted systematic search; this module is that
shape around the library's algorithms.  A chain is an ordered sequence
of :class:`Rung`\\ s — typically expensive-but-good first, cheap-but-
coarse last.  :func:`run_with_fallback` tries each rung under its share
of the time budget, verifies the output against the requested notion,
and records *why* every earlier rung was rejected, so the caller
either gets a valid anonymization plus a :class:`FallbackReport`
explaining which rung produced it, or a structured
:class:`~repro.errors.FallbackExhausted` failure.

The shipped :data:`DEFAULT_CHAIN` ends in the ``suppress`` rung — full
generalization of every attribute — which is O(n·r), cannot time out in
practice, and is k-anonymous for every k ≤ n, so the chain as a whole
degrades to "publish nothing useful" rather than "hang or crash".

::

    outcome = run_with_fallback(table, k=10, overall_timeout=5.0)
    result = outcome.require()          # AnonymizationResult
    print(outcome.report.format())      # which rung won, why others failed
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.api import AnonymizationResult, anonymize
from repro.errors import (
    AnonymityError,
    DeadlineExceeded,
    FallbackExhausted,
    ReproError,
)
from repro.measures.base import CostModel
from repro.measures.registry import get_measure
from repro.obs import count, span
from repro.runtime.deadline import Clock, Deadline, Timer, limit_scope
from repro.tabular.encoding import EncodedTable
from repro.tabular.table import Table


@dataclass(frozen=True)
class Rung:
    """One step of a degradation chain."""

    name: str  #: display name in the report
    notion: str = "k"  #: anonymity notion passed to :func:`anonymize`
    algorithm: str | None = None  #: for ``notion="k"``; ``"suppress"`` is terminal
    distance: str = "d3"  #: agglomerative distance
    modified: bool = False  #: Algorithm 2's shrink step
    expander: str = "expansion"  #: (k,1) stage for k1/kk/global-1k
    timeout: float | None = None  #: per-rung wall-clock cap, seconds


#: Good-first, cheap-last.  The terminal ``suppress`` rung is O(n·r)
#: and valid for every k ≤ n, so the chain cannot come back empty-handed
#: unless k itself is infeasible.
DEFAULT_CHAIN: tuple[Rung, ...] = (
    Rung("kk", notion="kk"),
    Rung("agglomerative", notion="k", algorithm="agglomerative"),
    Rung("mondrian", notion="k", algorithm="mondrian"),
    Rung("suppress", notion="k", algorithm="suppress"),
)


@dataclass(frozen=True)
class RungAttempt:
    """What happened when one rung ran (or was skipped)."""

    name: str  #: the rung's name
    status: str  #: ``ok`` | ``deadline`` | ``error`` | ``invalid`` | ``skipped``
    detail: str = ""  #: error type and message, or skip reason
    seconds: float = 0.0  #: time the attempt consumed

    @property
    def ok(self) -> bool:
        """Whether this attempt produced the accepted result."""
        return self.status == "ok"


@dataclass
class FallbackReport:
    """The full account of one chain execution."""

    k: int  #: requested anonymity parameter
    attempts: list[RungAttempt] = field(default_factory=list)
    winner: str | None = None  #: name of the rung that produced the result

    @property
    def ok(self) -> bool:
        """Whether any rung succeeded."""
        return self.winner is not None

    def format(self) -> str:
        """Human-readable per-rung account."""
        lines = [
            f"fallback chain (k={self.k}): "
            + (f"served by {self.winner!r}" if self.ok else "EXHAUSTED")
        ]
        for attempt in self.attempts:
            line = f"  {attempt.name:14s} {attempt.status:8s}"
            if attempt.seconds:
                line += f" {attempt.seconds:7.3f}s"
            if attempt.detail:
                line += f"  {attempt.detail}"
            lines.append(line)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """Machine-readable report (all plain JSON types)."""
        return {
            "k": self.k,
            "winner": self.winner,
            "attempts": [
                {
                    "name": a.name,
                    "status": a.status,
                    "detail": a.detail,
                    "seconds": a.seconds,
                }
                for a in self.attempts
            ],
        }


@dataclass
class FallbackOutcome:
    """Result + report of one :func:`run_with_fallback` call."""

    report: FallbackReport
    result: AnonymizationResult | None = None

    @property
    def ok(self) -> bool:
        """Whether a rung produced a verified result."""
        return self.result is not None

    def require(self) -> AnonymizationResult:
        """The result, or :class:`~repro.errors.FallbackExhausted`."""
        if self.result is None:
            raise FallbackExhausted(
                f"every rung of the fallback chain failed:\n"
                f"{self.report.format()}",
                report=self.report,
            )
        return self.result


def _suppress_all(
    table: Table, k: int, measure: str, enc: EncodedTable
) -> AnonymizationResult:
    """The terminal rung: generalize every value to the full domain.

    Every record becomes identical, so the release is m-anonymous for
    m = n ≥ k — maximal privacy, minimal utility, O(n·r) time.
    """
    n = enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    with Timer() as timer:
        full = np.array([att.full_node for att in enc.attrs], dtype=np.int32)
        node_matrix = np.tile(full, (n, 1))
        measure_obj = get_measure(measure)
        model = CostModel(enc, measure_obj)
        cost = model.table_cost(node_matrix)
        generalized = enc.decode_table(node_matrix)
    count("runtime.fallback.records_suppressed", n)
    return AnonymizationResult(
        table=table,
        encoded=enc,
        node_matrix=node_matrix,
        generalized=generalized,
        notion="k",
        k=k,
        algorithm="suppress-all",
        measure=measure_obj.name,
        cost=cost,
        elapsed_seconds=timer.seconds,
        stats={"suppressed_records": n},
    )


def _run_rung(
    rung: Rung,
    table: Table,
    k: int,
    measure: str,
    enc: EncodedTable,
    backend: str | None = None,
) -> AnonymizationResult:
    if rung.algorithm == "suppress":
        return _suppress_all(table, k, measure, enc)
    return anonymize(
        table,
        k=k,
        notion=rung.notion,
        measure=measure,
        algorithm=rung.algorithm,
        distance=rung.distance,
        modified=rung.modified,
        expander=rung.expander,
        encoded=enc,
        backend=backend,
    )


def run_with_fallback(
    table: Table,
    k: int,
    *,
    chain: tuple[Rung, ...] = DEFAULT_CHAIN,
    measure: str = "entropy",
    overall_timeout: float | None = None,
    rung_timeout: float | None = None,
    clock: Clock = time.monotonic,
    encoded: EncodedTable | None = None,
    backend: str | None = None,
) -> FallbackOutcome:
    """Execute a degradation chain until one rung yields a valid result.

    Parameters
    ----------
    table:
        The table to anonymize.
    k:
        The anonymity parameter.
    chain:
        The rungs, best first; defaults to :data:`DEFAULT_CHAIN`.
    measure:
        Loss measure scoring every rung (and driving its objective).
    overall_timeout:
        Wall-clock budget for the whole chain; once spent, remaining
        rungs are recorded as ``skipped``.
    rung_timeout:
        Default per-rung cap; a rung's own ``timeout`` wins when set.
    clock:
        Injectable monotonic clock (tests use a fake).
    encoded:
        Optional pre-built encoding of ``table`` to reuse.
    backend:
        Execution backend forwarded to every rung's
        :func:`~repro.core.api.anonymize` call.  Backends are
        bit-equivalent, so the winning rung, its result and the report
        are backend-independent; only speed changes.

    Returns
    -------
    A :class:`FallbackOutcome`; ``outcome.require()`` returns the
    verified :class:`~repro.core.api.AnonymizationResult` or raises
    :class:`~repro.errors.FallbackExhausted` with the report attached.
    """
    if not chain:
        raise ReproError("the fallback chain must have at least one rung")
    enc = encoded if encoded is not None else EncodedTable(table)
    report = FallbackReport(k=k)
    outcome = FallbackOutcome(report=report)
    overall = (
        Deadline.after(overall_timeout, clock=clock)
        if overall_timeout is not None
        else None
    )

    def record(attempt: RungAttempt) -> None:
        """Append the attempt and tally its outcome for repro.obs."""
        report.attempts.append(attempt)
        count(f"runtime.fallback.rung.{attempt.status}")

    for rung in chain:
        if overall is not None and overall.expired():
            record(
                RungAttempt(rung.name, "skipped", "overall deadline spent")
            )
            continue
        limits: list[Deadline] = []
        if overall is not None:
            limits.append(overall)
        cap = rung.timeout if rung.timeout is not None else rung_timeout
        if cap is not None:
            limits.append(Deadline.after(cap, clock=clock))
        timer = Timer(clock=clock)
        try:
            with timer, limit_scope(*limits), span(
                "runtime.fallback.rung", rung=rung.name
            ):
                result = _run_rung(rung, table, k, measure, enc, backend)
        except DeadlineExceeded as exc:
            record(
                RungAttempt(
                    rung.name, "deadline", str(exc), seconds=timer.seconds
                )
            )
            continue
        except Exception as exc:  # a crashing rung must not sink the chain
            record(
                RungAttempt(
                    rung.name,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    seconds=timer.seconds,
                )
            )
            continue
        if not result.verify():
            record(
                RungAttempt(
                    rung.name,
                    "invalid",
                    f"output failed the {result.notion!r} verifier",
                    seconds=timer.seconds,
                )
            )
            continue
        record(RungAttempt(rung.name, "ok", seconds=timer.seconds))
        report.winner = rung.name
        outcome.result = result
        break
    return outcome
