"""Deterministic fault injection (chaos testing without the chaos).

Algorithms, loaders and journal I/O call
:func:`repro.runtime.checkpoint` (or :func:`fault_point` directly) at
*named sites*.  In production those calls are near-free no-ops; under an
active :class:`FaultPlan` they raise on exactly the hits the plan names,
so a test can kill an experiment at a precisely chosen point, replay the
kill deterministically from a seed, and then prove the recovery path
(retry, fallback rung, ``--resume``) actually works.

Plans are deterministic by construction: positional triggers (``after``
/ ``times``) count site hits, and probabilistic triggers (``rate``)
draw from a ``random.Random(seed)`` owned by the plan — two runs of the
same plan over the same code fire identically.

::

    plan = FaultPlan().inject("runtime.journal.append", times=1)
    with fault_scope(plan):
        runner.agglomerative("art", "entropy", 10, "d3")  # journal write fails once
    assert plan.fired  # the site was actually reached
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from random import Random
from typing import Iterator

from repro.errors import InjectedFault, ReproError

#: The canonical checkpoint/fault sites the library ships.  Glob
#: patterns in a plan may match several; injecting at an exact name not
#: listed here is rejected to catch typos (sites are load-bearing —
#: a misspelled site silently never fires).
KNOWN_SITES: frozenset[str] = frozenset(
    {
        "core.agglomerative.init",
        "core.agglomerative.merge",
        "core.forest.round",
        "core.forest.component",
        "core.k1.row",
        "core.k1.grow",
        "core.one_k.record",
        "core.kk.couple",
        "core.global_1k.pass",
        "core.mondrian.split",
        "core.kmember.cluster",
        "core.datafly.step",
        "core.scalable.block",
        "matching.bipartite.row",
        "datasets.load",
        "runtime.journal.append",
        "runtime.journal.load",
        "runtime.journal.replace",
        "experiments.cell",
        "perf.parallel.submit",
        "perf.parallel.collect",
        "serve.accept",
        "serve.enqueue",
        "serve.execute",
        "serve.cache.load",
        "serve.cache.store",
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, when, and what to raise."""

    site: str  #: exact site name or ``fnmatch`` glob (``"core.*"``)
    error: type[BaseException] = InjectedFault  #: exception type to raise
    after: int = 0  #: skip this many matching hits before arming
    times: int | None = 1  #: fire on at most this many hits (None = always)
    rate: float | None = None  #: fire probabilistically (plan-seeded RNG)

    def matches(self, site: str) -> bool:
        """Whether this rule applies to a hit at ``site``."""
        return fnmatchcase(site, self.site)


class FaultPlan:
    """A deterministic set of injection rules plus hit accounting.

    The plan records every site hit observed while it is active
    (:attr:`hits`) and every fault it raised (:attr:`fired`), so tests
    can assert both that the target site was actually reached and that
    the intended number of faults fired.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] = (), seed: int = 0) -> None:
        self.specs: list[FaultSpec] = list(specs)
        self.hits: dict[str, int] = {}
        self.fired: list[tuple[str, int]] = []  #: (site, hit index) raised
        self._rng = Random(seed)
        self._fire_counts: dict[int, int] = {}

    def inject(
        self,
        site: str,
        error: type[BaseException] = InjectedFault,
        after: int = 0,
        times: int | None = 1,
        rate: float | None = None,
    ) -> "FaultPlan":
        """Add one rule (builder-style; returns the plan)."""
        if not any(ch in site for ch in "*?[") and site not in KNOWN_SITES:
            raise ReproError(
                f"unknown fault site {site!r}; known sites: "
                f"{sorted(KNOWN_SITES)} (globs are allowed)"
            )
        if after < 0:
            raise ReproError(f"after must be non-negative, got {after}")
        if rate is not None and not 0.0 <= rate <= 1.0:
            raise ReproError(f"rate must be in [0, 1], got {rate}")
        self.specs.append(FaultSpec(site, error, after, times, rate))
        return self

    def on_hit(self, site: str) -> None:
        """Record one site hit; raise if a rule decides to fire."""
        hit_no = self.hits.get(site, 0)
        self.hits[site] = hit_no + 1
        for index, spec in enumerate(self.specs):
            if not spec.matches(site):
                continue
            if hit_no < spec.after:
                continue
            count = self._fire_counts.get(index, 0)
            if spec.times is not None and count >= spec.times:
                continue
            if spec.rate is not None and self._rng.random() >= spec.rate:
                continue
            self._fire_counts[index] = count + 1
            self.fired.append((site, hit_no))
            error = spec.error(f"injected fault at {site!r} (hit {hit_no})")
            if isinstance(error, InjectedFault):
                error.site = site
            raise error

    def total_fired(self) -> int:
        """How many faults the plan has raised so far."""
        return len(self.fired)


#: The active plan, if any.  A ``ContextVar`` so nested scopes and
#: threads each see their own plan.
_PLAN: ContextVar[FaultPlan | None] = ContextVar("repro_fault_plan", default=None)


@contextmanager
def fault_scope(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the ``with`` block."""
    token = _PLAN.set(plan)
    try:
        yield plan
    finally:
        _PLAN.reset(token)


def active_plan() -> FaultPlan | None:
    """The plan currently in scope, or None."""
    return _PLAN.get()


def fault_point(site: str) -> None:
    """Pure fault site: raises iff an active plan decides to.

    :func:`repro.runtime.checkpoint` calls this before consulting the
    execution limits; code that wants an injection point *without*
    deadline semantics (e.g. inside the journal's atomic rename, where
    an interrupt would be a torn write) calls it directly.
    """
    plan = _PLAN.get()
    if plan is not None:
        plan.on_hit(site)
