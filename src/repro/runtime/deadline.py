"""Cooperative deadlines, budgets and cancellation.

The paper's Section V algorithms are O(n²)-or-worse and the underlying
problem is NP-hard, so on production-sized inputs a run can blow any
latency budget.  Rather than killing threads (unsafe) or forking
processes (expensive), every hot loop in :mod:`repro.core` and
:mod:`repro.matching` calls :func:`checkpoint` once per outer
iteration.  When no limit is active the call is a few dozen
nanoseconds; under :func:`limit_scope` it raises a typed
:class:`~repro.errors.DeadlineExceeded` / :class:`~repro.errors.RunCancelled`
promptly, with the guarantee that the algorithm's inputs are left
unmutated (the algorithms never write into caller-owned arrays).

Three limit flavours:

* :class:`Deadline` — wall-clock, via an injectable monotonic clock
  (tests pass a fake clock, so "a 10ms deadline fires" is deterministic);
* :class:`Budget` — a deterministic checkpoint *count*, reproducible
  across machines by construction;
* :class:`CancelToken` — external cancellation, safe to trip from
  another thread.

::

    with limit_scope(Deadline.after(0.5)):
        clustering = agglomerative_clustering(model, k, distance)
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from types import TracebackType
from typing import Iterator

from repro.errors import DeadlineExceeded, ReproError, RunCancelled
from repro.obs.tracer import Clock, observe_site
from repro.runtime.faults import fault_point

__all__ = [
    "Budget",
    "CancelToken",
    "Clock",
    "Deadline",
    "ExecutionLimit",
    "Timer",
    "active_limits",
    "checkpoint",
    "deadline_scope",
    "limit_scope",
]


class ExecutionLimit:
    """Anything :func:`checkpoint` consults: deadline, budget, token."""

    def check(self, site: str) -> None:
        """Raise a :class:`~repro.errors.ReproError` if the limit is hit."""
        raise NotImplementedError


class Deadline(ExecutionLimit):
    """A wall-clock budget measured on an injectable monotonic clock."""

    __slots__ = ("seconds", "_clock", "_started")

    def __init__(self, seconds: float, clock: Clock = time.monotonic) -> None:
        if seconds < 0:
            raise ReproError(f"deadline must be non-negative, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._started = clock()

    @classmethod
    def after(cls, seconds: float, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline expiring ``seconds`` from now (alias constructor)."""
        return cls(seconds, clock=clock)

    def elapsed(self) -> float:
        """Seconds consumed since construction."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.elapsed() >= self.seconds

    def check(self, site: str) -> None:
        elapsed = self.elapsed()
        if elapsed >= self.seconds:
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded at {site!r} "
                f"({elapsed:.3f}s elapsed)",
                site=site,
                elapsed=elapsed,
                budget=self.seconds,
            )

    def __repr__(self) -> str:
        return f"Deadline({self.seconds!r}, remaining={self.remaining():.3f})"


class Budget(ExecutionLimit):
    """A deterministic checkpoint-count budget (no clock involved).

    Two runs of the same algorithm on the same input consume identical
    checkpoint counts, so tests that assert "raises after exactly N
    steps" are reproducible on any machine.
    """

    __slots__ = ("checkpoints", "used")

    def __init__(self, checkpoints: int) -> None:
        if checkpoints < 0:
            raise ReproError(
                f"budget must be non-negative, got {checkpoints}"
            )
        self.checkpoints = checkpoints
        self.used = 0

    def remaining(self) -> int:
        """Checkpoints left before the budget trips."""
        return max(0, self.checkpoints - self.used)

    def check(self, site: str) -> None:
        self.used += 1
        if self.used > self.checkpoints:
            raise DeadlineExceeded(
                f"checkpoint budget of {self.checkpoints} exhausted at "
                f"{site!r}",
                site=site,
                elapsed=float(self.used),
                budget=float(self.checkpoints),
            )

    def __repr__(self) -> str:
        return f"Budget({self.checkpoints}, used={self.used})"


class CancelToken(ExecutionLimit):
    """External cancellation, trip-able from any thread."""

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        """Request cancellation; the next checkpoint raises."""
        self.reason = reason or self.reason
        self._event.set()

    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def check(self, site: str) -> None:
        if self._event.is_set():
            detail = f": {self.reason}" if self.reason else ""
            raise RunCancelled(
                f"run cancelled at {site!r}{detail}", site=site
            )

    def __repr__(self) -> str:
        return f"CancelToken(cancelled={self.cancelled()})"


#: The stack of active limits.  A tuple in a ``ContextVar`` so nested
#: scopes compose and threads do not observe each other's limits.
_LIMITS: ContextVar[tuple[ExecutionLimit, ...]] = ContextVar(
    "repro_runtime_limits", default=()
)


def active_limits() -> tuple[ExecutionLimit, ...]:
    """The limits :func:`checkpoint` currently consults (outermost first)."""
    return _LIMITS.get()


@contextmanager
def limit_scope(*limits: ExecutionLimit) -> Iterator[tuple[ExecutionLimit, ...]]:
    """Push ``limits`` onto the checkpoint stack for the ``with`` block.

    Scopes nest: an inner per-rung deadline and an outer whole-request
    deadline are both consulted by every checkpoint inside the inner
    block.
    """
    token = _LIMITS.set(_LIMITS.get() + tuple(limits))
    try:
        yield _LIMITS.get()
    finally:
        _LIMITS.reset(token)


@contextmanager
def deadline_scope(
    seconds: float, clock: Clock = time.monotonic
) -> Iterator[tuple[ExecutionLimit, ...]]:
    """Shorthand for ``limit_scope(Deadline.after(seconds))``."""
    with limit_scope(Deadline.after(seconds, clock=clock)) as limits:
        yield limits


def checkpoint(site: str) -> None:
    """Cooperative yield point: trace tally + fault injection + limits.

    Called from the hot loops of every registered algorithm, the
    bipartite-graph construction, the dataset loaders and the journal
    I/O.  With no active tracer, no active
    :class:`FaultPlan <repro.runtime.faults.FaultPlan>` and no active
    limits this is three ``ContextVar`` reads — cheap enough for
    per-outer-iteration use.

    The trace tally runs first (it never raises), so spans account for
    a hit even when the same checkpoint then injects a fault or trips a
    limit — the trace shows *where* a run died.
    """
    observe_site(site)
    fault_point(site)
    for limit in _LIMITS.get():
        limit.check(site)


class Timer:
    """Monotonic elapsed-time measurement with an injectable clock.

    The single sanctioned way to time experiment work: wall-clock
    (``time.time``) drifts under NTP adjustments and is banned from
    algorithm code by lint rule REP004; raw ``time.perf_counter`` calls
    outside :mod:`repro.perf`/:mod:`repro.runtime` are banned by REP008
    so that tests can substitute a fake clock.

    ::

        with Timer() as timer:
            run()
        outcome.seconds = timer.seconds

    :meth:`elapsed` reads the running total mid-flight, for loops that
    poll their own duration (e.g. the fuzzing harness's time budget).
    """

    __slots__ = ("seconds", "_clock", "_started", "_running")

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self.seconds = 0.0
        self._clock = clock
        self._started = 0.0
        self._running = False

    def __enter__(self) -> "Timer":
        self._started = self._clock()
        self._running = True
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.seconds = self._clock() - self._started
        self._running = False

    def elapsed(self) -> float:
        """Seconds since ``__enter__`` (or the final total once exited)."""
        if self._running:
            return self._clock() - self._started
        return self.seconds
