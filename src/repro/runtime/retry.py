"""Seeded retry-with-backoff for transient failures.

Journal appends (disk hiccups), dataset loads and other I/O-shaped
operations retry under a :class:`RetryPolicy`.  Two properties matter
for testability:

* the backoff schedule is a **pure function of the policy** — jitter is
  drawn from ``random.Random(seed)``, so the delays a run will use are
  known before it starts;
* the sleeper is **injectable** — tests pass a recording stub, so no
  test ever sleeps wall-clock time to exercise the backoff path.

::

    policy = RetryPolicy(attempts=3, base_delay=0.05, seed=7)
    value = call_with_retry(write, policy=policy, retry_on=(OSError,))
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Callable, TypeVar

from repro.errors import InjectedFault, ReproError
from repro.obs import count

T = TypeVar("T")

#: A sleep function (seconds); injectable so tests never wall-clock sleep.
Sleeper = Callable[[float], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, and how long to back off between them."""

    attempts: int = 3  #: total attempts (1 = no retry)
    base_delay: float = 0.05  #: delay before the first retry, seconds
    multiplier: float = 2.0  #: exponential growth factor
    max_delay: float = 2.0  #: cap on any single delay
    jitter: float = 0.1  #: ± fraction of each delay, drawn from ``seed``
    seed: int = 0  #: seed for the jitter RNG (determinism)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ReproError(
                f"attempts must be at least 1, got {self.attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> tuple[float, ...]:
        """The full backoff schedule (``attempts - 1`` entries).

        Deterministic: the same policy always yields the same delays.
        """
        rng = Random(self.seed)
        out: list[float] = []
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            jittered = delay
            if self.jitter:
                jittered *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            out.append(min(jittered, self.max_delay))
            delay *= self.multiplier
        return tuple(out)


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (OSError, InjectedFault),
    sleep: Sleeper = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy's attempts run out.

    Parameters
    ----------
    fn:
        Zero-argument callable to retry.
    policy:
        Backoff schedule; defaults to ``RetryPolicy()``.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.  Defaults to transient-shaped failures
        (``OSError`` and injected faults).
    sleep:
        The sleeper; tests inject a recorder so nothing wall-clock
        sleeps.
    on_retry:
        Optional ``(attempt_index, error, delay)`` observer, called
        before each backoff sleep.

    Raises
    ------
    The last caught exception, once attempts are exhausted.
    """
    active = policy if policy is not None else RetryPolicy()
    schedule = active.delays()
    for attempt in range(active.attempts):
        try:
            count("runtime.retry.attempts")
            return fn()
        except retry_on as exc:
            if attempt >= active.attempts - 1:
                raise
            count("runtime.retry.retries")
            delay = schedule[attempt]
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
