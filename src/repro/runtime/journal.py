"""Crash-safe JSONL journals and atomic file writes.

The experiment harness can spend hours filling a (dataset, algorithm,
measure, k) grid; a crash at cell 900 of 1000 must not lose the first
899.  The journal is an append-only JSONL file of completed cells —
each line is one self-contained ``{"key": ..., "value": ..., "v": 1}``
object, flushed and fsynced before the cell is considered durable.
Because appends are atomic-per-line in practice, the only corruption a
crash can produce is a torn *final* line, which :meth:`Journal.entries`
tolerates (and reports) instead of refusing the whole file.

The journal is generic — keys and values are plain JSON objects — so it
lives in the low-level runtime layer; the experiment runner owns the
typed ``RunKey`` and converts at the boundary.

:func:`atomic_write_text` is the sibling primitive for whole-file
artifacts (reports, baselines): write to a temp file in the same
directory, fsync, then ``os.replace`` so readers never observe a
half-written file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ReproError
from repro.runtime.deadline import checkpoint

#: Journal line schema version.
JOURNAL_VERSION = 1


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lands in the destination directory so the final
    rename never crosses filesystems.  Readers see either the old file
    or the complete new one, never a prefix.
    """
    target = Path(path)
    checkpoint("runtime.journal.replace")
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class Journal:
    """An append-only JSONL journal of ``(key, value)`` records.

    Parameters
    ----------
    path:
        The journal file.  The parent directory must exist; the file is
        created on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.corrupt_lines = 0  #: torn/unparsable lines seen by entries()

    def exists(self) -> bool:
        """Whether the journal file is present on disk."""
        return self.path.is_file()

    def append(self, key: dict[str, Any], value: dict[str, Any]) -> None:
        """Durably append one record (flush + fsync before returning)."""
        checkpoint("runtime.journal.append")
        line = json.dumps(
            {"v": JOURNAL_VERSION, "key": key, "value": value},
            sort_keys=True,
            default=_jsonify,
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def entries(self) -> list[tuple[dict[str, Any], dict[str, Any]]]:
        """Every intact ``(key, value)`` record, in append order.

        A torn or unparsable line — the signature of a crash mid-append
        — is skipped and counted in :attr:`corrupt_lines` rather than
        failing the load; resuming from a prefix is always safe because
        the journal only ever records *finished* work.
        """
        checkpoint("runtime.journal.load")
        self.corrupt_lines = 0
        if not self.path.is_file():
            return []
        out: list[tuple[dict[str, Any], dict[str, Any]]] = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read journal {self.path}: {exc}") from exc
        for raw in text.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
                key = record["key"]
                value = record["value"]
                version = record["v"]
            except (json.JSONDecodeError, KeyError, TypeError):
                self.corrupt_lines += 1
                continue
            if version != JOURNAL_VERSION:
                raise ReproError(
                    f"journal {self.path} has version {version!r} records; "
                    f"this build reads version {JOURNAL_VERSION}"
                )
            if not isinstance(key, dict) or not isinstance(value, dict):
                self.corrupt_lines += 1
                continue
            out.append((key, value))
        return out

    def __iter__(self) -> Iterator[tuple[dict[str, Any], dict[str, Any]]]:
        return iter(self.entries())

    def __repr__(self) -> str:
        return f"Journal({str(self.path)!r})"


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars (and similar) appearing in diagnostics."""
    for attr in ("item",):
        coerce = getattr(value, attr, None)
        if callable(coerce):
            return coerce()
    raise TypeError(
        f"journal values must be JSON-serializable, got {type(value).__name__}"
    )
