"""Execution resilience: deadlines, cancellation, faults, journals.

The paper's algorithms are O(n²)-or-worse and the underlying problem is
NP-hard, so a service-grade deployment needs slow or failing runs to
degrade gracefully instead of hanging or losing work.  This package is
that machinery (see ``docs/robustness.md`` for the full tour, and the
``--timeout`` / ``--journal`` / ``--resume`` flags of
``repro-anon experiment`` for the CLI surface):

* :mod:`repro.runtime.deadline` — :class:`Deadline` (wall clock),
  :class:`Budget` (deterministic checkpoint count) and
  :class:`CancelToken`, consulted by the :func:`checkpoint` calls
  threaded through every registered algorithm's hot loop;
* :mod:`repro.runtime.faults` — deterministic fault injection at named
  sites, for proving recovery paths actually recover;
* :mod:`repro.runtime.retry` — seeded retry-with-backoff with an
  injectable sleeper (tests never wall-clock sleep);
* :mod:`repro.runtime.journal` — crash-safe JSONL journals and atomic
  file replacement, backing ``repro-anon experiment --resume``;
* :mod:`repro.runtime.fallback` — degradation chains over the
  registered algorithms (imported as ``repro.runtime.fallback``; it
  sits *above* :mod:`repro.core` in the layer DAG, so the primitives
  here stay importable from the algorithms themselves).
"""

from repro.runtime.deadline import (
    Budget,
    CancelToken,
    Deadline,
    ExecutionLimit,
    Timer,
    active_limits,
    checkpoint,
    deadline_scope,
    limit_scope,
)
from repro.runtime.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_point,
    fault_scope,
)
from repro.runtime.journal import Journal, atomic_write_text
from repro.runtime.retry import RetryPolicy, call_with_retry

__all__ = [
    "Deadline",
    "Budget",
    "CancelToken",
    "ExecutionLimit",
    "Timer",
    "checkpoint",
    "limit_scope",
    "deadline_scope",
    "active_limits",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_SITES",
    "fault_scope",
    "fault_point",
    "active_plan",
    "Journal",
    "atomic_write_text",
    "RetryPolicy",
    "call_with_retry",
]
