"""Runtime scaling sweep (the Section V complexity claims).

The paper quotes O(n²) for the agglomerative algorithm, O(kn²) for
Algorithms 3–5, and O(√n·m²) worst case for Algorithm 6's naive
per-edge matching (which the implementation replaces with an O(n+m)
structure-theorem pass per fix round).  This sweep measures wall-clock
time across table sizes and fits the empirical exponent, so regressions
in the vectorized engines show up as a broken power law rather than a
silent slowdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.agglomerative import agglomerative_clustering
from repro.core.distances import get_distance
from repro.core.forest import forest_clustering
from repro.core.kk import kk_anonymize
from repro.core.scalable import blocked_agglomerative
from repro.datasets.registry import load
from repro.report import format_table
from repro.measures.base import CostModel
from repro.measures.registry import get_measure
from repro.runtime import Timer
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class ScalingPoint:
    """One (algorithm, n) timing."""

    algorithm: str
    n: int
    seconds: float


@dataclass(frozen=True)
class ScalingResult:
    """Full sweep with per-algorithm exponent fits."""

    dataset: str
    k: int
    points: tuple[ScalingPoint, ...]

    def exponent(self, algorithm: str) -> float:
        """Least-squares slope of log(time) vs log(n) for one algorithm."""
        pts = [(p.n, p.seconds) for p in self.points if p.algorithm == algorithm]
        if len(pts) < 2:
            return float("nan")
        xs = [math.log(n) for n, _ in pts]
        ys = [math.log(max(t, 1e-9)) for _, t in pts]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        return num / den if den else float("nan")

    def format(self) -> str:
        """Aligned table plus fitted exponents."""
        algorithms = sorted({p.algorithm for p in self.points})
        ns = sorted({p.n for p in self.points})
        by_key = {(p.algorithm, p.n): p.seconds for p in self.points}
        rows = [
            [algo]
            + [by_key.get((algo, n), float("nan")) for n in ns]
            + [f"n^{self.exponent(algo):.2f}"]
            for algo in algorithms
        ]
        return format_table(
            ["algorithm"] + [f"n={n}" for n in ns] + ["fit"], rows, 3
        )


def scaling_sweep(
    dataset: str = "adult",
    k: int = 10,
    sizes: tuple[int, ...] = (200, 400, 800),
    measure: str = "entropy",
    seed: int = 0,
) -> ScalingResult:
    """Time the three main pipelines across table sizes."""
    points: list[ScalingPoint] = []
    distance = get_distance("d3")
    for n in sizes:
        table = load(dataset, n=n, seed=seed)
        model = CostModel(EncodedTable(table), get_measure(measure))

        with Timer() as timer:
            agglomerative_clustering(model, k, distance)
        points.append(ScalingPoint("agglomerative", n, timer.seconds))

        with Timer() as timer:
            forest_clustering(model, k)
        points.append(ScalingPoint("forest", n, timer.seconds))

        with Timer() as timer:
            kk_anonymize(model, k)
        points.append(ScalingPoint("kk", n, timer.seconds))

        with Timer() as timer:
            blocked_agglomerative(
                model, k, distance, block_size=max(256, 4 * k)
            )
        points.append(ScalingPoint("blocked", n, timer.seconds))
    return ScalingResult(dataset=dataset, k=k, points=tuple(points))
