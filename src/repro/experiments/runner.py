"""Experiment runner with encoding/model caches.

Every experiment in Section VI runs many algorithms on the same few
(dataset, measure) pairs; the runner builds each
:class:`~repro.tabular.encoding.EncodedTable` and
:class:`~repro.measures.base.CostModel` once and memoizes individual
algorithm runs, so the Table I grid, the figures and the ablations can
all share work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.core.agglomerative import agglomerative_clustering
from repro.core.clustering import clustering_to_nodes
from repro.core.distances import get_distance
from repro.core.forest import forest_clustering
from repro.core.global_1k import global_one_k_anonymize
from repro.core.kk import kk_anonymize
from repro.datasets.registry import load
from repro.experiments.configs import ExperimentConfig
from repro.measures.base import CostModel
from repro.measures.registry import get_measure
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class RunOutcome:
    """Cost and timing of one algorithm run."""

    cost: float
    seconds: float
    extra: tuple[tuple[str, Any], ...] = ()

    def extra_dict(self) -> dict[str, Any]:
        """The extra diagnostics as a dict."""
        return dict(self.extra)


class ExperimentRunner:
    """Shared caches + algorithm entry points for the harness."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._tables: dict[str, EncodedTable] = {}
        self._models: dict[tuple[str, str], CostModel] = {}
        self._runs: dict[tuple, RunOutcome] = {}

    # ------------------------------------------------------------------ #
    # caches
    # ------------------------------------------------------------------ #

    def encoded(self, dataset: str) -> EncodedTable:
        """The (cached) encoded table of one dataset."""
        if dataset not in self._tables:
            table = load(
                dataset, n=self.config.sizes[dataset], seed=self.config.seed
            )
            self._tables[dataset] = EncodedTable(table)
        return self._tables[dataset]

    def model(self, dataset: str, measure: str) -> CostModel:
        """The (cached) cost model of one (dataset, measure) pair."""
        key = (dataset, measure)
        if key not in self._models:
            self._models[key] = CostModel(self.encoded(dataset), get_measure(measure))
        return self._models[key]

    # ------------------------------------------------------------------ #
    # algorithm runs (memoized)
    # ------------------------------------------------------------------ #

    def _memo(self, key: tuple, fn) -> RunOutcome:
        if key not in self._runs:
            started = time.perf_counter()
            cost, extra = fn()
            self._runs[key] = RunOutcome(
                cost=cost,
                seconds=time.perf_counter() - started,
                extra=tuple(sorted(extra.items())),
            )
        return self._runs[key]

    def agglomerative(
        self,
        dataset: str,
        measure: str,
        k: int,
        distance: str,
        modified: bool = False,
    ) -> RunOutcome:
        """One agglomerative k-anonymization run (Algorithm 1/2)."""

        def go():
            model = self.model(dataset, measure)
            clustering = agglomerative_clustering(
                model, k, get_distance(distance), modified=modified
            )
            nodes = clustering_to_nodes(model.enc, clustering)
            return model.table_cost(nodes), {
                "num_clusters": clustering.num_clusters
            }

        return self._memo(("agg", dataset, measure, k, distance, modified), go)

    def forest(self, dataset: str, measure: str, k: int) -> RunOutcome:
        """One forest-baseline run."""

        def go():
            model = self.model(dataset, measure)
            clustering = forest_clustering(model, k)
            nodes = clustering_to_nodes(model.enc, clustering)
            return model.table_cost(nodes), {
                "num_clusters": clustering.num_clusters
            }

        return self._memo(("forest", dataset, measure, k), go)

    def kk(
        self,
        dataset: str,
        measure: str,
        k: int,
        expander: str = "expansion",
        join_with: str = "generalized",
    ) -> RunOutcome:
        """One (k,k)-anonymization run (Algorithm 3/4 + 5)."""

        def go():
            model = self.model(dataset, measure)
            nodes = kk_anonymize(model, k, expander=expander, join_with=join_with)
            return model.table_cost(nodes), {}

        return self._memo(("kk", dataset, measure, k, expander, join_with), go)

    def global_1k(
        self, dataset: str, measure: str, k: int, expander: str = "expansion"
    ) -> RunOutcome:
        """(k,k) followed by Algorithm 6, reporting conversion stats."""

        def go():
            model = self.model(dataset, measure)
            kk_nodes = kk_anonymize(model, k, expander=expander)
            kk_cost = model.table_cost(kk_nodes)
            nodes, stats = global_one_k_anonymize(model, kk_nodes, k)
            return model.table_cost(nodes), {
                "kk_cost": kk_cost,
                "passes": stats.passes,
                "fixes": stats.fixes,
                "initial_deficient": stats.initial_deficient,
            }

        return self._memo(("global", dataset, measure, k, expander), go)
