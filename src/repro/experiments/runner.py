"""Experiment runner with encoding/model caches and crash-safe resume.

Every experiment in Section VI runs many algorithms on the same few
(dataset, measure) pairs; the runner builds each
:class:`~repro.tabular.encoding.EncodedTable` and
:class:`~repro.measures.base.CostModel` once and memoizes individual
algorithm runs, so the Table I grid, the figures and the ablations can
all share work.

Each memoized cell is identified by a typed :class:`RunKey` and can be
journaled to a crash-safe JSONL file (:mod:`repro.runtime.journal`):
pass ``journal=`` (and ``resume=True`` to preload a previous run's
cells), and a killed grid continues where it stopped instead of
recomputing finished cells.  ``repro-anon experiment --journal/--resume``
is the CLI surface.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

from repro.core.agglomerative import agglomerative_clustering
from repro.core.clustering import clustering_to_nodes
from repro.core.distances import get_distance
from repro.core.forest import forest_clustering
from repro.core.global_1k import global_one_k_anonymize
from repro.core.kk import kk_anonymize
from repro.datasets.registry import load
from repro.errors import ExperimentError
from repro.experiments.configs import ExperimentConfig
from repro.measures.base import CostModel
from repro.measures.registry import get_measure
from repro.obs import (
    MetricsRegistry,
    active_registries,
    metrics_scope,
    observe,
    span,
)
from repro.runtime import Journal, Timer, call_with_retry, checkpoint
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class RunKey:
    """Typed identity of one memoized algorithm run (one grid cell).

    Replaces the old positional ``tuple`` keys: every field is named, so
    journal entries are self-describing and two call sites can no longer
    collide by accident of tuple arity.  Fields that do not apply to a
    ``kind`` stay at their empty defaults.
    """

    kind: str  #: "agg", "forest", "kk" or "global"
    dataset: str
    measure: str
    k: int
    distance: str = ""  #: agglomerative cluster distance (d1..d4, nc)
    modified: bool = False  #: Algorithm 2 shrinking (agglomerative only)
    expander: str = ""  #: (k,1) stage for kk/global kinds
    join_with: str = ""  #: Algorithm 5 join target (kk kind)

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict; round-trips through :meth:`from_json`."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RunKey":
        """Rebuild a key from :meth:`to_json` output (journal replay)."""
        try:
            return cls(
                kind=str(data["kind"]),
                dataset=str(data["dataset"]),
                measure=str(data["measure"]),
                k=int(data["k"]),
                distance=str(data.get("distance", "")),
                modified=bool(data.get("modified", False)),
                expander=str(data.get("expander", "")),
                join_with=str(data.get("join_with", "")),
            )
        except KeyError as exc:
            raise ExperimentError(
                f"journal entry is missing run-key field {exc}"
            ) from exc


@dataclass(frozen=True)
class RunOutcome:
    """Cost and timing of one algorithm run.

    ``metrics`` holds the cell's :class:`~repro.obs.MetricsRegistry`
    delta snapshot when metrics collection was active while the cell
    ran, else ``None``.  The JSON form omits the key entirely when
    absent, so journals written with metrics off are byte-identical to
    pre-observability journals.
    """

    cost: float
    seconds: float
    extra: tuple[tuple[str, Any], ...] = ()
    metrics: dict[str, Any] | None = field(default=None, compare=False)

    def extra_dict(self) -> dict[str, Any]:
        """The extra diagnostics as a dict."""
        return dict(self.extra)

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict; round-trips through :meth:`from_json`."""
        data: dict[str, Any] = {
            "cost": self.cost,
            "seconds": self.seconds,
            "extra": [[name, value] for name, value in self.extra],
        }
        if self.metrics is not None:
            data["metrics"] = self.metrics
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RunOutcome":
        """Rebuild an outcome from :meth:`to_json` output."""
        try:
            return cls(
                cost=float(data["cost"]),
                seconds=float(data["seconds"]),
                extra=tuple(
                    (str(name), value) for name, value in data.get("extra", [])
                ),
                metrics=data.get("metrics"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"journal entry holds a malformed run outcome: {exc}"
            ) from exc


class ExperimentRunner:
    """Shared caches + algorithm entry points for the harness.

    Parameters
    ----------
    config:
        Grid configuration (datasets, sizes, measures, seed).
    journal:
        Optional crash-safe journal; every newly computed cell is
        appended (with retry) as soon as it finishes.
    resume:
        Preload the journal's existing cells into the memo table, so
        they are never recomputed.  ``resumed_cells`` counts them;
        ``computed_cells`` counts the cells actually run afresh.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        journal: Journal | None = None,
        resume: bool = False,
    ) -> None:
        self.config = config or ExperimentConfig()
        self._tables: dict[str, EncodedTable] = {}
        self._models: dict[tuple[str, str], CostModel] = {}
        self._runs: dict[RunKey, RunOutcome] = {}
        # Guards _runs / the cell counters / the journal appends: the
        # parallel executor's completion callbacks land on arbitrary
        # threads, and interleaved memo-store + journal-append pairs
        # would tear the journal (see TestRunnerThreadSafety).
        self._lock = threading.Lock()
        self.journal = journal
        self.computed_cells = 0
        self.resumed_cells = 0
        if resume:
            if journal is None:
                raise ExperimentError("resume=True requires a journal")
            for key_json, value_json in journal.entries():
                key = RunKey.from_json(key_json)
                if key not in self._runs:
                    self.resumed_cells += 1
                self._runs[key] = RunOutcome.from_json(value_json)

    # ------------------------------------------------------------------ #
    # caches
    # ------------------------------------------------------------------ #

    def encoded(self, dataset: str) -> EncodedTable:
        """The (cached) encoded table of one dataset."""
        if dataset not in self._tables:
            table = load(
                dataset, n=self.config.sizes[dataset], seed=self.config.seed
            )
            self._tables[dataset] = EncodedTable(table)
        return self._tables[dataset]

    def model(self, dataset: str, measure: str) -> CostModel:
        """The (cached) cost model of one (dataset, measure) pair."""
        key = (dataset, measure)
        if key not in self._models:
            self._models[key] = CostModel(self.encoded(dataset), get_measure(measure))
        return self._models[key]

    # ------------------------------------------------------------------ #
    # algorithm runs (memoized)
    # ------------------------------------------------------------------ #

    def _memo(
        self, key: RunKey, fn: Callable[[], tuple[float, dict[str, Any]]]
    ) -> RunOutcome:
        with self._lock:
            cached = self._runs.get(key)
        if cached is not None:
            return cached
        # Compute outside the lock (cells take seconds; holding the lock
        # would serialize concurrent callers), then store first-wins.
        checkpoint("experiments.cell")
        # When metrics are being collected, stack a fresh registry for
        # the cell: increments land both here (the cell's delta) and in
        # the enclosing run-level registries underneath.
        cell_registry = MetricsRegistry() if active_registries() else None
        with ExitStack() as stack:
            stack.enter_context(span("experiments.cell", **key.to_json()))
            if cell_registry is not None:
                stack.enter_context(metrics_scope(cell_registry))
            with Timer() as timer:
                cost, extra = fn()
        outcome = RunOutcome(
            cost=cost,
            seconds=timer.seconds,
            extra=tuple(sorted(extra.items())),
            metrics=(
                cell_registry.snapshot() if cell_registry is not None else None
            ),
        )
        return self._store(key, outcome)

    def _store(self, key: RunKey, outcome: RunOutcome) -> RunOutcome:
        """Store a finished cell: first writer wins, memo/counter/journal
        updated atomically so the journal gets exactly one entry per key."""
        with self._lock:
            existing = self._runs.get(key)
            if existing is not None:
                return existing
            self._runs[key] = outcome
            self.computed_cells += 1
            # Timing histogram goes to the run-level registries only
            # (the cell's own scope has already been popped), keeping
            # cell deltas free of nondeterministic timings.
            observe("experiments.cell_seconds", outcome.seconds)
            if self.journal is not None:
                # Transient I/O failures must not discard a finished cell.
                call_with_retry(
                    lambda: self.journal.append(key.to_json(), outcome.to_json())  # type: ignore[union-attr]
                )
            return outcome

    def has(self, key: RunKey) -> bool:
        """Whether a cell is already memoized (resumed or computed)."""
        with self._lock:
            return key in self._runs

    def absorb(self, key: RunKey, outcome: RunOutcome) -> RunOutcome:
        """Merge a cell computed elsewhere (e.g. by a worker process).

        Counts toward ``computed_cells`` and is journaled exactly like a
        locally computed cell; if the key is already memoized the
        existing outcome wins and the merge is a no-op.  A cell-metrics
        snapshot collected in the worker is folded into this process's
        active registries (locally computed cells need no such fold —
        their increments landed live via the scope stack).
        """
        stored = self._store(key, outcome)
        if stored is outcome and outcome.metrics is not None:
            for registry in active_registries():
                registry.merge_snapshot(outcome.metrics)
        return stored

    def run_key(self, key: RunKey) -> RunOutcome:
        """Run (or recall) the cell identified by ``key``.

        The dispatch inverse of the typed entry points below: parallel
        workers receive bare :class:`RunKey` values and route them here.
        """
        if key.kind == "agg":
            return self.agglomerative(
                key.dataset,
                key.measure,
                key.k,
                key.distance,
                modified=key.modified,
            )
        if key.kind == "forest":
            return self.forest(key.dataset, key.measure, key.k)
        if key.kind == "kk":
            return self.kk(
                key.dataset,
                key.measure,
                key.k,
                expander=key.expander,
                join_with=key.join_with,
            )
        if key.kind == "global":
            return self.global_1k(
                key.dataset, key.measure, key.k, expander=key.expander
            )
        raise ExperimentError(f"unknown run kind {key.kind!r}")

    def agglomerative(
        self,
        dataset: str,
        measure: str,
        k: int,
        distance: str,
        modified: bool = False,
    ) -> RunOutcome:
        """One agglomerative k-anonymization run (Algorithm 1/2)."""

        def go():
            model = self.model(dataset, measure)
            clustering = agglomerative_clustering(
                model,
                k,
                get_distance(distance),
                modified=modified,
                backend=self.config.backend,
            )
            nodes = clustering_to_nodes(model.enc, clustering)
            return model.table_cost(nodes), {
                "num_clusters": clustering.num_clusters
            }

        key = RunKey(
            "agg", dataset, measure, k, distance=distance, modified=modified
        )
        return self._memo(key, go)

    def forest(self, dataset: str, measure: str, k: int) -> RunOutcome:
        """One forest-baseline run."""

        def go():
            model = self.model(dataset, measure)
            clustering = forest_clustering(model, k)
            nodes = clustering_to_nodes(model.enc, clustering)
            return model.table_cost(nodes), {
                "num_clusters": clustering.num_clusters
            }

        return self._memo(RunKey("forest", dataset, measure, k), go)

    def kk(
        self,
        dataset: str,
        measure: str,
        k: int,
        expander: str = "expansion",
        join_with: str = "generalized",
    ) -> RunOutcome:
        """One (k,k)-anonymization run (Algorithm 3/4 + 5)."""

        def go():
            model = self.model(dataset, measure)
            nodes = kk_anonymize(
                model,
                k,
                expander=expander,
                join_with=join_with,
                backend=self.config.backend,
            )
            return model.table_cost(nodes), {}

        key = RunKey(
            "kk", dataset, measure, k, expander=expander, join_with=join_with
        )
        return self._memo(key, go)

    def global_1k(
        self, dataset: str, measure: str, k: int, expander: str = "expansion"
    ) -> RunOutcome:
        """(k,k) followed by Algorithm 6, reporting conversion stats."""

        def go():
            model = self.model(dataset, measure)
            kk_nodes = kk_anonymize(
                model, k, expander=expander, backend=self.config.backend
            )
            kk_cost = model.table_cost(kk_nodes)
            nodes, stats = global_one_k_anonymize(model, kk_nodes, k)
            return model.table_cost(nodes), {
                "kk_cost": kk_cost,
                "passes": stats.passes,
                "fixes": stats.fixes,
                "initial_deficient": stats.initial_deficient,
            }

        return self._memo(RunKey("global", dataset, measure, k, expander=expander), go)
