"""The paper's reported numbers (Table I), for side-by-side comparison.

Rows are keyed by (dataset, measure, row) with row one of
``best-k-anon``, ``forest``, ``kk``; values map k -> information loss.
These are the exact figures printed in Table I of the paper.

Absolute agreement is *not* expected on ADT/CMC (our data is synthetic,
our hierarchies differ — see DESIGN.md §2) but the paper's two headline
relations must reproduce:

* agglomerative beats forest by 20%–50% (``FOREST_IMPROVEMENT``),
* (k,k) beats the best k-anonymization by 10%–30%
  (``KK_IMPROVEMENT``).
"""

from __future__ import annotations

#: Table I, verbatim.
PAPER_TABLE1: dict[tuple[str, str, str], dict[int, float]] = {
    ("art", "entropy", "best-k-anon"): {5: 0.65, 10: 0.98, 15: 1.13, 20: 1.22},
    ("art", "entropy", "forest"): {5: 0.89, 10: 1.25, 15: 1.42, 20: 1.51},
    ("art", "entropy", "kk"): {5: 0.53, 10: 0.83, 15: 0.99, 20: 1.08},
    ("adult", "entropy", "best-k-anon"): {5: 0.66, 10: 0.93, 15: 1.08, 20: 1.18},
    ("adult", "entropy", "forest"): {5: 1.02, 10: 1.45, 15: 1.63, 20: 1.73},
    ("adult", "entropy", "kk"): {5: 0.50, 10: 0.75, 15: 0.90, 20: 1.00},
    ("cmc", "entropy", "best-k-anon"): {5: 0.67, 10: 0.95, 15: 1.08, 20: 1.20},
    ("cmc", "entropy", "forest"): {5: 0.99, 10: 1.31, 15: 1.46, 20: 1.53},
    ("cmc", "entropy", "kk"): {5: 0.54, 10: 0.80, 15: 0.98, 20: 1.10},
    ("art", "lm", "best-k-anon"): {5: 0.12, 10: 0.19, 15: 0.23, 20: 0.25},
    ("art", "lm", "forest"): {5: 0.15, 10: 0.24, 15: 0.28, 20: 0.31},
    ("art", "lm", "kk"): {5: 0.10, 10: 0.16, 15: 0.19, 20: 0.22},
    ("adult", "lm", "best-k-anon"): {5: 0.14, 10: 0.20, 15: 0.24, 20: 0.26},
    ("adult", "lm", "forest"): {5: 0.22, 10: 0.37, 15: 0.46, 20: 0.53},
    ("adult", "lm", "kk"): {5: 0.09, 10: 0.13, 15: 0.16, 20: 0.18},
    ("cmc", "lm", "best-k-anon"): {5: 0.14, 10: 0.21, 15: 0.25, 20: 0.28},
    ("cmc", "lm", "forest"): {5: 0.19, 10: 0.31, 15: 0.40, 20: 0.44},
    ("cmc", "lm", "kk"): {5: 0.11, 10: 0.17, 15: 0.20, 20: 0.23},
}

#: The k values Table I and Figures 2–3 sweep.
PAPER_KS = (5, 10, 15, 20)

#: "information loss is reduced by 20%–50%" (agglomerative vs forest).
FOREST_IMPROVEMENT = (0.20, 0.50)

#: "The improvement offered by (k,k)-anonymity ... ranges between 10% and
#: 30%."
KK_IMPROVEMENT = (0.10, 0.30)


def paper_value(dataset: str, measure: str, row: str, k: int) -> float:
    """One Table I cell (raises KeyError for unknown coordinates)."""
    return PAPER_TABLE1[(dataset, measure, row)][k]


def paper_improvement(
    dataset: str, measure: str, better: str, worse: str, k: int
) -> float:
    """Relative improvement 1 − better/worse for one paper cell pair."""
    b = paper_value(dataset, measure, better, k)
    w = paper_value(dataset, measure, worse, k)
    return 1.0 - b / w
