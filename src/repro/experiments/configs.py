"""Experiment configuration: sizes, seeds, variant sets, env overrides.

Default table sizes are deliberately below the paper's (ART 1000,
ADT 5000, CMC 1500) so the benchmark suite finishes in minutes on a
laptop; the paper itself observes that per-entry information loss is
nearly size-independent, so the Table I *shape* is preserved.  Two
environment variables rescale everything:

* ``REPRO_FULL=1``       — use the paper's sizes.
* ``REPRO_BENCH_N=<n>``  — force every dataset to n records.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.experiments.paper_values import PAPER_KS

#: Benchmark-default sizes (fast); the paper's sizes under REPRO_FULL=1.
DEFAULT_SIZES = {"art": 400, "adult": 400, "cmc": 400}
PAPER_SIZES = {"art": 1000, "adult": 5000, "cmc": 1500}

#: The eight agglomerative variants behind Table I's "best k-anon" row:
#: four distance functions × {basic, modified}.
AGGLOMERATIVE_VARIANTS: tuple[tuple[str, bool], ...] = tuple(
    (dist, modified) for dist in ("d1", "d2", "d3", "d4") for modified in (False, True)
)


def variant_name(distance: str, modified: bool) -> str:
    """Display name of one agglomerative variant."""
    return f"{distance}{'-mod' if modified else ''}"


def resolve_sizes() -> dict[str, int]:
    """Dataset sizes after applying the environment overrides."""
    if os.environ.get("REPRO_BENCH_N"):
        n = int(os.environ["REPRO_BENCH_N"])
        return {name: n for name in DEFAULT_SIZES}
    if os.environ.get("REPRO_FULL") == "1":
        return dict(PAPER_SIZES)
    return dict(DEFAULT_SIZES)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment run depends on."""

    sizes: dict[str, int] = field(default_factory=resolve_sizes)
    seed: int = 0
    ks: tuple[int, ...] = PAPER_KS
    datasets: tuple[str, ...] = ("art", "adult", "cmc")
    measures: tuple[str, ...] = ("entropy", "lm")
    #: Execution backend for every cell.  Deliberately NOT part of
    #: :class:`~repro.experiments.runner.RunKey` or the journal: backends
    #: are bit-equivalent, so the same cell run under either backend is
    #: the same result — which is precisely what
    #: :func:`repro.perf.equivalence.check_backend_equivalence` verifies
    #: by comparing the two runs' canonical journals byte-for-byte.
    backend: str = "python"

    def describe(self) -> str:
        """One-line run description for report headers."""
        sizes = ", ".join(f"{d}={self.sizes[d]}" for d in self.datasets)
        return (
            f"sizes [{sizes}], seed {self.seed}, "
            f"k ∈ {list(self.ks)}, measures {list(self.measures)}"
        )
