"""One-shot reproduction report: every experiment, one document.

``repro-anon experiment all [--out FILE]`` (and
:func:`generate_full_report`) runs the complete Section VI evaluation —
Table I, Figures 1–3, the four ablations, the Algorithm 6 study, the
ε-sweep and the seed-stability check — and assembles a single text
report mirroring EXPERIMENTS.md's structure, ready to diff against a
previous run.
"""

from __future__ import annotations

import io

from repro.experiments.ablations import (
    coupling_ablation,
    distance_ablation,
    join_target_ablation,
    modified_ablation,
)
from repro.experiments.figures import compute_figure
from repro.experiments.global1k import (
    format_conversion,
    global_conversion_experiment,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import compute_table1
from repro.experiments.variance import variance_study
from repro.tabular.encoding import EncodedTable


def _rule(title: str) -> str:
    bar = "=" * max(60, len(title) + 4)
    return f"\n{bar}\n  {title}\n{bar}\n"


def generate_full_report(
    runner: ExperimentRunner | None = None,
    include_variance: bool = True,
    include_epsilon: bool = True,
) -> str:
    """Run everything and return the assembled report text."""
    runner = runner or ExperimentRunner()
    out = io.StringIO()

    out.write(_rule("CONFIGURATION"))
    out.write(runner.config.describe() + "\n")

    out.write(_rule("TABLE I"))
    table1 = compute_table1(runner)
    out.write(table1.format() + "\n\n")
    out.write(table1.improvement_summary() + "\n")
    violations = table1.shape_violations()
    out.write(
        "shape check: "
        + ("OK\n" if not violations else "\n".join(violations) + "\n")
    )

    out.write(_rule("FIGURE 1 — class relations"))
    from repro.core.relations import (
        check_figure1,
        enumerate_census,
        proposition_45_example,
    )

    prop_table, _ = proposition_45_example()
    census = enumerate_census(EncodedTable(prop_table), k=2)
    out.write(f"{census.total} generalizations enumerated; regions:\n")
    for key, count in sorted(census.counts.items(), key=lambda kv: -kv[1]):
        label = "+".join(sorted(key)) if key else "(none)"
        out.write(f"  {label:32s} {count:4d}\n")
    problems = check_figure1(census)
    out.write("inclusions: " + ("OK\n" if not problems else f"{problems}\n"))

    for fig_name in ("fig2", "fig3"):
        fig = compute_figure(runner, fig_name)
        out.write(_rule(f"{fig.figure.upper()} — Adult / {fig.measure}"))
        out.write(fig.chart() + "\n\n")
        out.write(fig.numbers() + "\n")

    out.write(_rule("ABLATIONS"))
    for dataset in runner.config.datasets:
        for measure in runner.config.measures:
            out.write(f"\n--- {dataset} / {measure} ---\n")
            ab = distance_ablation(runner, dataset, measure)
            out.write(f"A1 distance ranking: {ab.ranking()}\n")
            out.write(ab.format() + "\n")
            out.write(coupling_ablation(runner, dataset, measure).format() + "\n")
            out.write(modified_ablation(runner, dataset, measure).format() + "\n")
            out.write(
                join_target_ablation(runner, dataset, measure).format() + "\n"
            )

    out.write(_rule("G1 — (k,k) → GLOBAL (1,k)"))
    points = []
    for dataset in runner.config.datasets:
        points.extend(global_conversion_experiment(runner, dataset, "entropy"))
    out.write(format_conversion(points) + "\n")

    if include_epsilon:
        out.write(_rule("F1 — ((1+ε)k,(1+ε)k) SWEEP"))
        from repro.extensions.epsilon_kk import epsilon_sweep

        for dataset in runner.config.datasets:
            sweep = epsilon_sweep(runner.model(dataset, "entropy"), k=5)
            eps = sweep.smallest_sufficient_epsilon()
            out.write(f"\n{dataset}: smallest sufficient ε = {eps}\n")
            for p in sweep.points:
                out.write(
                    f"  ε={p.epsilon:<4} k'={p.k_prime:<3} Π={p.cost:.4f} "
                    f"min matches={p.min_matches} "
                    f"deficient={p.deficient_records}\n"
                )

    if include_variance:
        out.write(_rule("V1 — SEED STABILITY"))
        for dataset in runner.config.datasets:
            study = variance_study(dataset, k=10, n=300)
            out.write("\n" + study.format() + "\n")

    out.write(_rule("END OF REPORT"))
    return out.getvalue()
