"""Experiment harness reproducing Section VI (and the §VII experiments).

* :mod:`repro.experiments.table1` — Table I.
* :mod:`repro.experiments.figures` — Figures 2 and 3.
* :mod:`repro.experiments.ablations` — the Section VI-A bullet claims.
* :mod:`repro.experiments.global1k` — the Algorithm 6 conversion study.
* :mod:`repro.experiments.scaling` — runtime scaling checks.
* :mod:`repro.experiments.paper_values` — the paper's numbers, verbatim.
"""

from repro.experiments.configs import (
    AGGLOMERATIVE_VARIANTS,
    DEFAULT_SIZES,
    PAPER_SIZES,
    ExperimentConfig,
    resolve_sizes,
    variant_name,
)
from repro.experiments.figures import FigureResult, compute_figure
from repro.experiments.runner import ExperimentRunner, RunOutcome
from repro.experiments.table1 import (
    Table1Block,
    Table1Result,
    compute_block,
    compute_table1,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "RunOutcome",
    "compute_table1",
    "compute_block",
    "Table1Result",
    "Table1Block",
    "compute_figure",
    "FigureResult",
    "AGGLOMERATIVE_VARIANTS",
    "DEFAULT_SIZES",
    "PAPER_SIZES",
    "resolve_sizes",
    "variant_name",
]
