"""Minimal ASCII line charts, for reproducing Figures 2 and 3 in text.

The paper's figures plot information loss against k for three series
(k-anon, forest, (k,k)-anon).  :func:`line_chart` renders the same thing
on a character grid with one marker per series and a legend — good
enough to eyeball the orderings and the concave growth in k.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ox*+#@"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "k",
    y_label: str = "loss",
) -> str:
    """Render named (x, y) series on one shared-axis character grid."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    # A little vertical headroom so extreme points don't sit on the frame.
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y_hi - y) / (y_hi - y_lo) * (height - 1))
        return row, col

    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        pts = sorted(pts)
        # Interpolated segments between consecutive points.
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(2, int(abs(cell(x1, y1)[1] - cell(x0, y0)[1])) + 1)
            for s in range(steps + 1):
                t = s / steps
                row, col = cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for x, y in pts:
            row, col = cell(x, y)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title.center(width + 10))
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_hi:8.2f} |"
        elif r == height - 1:
            label = f"{y_lo:8.2f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f"{x_lo:<10.0f}{x_label:^{max(0, width - 20)}}{x_hi:>10.0f}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 9 + legend + f"   (y: {y_label})")
    return "\n".join(lines)
