"""Ablations backing the "additional conclusions" of Section VI-A.

The paper draws four secondary conclusions from its experiments; each
gets a dedicated ablation here:

* **A1 distances** — "the two distance functions that consistently bring
  the best results are (10) and (11)" (our ``d3`` and ``d4``), with the
  Nergiz–Clifton asymmetric variant added for context.
* **A2 couplings** — "the coupling of Algorithms 4 and 5 produced better
  (k,k)-anonymizations than the coupling of Algorithms 3 and 5".
* **A3 modified** — "the corrections made in the modified agglomerative
  algorithm usually reduce the information loss ... negligible for
  [d3, d4]".
* **A4 join target** — this library's own variant of Algorithm 5
  (joining deficient records with the original record instead of its
  generalization), quantifying how much that choice matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import variant_name
from repro.report import format_table
from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class DistanceAblation:
    """A1: every distance function (plus NC), basic algorithm, per k."""

    dataset: str
    measure: str
    ks: tuple[int, ...]
    costs: dict[str, dict[int, float]]  #: distance name -> {k: cost}

    def ranking(self) -> list[str]:
        """Distances ranked by total loss over the k sweep (best first)."""
        return sorted(self.costs, key=lambda d: sum(self.costs[d].values()))

    def format(self) -> str:
        """Aligned table of the sweep."""
        rows = [
            [name] + [self.costs[name][k] for k in self.ks]
            for name in self.ranking()
        ]
        return format_table(["distance"] + [f"k={k}" for k in self.ks], rows)


def distance_ablation(
    runner: ExperimentRunner, dataset: str, measure: str
) -> DistanceAblation:
    """Run A1 for one (dataset, measure)."""
    ks = runner.config.ks
    costs = {
        name: {
            k: runner.agglomerative(dataset, measure, k, name, False).cost
            for k in ks
        }
        for name in ("d1", "d2", "d3", "d4", "nc")
    }
    return DistanceAblation(dataset=dataset, measure=measure, ks=ks, costs=costs)


@dataclass(frozen=True)
class CouplingAblation:
    """A2: Alg 3+5 vs Alg 4+5 per k."""

    dataset: str
    measure: str
    ks: tuple[int, ...]
    expansion: dict[int, float]  #: Alg 4 + 5
    nearest: dict[int, float]  #: Alg 3 + 5

    def expansion_wins(self) -> int:
        """At how many k values Algorithm 4's coupling is at least as good."""
        return sum(
            1 for k in self.ks if self.expansion[k] <= self.nearest[k] + 1e-12
        )

    def format(self) -> str:
        """Aligned table of the comparison."""
        rows = [
            ["alg4+alg5 (expansion)"] + [self.expansion[k] for k in self.ks],
            ["alg3+alg5 (nearest)"] + [self.nearest[k] for k in self.ks],
        ]
        return format_table(["coupling"] + [f"k={k}" for k in self.ks], rows)


def coupling_ablation(
    runner: ExperimentRunner, dataset: str, measure: str
) -> CouplingAblation:
    """Run A2 for one (dataset, measure)."""
    ks = runner.config.ks
    return CouplingAblation(
        dataset=dataset,
        measure=measure,
        ks=ks,
        expansion={k: runner.kk(dataset, measure, k, "expansion").cost for k in ks},
        nearest={k: runner.kk(dataset, measure, k, "nearest").cost for k in ks},
    )


@dataclass(frozen=True)
class ModifiedAblation:
    """A3: basic vs modified agglomerative, per distance, summed over k."""

    dataset: str
    measure: str
    ks: tuple[int, ...]
    totals: dict[str, float]  #: variant name -> total loss over the k sweep

    def relative_gain(self, distance: str) -> float:
        """1 − modified/basic total for one distance (positive = helps)."""
        basic = self.totals[variant_name(distance, False)]
        mod = self.totals[variant_name(distance, True)]
        return 1.0 - mod / basic if basic else 0.0

    def format(self) -> str:
        """Per-distance gain table."""
        rows = [
            [
                d,
                self.totals[variant_name(d, False)],
                self.totals[variant_name(d, True)],
                f"{self.relative_gain(d):+.1%}",
            ]
            for d in ("d1", "d2", "d3", "d4")
        ]
        return format_table(
            ["distance", "basic (Σ over k)", "modified (Σ over k)", "gain"], rows, 3
        )


def modified_ablation(
    runner: ExperimentRunner, dataset: str, measure: str
) -> ModifiedAblation:
    """Run A3 for one (dataset, measure)."""
    ks = runner.config.ks
    totals = {}
    for distance in ("d1", "d2", "d3", "d4"):
        for modified in (False, True):
            totals[variant_name(distance, modified)] = sum(
                runner.agglomerative(dataset, measure, k, distance, modified).cost
                for k in ks
            )
    return ModifiedAblation(dataset=dataset, measure=measure, ks=ks, totals=totals)


@dataclass(frozen=True)
class JoinTargetAblation:
    """A4: Algorithm 5 joining with R̄_i (paper) vs R_i (tight variant)."""

    dataset: str
    measure: str
    ks: tuple[int, ...]
    generalized: dict[int, float]  #: paper behaviour
    original: dict[int, float]  #: tight variant

    def format(self) -> str:
        """Aligned table of the comparison."""
        rows = [
            ["join with R̄_i (paper)"] + [self.generalized[k] for k in self.ks],
            ["join with R_i (tight)"] + [self.original[k] for k in self.ks],
        ]
        return format_table(["Alg 5 variant"] + [f"k={k}" for k in self.ks], rows)


def join_target_ablation(
    runner: ExperimentRunner, dataset: str, measure: str
) -> JoinTargetAblation:
    """Run A4 for one (dataset, measure)."""
    ks = runner.config.ks
    return JoinTargetAblation(
        dataset=dataset,
        measure=measure,
        ks=ks,
        generalized={
            k: runner.kk(dataset, measure, k, "expansion", "generalized").cost
            for k in ks
        },
        original={
            k: runner.kk(dataset, measure, k, "expansion", "original").cost
            for k in ks
        },
    )
