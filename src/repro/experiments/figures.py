"""Figures 2 and 3: information loss vs k on the Adult dataset.

Both figures plot three series — k-anon (best agglomerative), forest,
(k,k)-anon — against k ∈ {5, 10, 15, 20}; Figure 2 under the entropy
measure, Figure 3 under LM.  The series are exactly one Table I block,
rendered as an ASCII chart plus the raw numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.asciiplot import line_chart
from repro.experiments.paper_values import PAPER_TABLE1
from repro.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import Table1Block, compute_block


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: three series over k."""

    figure: str  #: "Figure 2" or "Figure 3"
    dataset: str
    measure: str
    block: Table1Block

    def series(self) -> dict[str, list[tuple[float, float]]]:
        """The three (k, loss) series, paper legend order."""
        ks = self.block.ks
        return {
            "k-anon.": [(k, self.block.best_k_anon[k]) for k in ks],
            "forest alg.": [(k, self.block.forest[k]) for k in ks],
            "(k,k)-anon.": [(k, self.block.kk[k]) for k in ks],
        }

    def chart(self) -> str:
        """The ASCII rendition of the figure."""
        unit = "bits/entry" if self.measure == "entropy" else "LM units"
        return line_chart(
            self.series(),
            title=f"{self.figure}: {self.dataset.upper()} / "
            f"{self.measure} measure",
            y_label=unit,
        )

    def numbers(self) -> str:
        """Raw series values side by side with the paper's."""
        ks = self.block.ks
        rows: list[list[object]] = []
        for name, row_key in (
            ("k-anon", "best-k-anon"),
            ("forest", "forest"),
            ("(k,k)", "kk"),
        ):
            series = {
                "k-anon": self.block.best_k_anon,
                "forest": self.block.forest,
                "(k,k)": self.block.kk,
            }[name]
            rows.append([name] + [series[k] for k in ks])
            paper = PAPER_TABLE1.get((self.dataset, self.measure, row_key))
            if paper and all(k in paper for k in ks):
                rows.append([f"{name} (paper)"] + [paper[k] for k in ks])
        return format_table(["series"] + [f"k={k}" for k in ks], rows)

    def monotone_violations(self) -> list[str]:
        """Loss should be non-decreasing in k for every series."""
        problems = []
        for name, pts in self.series().items():
            ys = [y for _, y in sorted(pts)]
            for a, b in zip(ys, ys[1:]):
                if b < a - 1e-9:
                    problems.append(
                        f"{self.figure} series {name!r} decreases "
                        f"({a:.3f} -> {b:.3f})"
                    )
        return problems


def compute_figure(
    runner: ExperimentRunner | None = None,
    figure: str = "fig2",
    dataset: str = "adult",
) -> FigureResult:
    """Compute Figure 2 (``fig2``, entropy) or Figure 3 (``fig3``, LM)."""
    runner = runner or ExperimentRunner()
    if figure == "fig2":
        measure, label = "entropy", "Figure 2"
    elif figure == "fig3":
        measure, label = "lm", "Figure 3"
    else:
        raise ValueError(f"unknown figure {figure!r}; expected 'fig2' or 'fig3'")
    block = compute_block(runner, dataset, measure)
    return FigureResult(figure=label, dataset=dataset, measure=measure, block=block)
