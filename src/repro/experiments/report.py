"""Backward-compatible re-export of :mod:`repro.report`.

The table/block formatters started life here; they moved to
:mod:`repro.report` (layer 1 of the import DAG) so that lower layers —
dataset descriptions, utility summaries — can format tables without a
back-edge into the experiment layer.  Importing from this module keeps
working; new code should import :mod:`repro.report` directly.
"""

from __future__ import annotations

from repro.report import format_kv_block, format_table, format_value

__all__ = ["format_table", "format_value", "format_kv_block"]
