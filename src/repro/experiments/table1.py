"""Reproduction of Table I — the paper's headline result.

For every (dataset, measure) block the table reports, over
k ∈ {5, 10, 15, 20}:

* **best k-anon** — the agglomerative variant (4 distances × basic /
  modified = 8 candidates) minimizing the *sum* of information loss over
  the four k values, exactly as the paper defines the row;
* **forest** — the Aggarwal et al. baseline;
* **(k,k)-anon** — the better of the two couplings (Alg 3+5, Alg 4+5).

:func:`compute_table1` produces the numbers;
:meth:`Table1Result.format` prints the paper-style table;
:meth:`Table1Result.shape_violations` asserts the paper's qualitative
claims (orderings and improvement ranges) hold for this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import (
    AGGLOMERATIVE_VARIANTS,
    ExperimentConfig,
    variant_name,
)
from repro.experiments.paper_values import (
    FOREST_IMPROVEMENT,
    KK_IMPROVEMENT,
    PAPER_TABLE1,
)
from repro.report import format_table
from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class Table1Block:
    """One (dataset, measure) block of Table I."""

    dataset: str
    measure: str
    ks: tuple[int, ...]
    best_k_anon: dict[int, float]  #: winning agglomerative variant's costs
    best_variant: str  #: which variant won (e.g. "d3" or "d4-mod")
    all_variants: dict[str, dict[int, float]]  #: every variant's costs
    forest: dict[int, float]
    kk: dict[int, float]  #: better coupling's costs
    kk_winner: dict[int, str]  #: which expander won at each k

    def improvement_vs_forest(self, k: int) -> float:
        """1 − best/forest at one k (paper claims 20%–50%)."""
        return 1.0 - self.best_k_anon[k] / self.forest[k]

    def improvement_kk(self, k: int) -> float:
        """1 − kk/best at one k (paper claims 10%–30%)."""
        return 1.0 - self.kk[k] / self.best_k_anon[k]


@dataclass(frozen=True)
class Table1Result:
    """All six blocks plus formatting/validation helpers."""

    config: ExperimentConfig
    blocks: dict[tuple[str, str], Table1Block]

    def block(self, dataset: str, measure: str) -> Table1Block:
        """One block by coordinates."""
        return self.blocks[(dataset, measure)]

    def format(self, with_paper: bool = True) -> str:
        """The paper-style summary table (optionally with paper values)."""
        ks = self.config.ks
        headers = ["block / row"] + [f"k={k}" for k in ks]
        rows: list[list[object]] = []
        for (dataset, measure), block in self.blocks.items():
            label = f"{dataset.upper()}/{measure.upper()}"
            triples = [
                (f"best k-anon [{block.best_variant}]", block.best_k_anon,
                 "best-k-anon"),
                ("forest", block.forest, "forest"),
                ("(k,k)-anon", block.kk, "kk"),
            ]
            for name, series, paper_row in triples:
                rows.append([f"{label} {name}"] + [series[k] for k in ks])
                if with_paper and (dataset, measure, paper_row) in PAPER_TABLE1:
                    paper = PAPER_TABLE1[(dataset, measure, paper_row)]
                    rows.append(
                        [f"{label}   (paper)"]
                        + [paper.get(k, float("nan")) for k in ks]
                    )
        title = f"Table I reproduction — {self.config.describe()}"
        return title + "\n" + format_table(headers, rows)

    def shape_violations(self, tolerance: float = 0.02) -> list[str]:
        """Check the paper's qualitative claims; return violations.

        Orderings checked at every grid point: (k,k) ≤ best k-anon ≤
        forest.  Both are empirical findings about heuristics, not
        theorems, and at small n with large k (k/n far above the paper's
        ≤2%) they can tie — so a point only counts as a violation when
        the "better" side is worse by more than ``tolerance`` relative.
        """
        problems = []
        for (dataset, measure), block in self.blocks.items():
            where = f"{dataset}/{measure}"
            for k in self.config.ks:
                if block.best_k_anon[k] > block.forest[k] * (1 + tolerance):
                    problems.append(
                        f"{where} k={k}: best k-anon {block.best_k_anon[k]:.3f} "
                        f"worse than forest {block.forest[k]:.3f}"
                    )
                if block.kk[k] > block.best_k_anon[k] * (1 + tolerance):
                    problems.append(
                        f"{where} k={k}: (k,k) {block.kk[k]:.3f} worse than "
                        f"best k-anon {block.best_k_anon[k]:.3f}"
                    )
        return problems

    def improvement_summary(self) -> str:
        """Measured vs paper improvement ranges."""
        forest_imps, kk_imps = [], []
        for block in self.blocks.values():
            for k in self.config.ks:
                forest_imps.append(block.improvement_vs_forest(k))
                kk_imps.append(block.improvement_kk(k))
        lines = [
            "improvement of agglomerative over forest: "
            f"{min(forest_imps):.0%}..{max(forest_imps):.0%} "
            f"(paper: {FOREST_IMPROVEMENT[0]:.0%}..{FOREST_IMPROVEMENT[1]:.0%})",
            "improvement of (k,k) over best k-anon:    "
            f"{min(kk_imps):.0%}..{max(kk_imps):.0%} "
            f"(paper: {KK_IMPROVEMENT[0]:.0%}..{KK_IMPROVEMENT[1]:.0%})",
        ]
        return "\n".join(lines)


def compute_block(
    runner: ExperimentRunner, dataset: str, measure: str
) -> Table1Block:
    """Compute one (dataset, measure) block."""
    ks = runner.config.ks
    all_variants: dict[str, dict[int, float]] = {}
    for distance, modified in AGGLOMERATIVE_VARIANTS:
        name = variant_name(distance, modified)
        all_variants[name] = {
            k: runner.agglomerative(dataset, measure, k, distance, modified).cost
            for k in ks
        }
    best_variant = min(
        all_variants, key=lambda name: sum(all_variants[name].values())
    )
    forest = {k: runner.forest(dataset, measure, k).cost for k in ks}
    kk: dict[int, float] = {}
    kk_winner: dict[int, str] = {}
    for k in ks:
        expansion = runner.kk(dataset, measure, k, "expansion").cost
        nearest = runner.kk(dataset, measure, k, "nearest").cost
        if expansion <= nearest:
            kk[k], kk_winner[k] = expansion, "expansion"
        else:
            kk[k], kk_winner[k] = nearest, "nearest"
    return Table1Block(
        dataset=dataset,
        measure=measure,
        ks=ks,
        best_k_anon=all_variants[best_variant],
        best_variant=best_variant,
        all_variants=all_variants,
        forest=forest,
        kk=kk,
        kk_winner=kk_winner,
    )


def compute_table1(runner: ExperimentRunner | None = None) -> Table1Result:
    """Compute the full Table I grid (all datasets × measures)."""
    runner = runner or ExperimentRunner()
    blocks = {}
    for dataset in runner.config.datasets:
        for measure in runner.config.measures:
            blocks[(dataset, measure)] = compute_block(runner, dataset, measure)
    return Table1Result(config=runner.config, blocks=blocks)
