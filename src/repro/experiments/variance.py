"""Seed-stability study: how noisy are the reproduced numbers?

The paper reports single numbers per configuration; our datasets are
synthetic samples, so any claim like "(k,k) beats k-anon by 10–30%"
must be stable across samples to mean anything.  This experiment
re-runs the headline pipelines over several seeds and reports
mean ± standard deviation per configuration, plus whether the headline
*orderings* held in every single sample — which is the reproducibility
statement EXPERIMENTS.md leans on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.agglomerative import agglomerative_clustering
from repro.core.clustering import clustering_to_nodes
from repro.core.distances import get_distance
from repro.core.forest import forest_clustering
from repro.core.kk import kk_anonymize
from repro.datasets.registry import load
from repro.report import format_table
from repro.measures.base import CostModel
from repro.measures.registry import get_measure
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class SeedSummary:
    """Mean/σ of one pipeline over the seed sweep."""

    pipeline: str
    mean: float
    std: float
    values: tuple[float, ...]


@dataclass(frozen=True)
class VarianceResult:
    """Full seed-stability report for one (dataset, measure, k)."""

    dataset: str
    measure: str
    k: int
    n: int
    seeds: tuple[int, ...]
    summaries: dict[str, SeedSummary]
    #: per-seed truth of "kk ≤ agglomerative ≤ forest"
    ordering_held: tuple[bool, ...]

    def always_ordered(self) -> bool:
        """Did the headline ordering hold in every sample?"""
        return all(self.ordering_held)

    def relative_std(self, pipeline: str) -> float:
        """Coefficient of variation of one pipeline."""
        s = self.summaries[pipeline]
        return s.std / s.mean if s.mean else 0.0

    def format(self) -> str:
        """Aligned report table."""
        rows = [
            [name, s.mean, s.std, f"{self.relative_std(name):.1%}"]
            for name, s in self.summaries.items()
        ]
        held = sum(self.ordering_held)
        header = (
            f"{self.dataset}/{self.measure} k={self.k} n={self.n} "
            f"({len(self.seeds)} seeds; ordering held in "
            f"{held}/{len(self.seeds)})"
        )
        return header + "\n" + format_table(
            ["pipeline", "mean Π", "σ", "σ/mean"], rows, 4
        )


def _mean_std(values: list[float]) -> tuple[float, float]:
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(var)


def variance_study(
    dataset: str,
    measure: str = "entropy",
    k: int = 10,
    n: int = 300,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> VarianceResult:
    """Run the seed sweep for one configuration."""
    per_pipeline: dict[str, list[float]] = {
        "agglomerative[d3]": [],
        "forest": [],
        "kk[expansion]": [],
    }
    ordering: list[bool] = []
    for seed in seeds:
        table = load(dataset, n=n, seed=seed)
        model = CostModel(EncodedTable(table), get_measure(measure))
        agg = model.table_cost(
            clustering_to_nodes(
                model.enc,
                agglomerative_clustering(model, k, get_distance("d3")),
            )
        )
        forest = model.table_cost(
            clustering_to_nodes(model.enc, forest_clustering(model, k))
        )
        kk = model.table_cost(kk_anonymize(model, k))
        per_pipeline["agglomerative[d3]"].append(agg)
        per_pipeline["forest"].append(forest)
        per_pipeline["kk[expansion]"].append(kk)
        ordering.append(kk <= agg * 1.02 and agg <= forest * 1.02)

    summaries = {}
    for name, values in per_pipeline.items():
        mean, std = _mean_std(values)
        summaries[name] = SeedSummary(
            pipeline=name, mean=mean, std=std, values=tuple(values)
        )
    return VarianceResult(
        dataset=dataset,
        measure=measure,
        k=k,
        n=n,
        seeds=seeds,
        summaries=summaries,
        ordering_held=tuple(ordering),
    )
