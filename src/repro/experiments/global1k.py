"""Experiment G1: the cost of upgrading (k,k) to global (1,k).

Section V-C's empirical observations to reproduce:

* degrees in the consistency graphs of (k,k)-anonymizations sit between
  k and 2k (so m ≤ 2nk and the matching machinery stays tractable);
* deficient records almost always need a single Algorithm 6 fix step,
  even when their initial deficiency exceeds 1;
* this reproduction additionally records how *many* records are
  deficient and the conversion's relative cost overhead (≈10–25% on our
  synthetic datasets), which the paper leaves unquantified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.global_1k import global_one_k_anonymize
from repro.core.kk import kk_anonymize
from repro.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.matching.bipartite import ConsistencyGraph


@dataclass(frozen=True)
class GlobalConversionPoint:
    """One (dataset, measure, k) conversion."""

    dataset: str
    measure: str
    k: int
    kk_cost: float  #: Π before Algorithm 6
    global_cost: float  #: Π after
    initial_deficient: int  #: records with < k matches before fixing
    fixes: int  #: total Algorithm 6 fix steps
    passes: int  #: recompute passes
    min_degree: int  #: smallest consistency-graph degree of the (k,k) input
    max_degree: int  #: largest

    @property
    def overhead(self) -> float:
        """Relative cost increase of the conversion."""
        return self.global_cost / self.kk_cost - 1.0 if self.kk_cost else 0.0


def global_conversion_experiment(
    runner: ExperimentRunner,
    dataset: str,
    measure: str,
    ks: tuple[int, ...] | None = None,
) -> list[GlobalConversionPoint]:
    """Run G1 for one (dataset, measure) across the k sweep."""
    ks = ks or runner.config.ks
    model = runner.model(dataset, measure)
    points = []
    for k in ks:
        kk_nodes = kk_anonymize(model, k)
        graph = ConsistencyGraph(model.enc, kk_nodes)
        degrees = graph.left_degrees()
        nodes, stats = global_one_k_anonymize(model, kk_nodes, k)
        points.append(
            GlobalConversionPoint(
                dataset=dataset,
                measure=measure,
                k=k,
                kk_cost=model.table_cost(kk_nodes),
                global_cost=model.table_cost(nodes),
                initial_deficient=stats.initial_deficient,
                fixes=stats.fixes,
                passes=stats.passes,
                min_degree=int(degrees.min()),
                max_degree=int(degrees.max()),
            )
        )
    return points


def format_conversion(points: list[GlobalConversionPoint]) -> str:
    """Aligned table of G1 results."""
    rows = [
        [
            f"{p.dataset}/{p.measure} k={p.k}",
            p.kk_cost,
            p.global_cost,
            f"{p.overhead:+.1%}",
            p.initial_deficient,
            p.fixes,
            p.passes,
            f"{p.min_degree}..{p.max_degree}",
        ]
        for p in points
    ]
    return format_table(
        [
            "config", "Π (k,k)", "Π global", "overhead",
            "deficient", "fixes", "passes", "degrees",
        ],
        rows,
        3,
    )
