"""The semantic rule catalogue (REP010–REP013): CFG + call-graph rules.

Where REP001–REP009 ask token questions ("is this call spelled
``time.time``?"), these four ask *path* questions over the
:mod:`repro.analysis.flow` control-flow graphs and the
:mod:`repro.analysis.callgraph` reachability engine:

* **REP010** — a function reachable from a ProcessPool worker entry
  writes module-level state.  Forked workers each hold a *copy* of the
  parent's module globals; a write desynchronizes them silently, and
  under a spawn start method the state never existed in the first
  place.  Module-level :class:`~contextvars.ContextVar` bindings are
  exempt (the sanctioned per-context mechanism — REP013 polices their
  discipline instead).
* **REP011** — an unbounded loop in algorithm-reachable code can
  iterate without hitting :func:`repro.runtime.checkpoint`.  The PR 3
  cancellation guarantee is only as strong as its weakest loop: a loop
  with no checkpoint on some cyclic path cannot be deadlined, budgeted
  or cancelled.  Only *outermost* loops are judged (the checkpoint
  discipline is once per outermost iteration; inner loops amortize
  into it), provably bounded loops (literal collections, constant
  ``range``) are allowlisted, and a call into any function from which a
  checkpoint is reachable counts as coverage.
* **REP012** — a file write in ``core``/``experiments``/``perf`` that
  bypasses :class:`repro.runtime.journal.Journal` /
  :func:`~repro.runtime.journal.atomic_write_text`.  A raw
  ``open(path, "w")`` torn by a crash leaves a half-written artifact
  that checkpoint/resume then trusts.
* **REP013** — a module-level ``ContextVar`` set without the
  reset-token discipline: the token discarded outright, or captured
  but never ``reset`` inside a ``finally`` block, so an exceptional
  path leaks the context value into the caller's scope.

All four run as *project* rules: they see the whole parsed tree, build
one shared :class:`SemanticIndex` (call graph + lazily-built per-
function CFGs, memoized across the rules of one lint run), and resolve
reachability from the same entry points the runtime actually uses —
the registered algorithms, the process-pool workers, the experiment
cell drivers.  Findings flow through the ordinary engine machinery, so
``--select``, inline ``# repro: allow[...]`` suppressions and the
baseline ratchet all apply unchanged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.callgraph import (
    CallGraph,
    build_callgraph,
    checkpoint_reaching,
)
from repro.analysis.findings import Finding
from repro.analysis.flow import FunctionFlow, FunctionNode, root_name
from repro.analysis.rules import ModuleContext, Rule, _dotted


def _iter_functions(
    ctx: ModuleContext,
) -> Iterator[tuple[str, FunctionNode]]:
    """Yield ``(qualname, def node)`` matching the call-graph naming."""
    parts = ctx.rel[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    module = ".".join(parts)
    prefix = f"{module}." if module else ""

    def nested(owner: str, fn: FunctionNode) -> Iterator[tuple[str, FunctionNode]]:
        for node in ast.walk(fn):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn
            ):
                yield f"{owner}.{node.name}", node

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = prefix + stmt.name
            yield qualname, stmt
            yield from nested(qualname, stmt)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{stmt.name}.{item.name}"
                    yield qualname, item
                    yield from nested(qualname, item)


def _module_level_names(
    ctx: ModuleContext,
) -> tuple[frozenset[str], frozenset[str]]:
    """``(plain module-state names, ContextVar names)`` of one module."""
    plain: set[str] = set()
    context_vars: set[str] = set()
    for stmt in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            elems = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for elem in elems:
                if not isinstance(elem, ast.Name):
                    continue
                if (
                    isinstance(value, ast.Call)
                    and (
                        _dotted(value.func) or ""
                    ).split(".")[-1] == "ContextVar"
                ):
                    context_vars.add(elem.id)
                else:
                    plain.add(elem.id)
    return frozenset(plain), frozenset(context_vars)


class SemanticIndex:
    """Shared per-tree facts: call graph, reachability, lazy CFGs."""

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules = modules
        package = modules[0].root.name if modules else "repro"
        self.graph: CallGraph = build_callgraph(modules, package)
        #: qualname -> (module context, def node)
        self.functions: dict[str, tuple[ModuleContext, FunctionNode]] = {}
        for ctx in modules:
            for qualname, fn in _iter_functions(ctx):
                self.functions.setdefault(qualname, (ctx, fn))
        self._flows: dict[str, FunctionFlow] = {}
        self._module_names: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        self.checkpoint_reaching: frozenset[str] = checkpoint_reaching(
            self.graph
        )
        self.worker_reachable: frozenset[str] = self.graph.reachable(
            self.graph.entry_qualnames("workers")
        )
        self.algorithm_reachable: frozenset[str] = self.graph.reachable(
            self.graph.entry_qualnames("algorithms")
        )

    def flow(self, qualname: str) -> FunctionFlow:
        if qualname not in self._flows:
            self._flows[qualname] = FunctionFlow(self.functions[qualname][1])
        return self._flows[qualname]

    def module_names(
        self, ctx: ModuleContext
    ) -> tuple[frozenset[str], frozenset[str]]:
        if ctx.rel not in self._module_names:
            self._module_names[ctx.rel] = _module_level_names(ctx)
        return self._module_names[ctx.rel]


#: One-slot memo: the engine runs four semantic rules over the *same*
#: module list in one lint pass; building the call graph once is enough.
_CACHE: tuple[tuple[tuple[str, int], ...], SemanticIndex] | None = None


def semantic_index(modules: Sequence[ModuleContext]) -> SemanticIndex:
    """The (memoized) :class:`SemanticIndex` for one parsed tree."""
    global _CACHE
    key = tuple((m.rel, id(m.tree)) for m in modules)
    if _CACHE is None or _CACHE[0] != key:
        _CACHE = (key, SemanticIndex(modules))
    return _CACHE[1]


# --------------------------------------------------------------------- #
# REP010 — fork-shared module state
# --------------------------------------------------------------------- #


class ForkSharedStateWrite(Rule):
    """REP010: worker-reachable code writing module-level state.

    Seeded from the statically discovered ProcessPool worker entry
    points (``initializer=``, ``.submit(f, ...)``, ``target=``), every
    reachable function's CFG is checked for writes to names its module
    binds at top level: rebinding a declared-``global``, calling a
    mutator method (``.append``/``.update``/…) on a module-level
    object, or assigning into a subscript/attribute rooted at one.
    Names bound to ``ContextVar(...)`` are exempt — that is the
    sanctioned per-context channel, and REP013 polices its discipline.

    Fix by passing state explicitly through the worker's arguments and
    return value; suppress (with a reason) only for state that is
    *meant* to be per-process, such as a worker-local runner installed
    by the pool initializer.
    """

    rule_id = "REP010"
    summary = "module state written by ProcessPool-worker-reachable code"

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        index = semantic_index(modules)
        for qualname in sorted(index.worker_reachable):
            entry = index.functions.get(qualname)
            if entry is None:
                continue
            ctx, fn = entry
            plain, _context_vars = index.module_names(ctx)
            if not plain:
                continue
            for write in index.flow(qualname).module_state_writes(plain):
                yield Finding(
                    ctx.rel,
                    write.line,
                    0,
                    self.rule_id,
                    f"'{fn.name}' writes module-level '{write.name}' "
                    f"({write.kind}) and is reachable from a ProcessPool "
                    "worker entry; fork-shared module state silently "
                    "desynchronizes workers — pass state through the "
                    "task arguments or a ContextVar",
                )


# --------------------------------------------------------------------- #
# REP011 — checkpoint coverage of reachable loops
# --------------------------------------------------------------------- #


class UncheckpointedLoop(Rule):
    """REP011: an algorithm-reachable loop that can skip ``checkpoint()``.

    For every function reachable from a registered algorithm entry
    point in the algorithmic segments, every *outermost* loop must hit
    :func:`repro.runtime.checkpoint` on **every** cyclic path — a
    checkpoint behind an ``if`` is not coverage.  A call into any
    function from which a checkpoint is reachable also counts (the
    helper checkpoints on the algorithm's behalf), and loops whose
    trip count is provably constant (literal collections, constant
    ``range``) are allowlisted.

    Fix by checkpointing once per iteration at the loop's top;
    suppress (with a reason) when coverage is *amortized* — the only
    callers run the helper once per iteration of their own
    checkpointed loop, so the helper's loop is bounded by work the
    caller already metered.
    """

    rule_id = "REP011"
    summary = "algorithm-reachable loop can iterate without checkpoint()"
    segments = ("core", "matching", "extensions")

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        index = semantic_index(modules)
        covered = index.checkpoint_reaching
        callsites = index.graph.callsites

        def hits(node: ast.AST) -> bool:
            return (
                isinstance(node, ast.Call)
                and callsites.get(id(node)) in covered
            )

        for qualname in sorted(index.algorithm_reachable):
            entry = index.functions.get(qualname)
            if entry is None:
                continue
            ctx, fn = entry
            if ctx.segment not in self.segments:
                continue
            flow = index.flow(qualname)
            for loop in flow.loops:
                if not loop.outermost or flow.loop_bounded(loop):
                    continue
                if flow.loop_can_skip(loop, hits):
                    yield Finding(
                        ctx.rel,
                        loop.line,
                        loop.node.col_offset,
                        self.rule_id,
                        f"'{fn.name}' {loop.kind} loop is reachable from "
                        "registered algorithm entry points but can iterate "
                        "without hitting runtime.checkpoint(); deadline/"
                        "budget cancellation cannot interrupt it — "
                        "checkpoint once per iteration",
                    )


# --------------------------------------------------------------------- #
# REP012 — file writes bypassing the journal
# --------------------------------------------------------------------- #

#: ``open()`` mode characters that make the call a write.
_WRITE_MODE_CHARS = frozenset("wax+")


def _write_mode(call: ast.Call) -> str | None:
    """The constant write mode of an ``open()`` call, if any."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and set(mode.value) & _WRITE_MODE_CHARS
    ):
        return mode.value
    return None


class UnjournaledWrite(Rule):
    """REP012: raw file writes in crash-sensitive segments.

    ``core``, ``experiments`` and ``perf`` run under checkpoint/resume:
    anything they persist may be re-read by a resumed run, so a torn
    half-file from a crashed ``open(path, "w")`` or ``.write_text()``
    is poison.  :class:`repro.runtime.journal.Journal` (append-only,
    line-framed) and :func:`~repro.runtime.journal.atomic_write_text`
    (write-to-temp + rename) are the two sanctioned paths.  Reads are
    never flagged, and the rule is literal-mode only — an ``open()``
    whose mode is not a string constant is not judged.
    """

    rule_id = "REP012"
    summary = "file write bypassing Journal/atomic_write_text"
    segments = ("core", "experiments", "perf")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment not in self.segments:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _write_mode(node)
                if mode is not None:
                    yield Finding(
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"open(..., {mode!r}) writes directly in a "
                        "checkpoint/resume segment; a crash mid-write "
                        "leaves a torn file — use runtime.journal.Journal "
                        "or atomic_write_text",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield Finding(
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"'.{func.attr}()' writes directly in a "
                    "checkpoint/resume segment; a crash mid-write leaves "
                    "a torn file — use runtime.journal.Journal or "
                    "atomic_write_text",
                )


# --------------------------------------------------------------------- #
# REP013 — ContextVar reset discipline
# --------------------------------------------------------------------- #


class ContextVarLeak(Rule):
    """REP013: a ``ContextVar`` set without the reset-token discipline.

    The approved shape, used by every scope helper in
    ``repro.runtime``/``repro.obs``::

        token = VAR.set(value)
        try:
            ...
        finally:
            VAR.reset(token)

    Two deviations are flagged, for every module-level
    ``NAME = ContextVar(...)``:

    * ``NAME.set(...)`` whose token is discarded (bare expression
      statement or used as a nested call argument) — the context can
      never be restored;
    * the token captured, but no ``NAME.reset(...)`` inside any
      ``finally`` block of the same function — an exception between
      set and reset leaks the value into the caller's context.

    Suppress (with a reason) only for *installations* that are meant
    to live for the rest of the process/worker lifetime.
    """

    rule_id = "REP013"
    summary = "ContextVar set without reset token on an exceptional path"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        _plain, context_vars = _module_level_names(ctx)
        if not context_vars:
            return
        for _qualname, fn in _iter_functions(ctx):
            yield from self._check_function(ctx, fn, context_vars)

    def _check_function(
        self,
        ctx: ModuleContext,
        fn: FunctionNode,
        context_vars: frozenset[str],
    ) -> Iterator[Finding]:
        def own_stmts(node: ast.AST) -> Iterator[ast.AST]:
            stack: list[ast.AST] = list(ast.iter_child_nodes(node))
            while stack:
                current = stack.pop()
                yield current
                if isinstance(
                    current,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                     ast.Lambda),
                ):
                    continue
                stack.extend(ast.iter_child_nodes(current))

        def set_call_var(node: ast.AST) -> str | None:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "set"
            ):
                name = root_name(node.func.value)
                if name in context_vars:
                    return name
            return None

        reset_in_finally: set[str] = set()
        for node in own_stmts(fn):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "reset"
                        ):
                            name = root_name(sub.func.value)
                            if name in context_vars:
                                reset_in_finally.add(name)

        for node in own_stmts(fn):
            if isinstance(node, ast.Expr):
                var = set_call_var(node.value)
                if var is not None:
                    yield Finding(
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"'{var}.set(...)' discards its reset token in "
                        f"'{fn.name}'; capture it and reset in a finally "
                        "block, or the context value outlives its scope",
                    )

        for node in own_stmts(fn):
            value: ast.expr | None = None
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.NamedExpr)):
                value = node.value
            if value is None:
                continue
            var = set_call_var(value)
            if var is not None and var not in reset_in_finally:
                yield Finding(
                    ctx.rel,
                    value.lineno,
                    value.col_offset,
                    self.rule_id,
                    f"'{var}.set(...)' token is captured in '{fn.name}' "
                    f"but '{var}.reset(...)' never runs in a finally "
                    "block; an exception between set and reset leaks the "
                    "context value",
                )


#: The semantic rules, in rule-id order.
SEMANTIC_RULES: tuple[Rule, ...] = (
    ForkSharedStateWrite(),
    UncheckpointedLoop(),
    UnjournaledWrite(),
    ContextVarLeak(),
)

#: rule id -> one-line summary, merged into the engine's catalogue.
SEMANTIC_RULE_DOCS: dict[str, str] = {
    rule.rule_id: rule.summary for rule in SEMANTIC_RULES
}
