"""Project-wide call graph over the scanned package, pure stdlib.

Built from the same parsed :class:`~repro.analysis.rules.ModuleContext`
list the lint engine already holds, the graph answers the reachability
questions the semantic rules (REP010/REP011) and the ROADMAP's planner
and serving PRs need:

* *which functions can a ProcessPool worker execute?* (fork-safety)
* *does every registered algorithm reach ``runtime.checkpoint``?*
  (cancellation coverage)

Construction is deliberately conservative-but-useful:

* **qualified names** are dotted in-package paths —
  ``core.agglomerative.agglomerative_clustering``,
  ``experiments.runner.ExperimentRunner.run_key``; calls into modules
  outside the scan root become *external* nodes
  (``numpy.argmin``, ``repro.runtime.checkpoint`` when scanning a
  fixture tree);
* **import resolution** follows ``import``/``from``/relative imports
  and *re-export chains* through package ``__init__`` files, so
  ``from repro.runtime import checkpoint`` resolves to
  ``runtime.deadline.checkpoint``, the defining module;
* **attribute calls** resolve through module aliases
  (``agg.agglomerative_clustering(...)``), ``self.``/``cls.`` method
  calls resolve within the enclosing class (following project-local
  base classes), and nested functions resolve lexically;
* unresolvable receivers (``obj.method()`` on an unknown object) are
  dropped rather than guessed — the graph under-approximates dynamic
  dispatch, which the rule docs state explicitly.

Entry points are discovered statically, matching the runtime wiring:

* ``algorithms`` — the functions referenced by the ``REGISTRY`` tuple
  in ``verify/differential.py`` (the 11 registered algorithms);
* ``workers`` — functions passed as ``initializer=`` to a process
  pool, as the first argument of ``.submit(...)``, or as ``target=``
  to a ``Process``;
* ``cell_drivers`` — the public methods of ``ExperimentRunner`` in
  ``experiments/runner.py``.

:meth:`CallGraph.to_json_text` renders a fully sorted, schema-versioned
document — byte-identical across runs by construction — which
``repro-anon lint --callgraph`` writes for downstream consumers.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.analysis.layers import DEFAULT_LAYERS, resolve_layer
from repro.analysis.rules import ModuleContext

#: JSON schema version of the ``--callgraph`` artifact.
CALLGRAPH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class GraphNode:
    """One function or method defined inside the scanned tree."""

    qualname: str  #: dotted in-package name, e.g. ``core.kk.kk_anonymize``
    path: str  #: POSIX path relative to the scan root
    line: int
    kind: str  #: ``"function"`` or ``"method"``


@dataclass
class _Scope:
    """Lexical information for one module during construction."""

    module: str  #: dotted module path ("" for the scan-root __init__)
    ctx: ModuleContext
    aliases: dict[str, str] = field(default_factory=dict)  #: local -> dotted
    top_defs: dict[str, str] = field(default_factory=dict)  #: name -> qualname
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    bases: dict[str, list[str]] = field(default_factory=dict)


def _module_dotted(ctx: ModuleContext) -> str:
    parts = ctx.rel[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _dotted_expr(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """Nodes, edges, entry points and reachability over one tree."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.nodes: dict[str, GraphNode] = {}
        self.edges: dict[str, set[str]] = {}
        self.external: set[str] = set()
        #: ``id(ast.Call node)`` -> resolved callee qualname, for every
        #: call site resolved during construction.  Keyed by identity of
        #: the *same* tree objects the graph was built from, so semantic
        #: rules holding those trees can ask "what does this call hit?".
        self.callsites: dict[int, str] = {}
        self.entrypoints: dict[str, dict[str, str]] = {
            "algorithms": {},
            "workers": {},
            "cell_drivers": {},
        }

    # -- queries -------------------------------------------------------- #

    def callees(self, qualname: str) -> frozenset[str]:
        """Direct callees of one node (empty for leaves/externals)."""
        return frozenset(self.edges.get(qualname, ()))

    def reachable(self, seeds: Iterable[str]) -> frozenset[str]:
        """Every node (incl. externals) reachable from ``seeds``."""
        seen: set[str] = set()
        frontier = [s for s in seeds if s in self.nodes or s in self.external]
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    def reaches(self, source: str, targets: Iterable[str]) -> bool:
        """Does any path lead from ``source`` into ``targets``?"""
        wanted = set(targets)
        return bool(wanted & self.reachable([source]))

    def entry_qualnames(self, category: str | None = None) -> list[str]:
        """Sorted entry-point qualnames, optionally for one category."""
        categories = (
            [category] if category is not None else sorted(self.entrypoints)
        )
        out: set[str] = set()
        for cat in categories:
            out.update(self.entrypoints.get(cat, {}).values())
        return sorted(out)

    # -- serialization --------------------------------------------------- #

    def to_json(
        self, layers: Mapping[str, int] = DEFAULT_LAYERS
    ) -> dict[str, object]:
        """Schema-versioned, fully sorted document (deterministic)."""
        rendered_nodes = []
        for qualname in sorted(self.nodes):
            node = self.nodes[qualname]
            layer = resolve_layer(qualname, layers)
            rendered_nodes.append(
                {
                    "qualname": node.qualname,
                    "path": node.path,
                    "line": node.line,
                    "kind": node.kind,
                    "layer": None if layer is None else layer[1],
                }
            )
        return {
            "version": CALLGRAPH_SCHEMA_VERSION,
            "package": self.package,
            "entrypoints": {
                category: dict(sorted(members.items()))
                for category, members in sorted(self.entrypoints.items())
            },
            "nodes": rendered_nodes,
            "edges": sorted(
                [caller, callee]
                for caller, callees in self.edges.items()
                for callee in callees
            ),
            "external": sorted(self.external),
        }

    def to_json_text(self, layers: Mapping[str, int] = DEFAULT_LAYERS) -> str:
        """The exact bytes ``--callgraph`` writes (sorted keys, LF end)."""
        return json.dumps(self.to_json(layers), indent=2, sort_keys=True) + "\n"


class _Builder:
    def __init__(self, modules: Sequence[ModuleContext], package: str) -> None:
        self.modules = modules
        self.package = package
        self.graph = CallGraph(package)
        self.scopes: dict[str, _Scope] = {}
        #: module dotted -> {exported name -> dotted object path}
        self.exports: dict[str, dict[str, str]] = {}
        self.module_names: set[str] = set()
        self._var_type_cache: dict[str, dict[str, tuple[_Scope, str]]] = {}

    # -- pass 1: definitions and imports -------------------------------- #

    def collect(self) -> None:
        for ctx in self.modules:
            module = _module_dotted(ctx)
            scope = _Scope(module=module, ctx=ctx)
            self.scopes[module] = scope
            self.module_names.add(module)
            prefix = f"{module}." if module else ""
            for stmt in ctx.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = prefix + stmt.name
                    scope.top_defs[stmt.name] = qualname
                    self._add_node(qualname, ctx, stmt.lineno, "function")
                elif isinstance(stmt, ast.ClassDef):
                    methods: dict[str, str] = {}
                    for item in stmt.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            qualname = f"{prefix}{stmt.name}.{item.name}"
                            methods[item.name] = qualname
                            self._add_node(
                                qualname, ctx, item.lineno, "method"
                            )
                    scope.classes[stmt.name] = methods
                    scope.bases[stmt.name] = [
                        base
                        for base in (
                            _dotted_expr(b)
                            for b in stmt.bases
                        )
                        if base is not None
                    ]
            self._collect_imports(scope)
            self.exports[module] = dict(scope.aliases)
            self.exports[module].update(scope.top_defs)
            for cls in scope.classes:
                self.exports[module][cls] = (
                    f"{module}.{cls}" if module else cls
                )

    def _add_node(
        self, qualname: str, ctx: ModuleContext, line: int, kind: str
    ) -> None:
        self.graph.nodes.setdefault(
            qualname, GraphNode(qualname, ctx.rel, line, kind)
        )
        self.graph.edges.setdefault(qualname, set())

    def _collect_imports(self, scope: _Scope) -> None:
        """Local name -> dotted *in-package* object path (or external)."""
        package_prefix = self.package + "."
        for node in ast.walk(scope.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name
                    local = alias.asname or target.split(".")[0]
                    if target.startswith(package_prefix):
                        scope.aliases[local] = target[len(package_prefix):]
                    elif target == self.package:
                        scope.aliases[local] = ""
                    else:
                        scope.aliases[local] = f"!{target}"
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(scope, node)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    if base.startswith("!"):
                        scope.aliases[local] = f"{base}.{alias.name}"
                    else:
                        scope.aliases[local] = (
                            f"{base}.{alias.name}" if base else alias.name
                        )

    def _import_base(
        self, scope: _Scope, node: ast.ImportFrom
    ) -> str | None:
        """The dotted in-package base a ``from X import`` refers to.

        External modules come back prefixed with ``!`` so aliases keep
        their absolute dotted path without colliding with in-package
        names.  ``__future__`` imports are skipped.
        """
        if node.level == 0:
            module = node.module or ""
            if module == "__future__":
                return None
            if module == self.package:
                return ""
            if module.startswith(self.package + "."):
                return module[len(self.package) + 1:]
            return f"!{module}"
        parts = scope.ctx.rel[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        anchor = parts[: len(parts) - node.level] if parts else []
        if node.level <= len(parts):
            target = anchor + (node.module.split(".") if node.module else [])
            return ".".join(target)
        return None

    # -- resolution ------------------------------------------------------ #

    def resolve_object(self, dotted: str, depth: int = 0) -> str | None:
        """Dotted in-package object path -> defining node qualname.

        Follows re-export chains through ``__init__`` files:
        ``runtime.checkpoint`` -> (runtime/__init__ from-imports it
        from ``runtime.deadline``) -> ``runtime.deadline.checkpoint``.
        Returns None for externals and unresolvables.
        """
        if depth > 8:  # re-export cycle guard
            return None
        if dotted.startswith("!"):
            return None
        if dotted in self.graph.nodes:
            return dotted
        head, _, tail = dotted.rpartition(".")
        if not tail:
            return None
        # `head` may itself be an alias chain target; resolve the module
        # owning `tail` first.
        if head in self.exports and tail in self.exports[head]:
            target = self.exports[head][tail]
            if target == dotted:
                return dotted if dotted in self.graph.nodes else None
            if target.startswith("!"):
                return None
            return self.resolve_object(target, depth + 1)
        if head and head not in self.module_names:
            resolved_head = self.resolve_object(head, depth + 1)
            if resolved_head is not None and resolved_head != head:
                return self.resolve_object(
                    f"{resolved_head}.{tail}", depth + 1
                )
        return None

    def resolve_target(self, dotted: str) -> str | None:
        """In-package qualname, or an *external* dotted name.

        External results are registered on the graph so reachability
        can treat them as leaf nodes (``repro.runtime.checkpoint`` when
        the scan root is a fixture tree, ``numpy.argmin`` anywhere).
        """
        if dotted.startswith("!"):
            external = dotted[1:]
            self.graph.external.add(external)
            return external
        return self.resolve_object(dotted)

    def resolve_class(
        self, dotted: str, depth: int = 0
    ) -> tuple[_Scope, str] | None:
        """Dotted in-package path -> the scope and name of a class.

        Follows the same ``__init__`` re-export chains as
        :meth:`resolve_object` (``experiments.ExperimentRunner`` ->
        ``experiments.runner.ExperimentRunner``).
        """
        if depth > 8 or dotted.startswith("!"):
            return None
        owner, _, cls = dotted.rpartition(".")
        scope = self.scopes.get(owner)
        if scope is not None and cls in scope.classes:
            return scope, cls
        if owner in self.exports and cls in self.exports[owner]:
            target = self.exports[owner][cls]
            if target != dotted and not target.startswith("!"):
                return self.resolve_class(target, depth + 1)
        return None

    def _class_from_expr(
        self, scope: _Scope, dotted: str
    ) -> tuple[_Scope, str] | None:
        """The project class a dotted expression names, if any."""
        head, _, rest = dotted.partition(".")
        if not rest:
            if head in scope.classes:
                return scope, head
            if head in scope.aliases:
                return self.resolve_class(scope.aliases[head])
            return None
        if head in scope.aliases:
            base = scope.aliases[head]
            if base.startswith("!"):
                return None
            return self.resolve_class(f"{base}.{rest}" if base else rest)
        return None

    def _annotation_class(
        self, scope: _Scope, annotation: ast.expr | None
    ) -> tuple[_Scope, str] | None:
        """The single project class an annotation mentions, if exactly one.

        ``ExperimentRunner | None`` types a receiver; an ambiguous
        ``Runner | Journal`` does not — guessing wrong would fabricate
        call edges.
        """
        if annotation is None:
            return None
        found: list[tuple[_Scope, str]] = []
        for node in ast.walk(annotation):
            dotted: str | None = None
            if isinstance(node, ast.Name):
                dotted = node.id
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_expr(node)
            if dotted is None:
                continue
            resolved = self._class_from_expr(scope, dotted)
            if resolved is not None and resolved not in found:
                found.append(resolved)
        return found[0] if len(found) == 1 else None

    def _module_var_types(self, scope: _Scope) -> dict[str, tuple[_Scope, str]]:
        """Module-level names with a class-typed annotation or value."""
        cached = self._var_type_cache.get(scope.module)
        if cached is not None:
            return cached
        types: dict[str, tuple[_Scope, str]] = {}
        for stmt in scope.ctx.tree.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                resolved = self._annotation_class(scope, stmt.annotation)
                if resolved is not None:
                    types[stmt.target.id] = resolved
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                dotted = _dotted_expr(stmt.value.func)
                if dotted is None:
                    continue
                resolved = self._class_from_expr(scope, dotted)
                if resolved is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = resolved
        self._var_type_cache[scope.module] = types
        return types

    # -- pass 2: call edges ---------------------------------------------- #

    def link(self) -> None:
        for scope in self.scopes.values():
            prefix = f"{scope.module}." if scope.module else ""
            for stmt in scope.ctx.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._link_function(
                        scope, prefix + stmt.name, stmt, class_name=None
                    )
                elif isinstance(stmt, ast.ClassDef):
                    for item in stmt.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._link_function(
                                scope,
                                f"{prefix}{stmt.name}.{item.name}",
                                item,
                                class_name=stmt.name,
                            )

    def _link_function(
        self,
        scope: _Scope,
        qualname: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        locals_: dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn:
                    nested = f"{qualname}.{node.name}"
                    locals_[node.name] = nested
                    self._add_node(nested, scope.ctx, node.lineno, "function")
        receivers = self._receiver_types(scope, fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_call(
                scope, node.func, class_name, locals_, receivers
            )
            if callee is None:
                continue
            self.graph.callsites[id(node)] = callee
            if callee != qualname:
                self.graph.edges.setdefault(qualname, set()).add(callee)

    def _receiver_types(
        self, scope: _Scope, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, tuple[_Scope, str]]:
        """Name -> project class for the receivers visible inside ``fn``.

        Three sources, later ones shadowing earlier: module-level
        class-typed variables, class-annotated parameters, and locals
        assigned from a project-class constructor (``engine =
        _Engine(...)``) or carrying a class annotation.
        """
        receivers = dict(self._module_var_types(scope))
        args = fn.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            resolved = self._annotation_class(scope, arg.annotation)
            if resolved is not None:
                receivers[arg.arg] = resolved
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                dotted = _dotted_expr(node.value.func)
                if dotted is None:
                    continue
                resolved = self._class_from_expr(scope, dotted)
                if resolved is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        receivers[target.id] = resolved
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                resolved = self._annotation_class(scope, node.annotation)
                if resolved is not None:
                    receivers[node.target.id] = resolved
        return receivers

    def _method_in_class(
        self, scope: _Scope, class_name: str, method: str, depth: int = 0
    ) -> str | None:
        """Resolve a method through the class and its project-local bases."""
        if depth > 8:
            return None
        methods = scope.classes.get(class_name)
        if methods and method in methods:
            return methods[method]
        for base in scope.bases.get(class_name, ()):
            head = base.split(".")[0]
            if head in scope.classes:
                found = self._method_in_class(scope, head, method, depth + 1)
                if found is not None:
                    return found
            elif head in scope.aliases:
                target = scope.aliases[head]
                if target.startswith("!"):
                    continue
                owner, _, cls = target.rpartition(".")
                base_scope = self.scopes.get(owner)
                if base_scope is not None:
                    found = self._method_in_class(
                        base_scope, cls, method, depth + 1
                    )
                    if found is not None:
                        return found
        return None

    def _resolve_call(
        self,
        scope: _Scope,
        func: ast.expr,
        class_name: str | None,
        locals_: Mapping[str, str],
        receivers: Mapping[str, tuple[_Scope, str]] = {},
    ) -> str | None:
        if isinstance(func, ast.Name):
            name = func.id
            if name in locals_:
                return locals_[name]
            if name in scope.top_defs:
                return scope.top_defs[name]
            if name in scope.classes:
                # Constructing a project class executes its __init__.
                prefix = f"{scope.module}." if scope.module else ""
                init = self._method_in_class(scope, name, "__init__")
                return init or f"{prefix}{name}"
            if name in scope.aliases:
                return self.resolve_target(scope.aliases[name])
            return None
        if isinstance(func, ast.Attribute):
            dotted = _dotted_expr(func)
            if dotted is None:
                # `_Engine(...).run()`: a method on a freshly constructed
                # project-class instance.
                if isinstance(func.value, ast.Call):
                    inner = _dotted_expr(func.value.func)
                    if inner is not None:
                        resolved = self._class_from_expr(scope, inner)
                        if resolved is not None:
                            return self._method_in_class(
                                resolved[0], resolved[1], func.attr
                            )
                return None
            head, _, rest = dotted.partition(".")
            if head in ("self", "cls") and class_name is not None:
                method = dotted.split(".")[-1]
                if "." not in rest:
                    return self._method_in_class(scope, class_name, method)
                return None
            if head in receivers and rest and "." not in rest:
                # `engine.run()` on a class-typed variable or parameter.
                recv_scope, recv_class = receivers[head]
                return self._method_in_class(recv_scope, recv_class, rest)
            if head in scope.aliases:
                base = scope.aliases[head]
                if base.startswith("!"):
                    self.graph.external.add(f"{base[1:]}.{rest}")
                    return f"{base[1:]}.{rest}"
                combined = f"{base}.{rest}" if base else rest
                return self.resolve_object(combined)
            if head in scope.classes:
                # ClassName.method(...) style call.
                parts = dotted.split(".")
                if len(parts) == 2:
                    return self._method_in_class(scope, head, parts[1])
            return None
        return None

    # -- pass 3: entry points -------------------------------------------- #

    def discover_entrypoints(self) -> None:
        for scope in self.scopes.values():
            if scope.ctx.rel.endswith("verify/differential.py"):
                self._discover_registry(scope)
            if scope.ctx.rel.endswith("experiments/runner.py"):
                self._discover_cell_drivers(scope)
            self._discover_workers(scope)

    def _discover_registry(self, scope: _Scope) -> None:
        for stmt in scope.ctx.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "REGISTRY"
                for t in targets
            ):
                continue
            if not isinstance(value, (ast.Tuple, ast.List)):
                continue
            for element in value.elts:
                self._register_algorithm(scope, element)

    def _register_algorithm(self, scope: _Scope, element: ast.expr) -> None:
        label: str | None = None
        candidates: list[ast.expr] = []
        if isinstance(element, ast.Call):
            for arg in element.args:
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    if label is None:
                        label = arg.value
                else:
                    candidates.append(arg)
            candidates.extend(kw.value for kw in element.keywords)
        elif isinstance(element, (ast.Name, ast.Attribute)):
            candidates.append(element)
        for candidate in candidates:
            resolved = self._resolve_call(scope, candidate, None, {})
            if resolved is not None and resolved in self.graph.nodes:
                self.graph.entrypoints["algorithms"][
                    label or resolved
                ] = resolved

    def _discover_cell_drivers(self, scope: _Scope) -> None:
        methods = scope.classes.get("ExperimentRunner", {})
        for name, qualname in methods.items():
            if not name.startswith("_"):
                self.graph.entrypoints["cell_drivers"][name] = qualname

    def _discover_workers(self, scope: _Scope) -> None:
        for node in ast.walk(scope.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates: list[ast.expr] = []
            for keyword in node.keywords:
                if keyword.arg in ("initializer", "target"):
                    candidates.append(keyword.value)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                candidates.append(node.args[0])
            for candidate in candidates:
                if not isinstance(candidate, (ast.Name, ast.Attribute)):
                    continue
                resolved = self._resolve_call(scope, candidate, None, {})
                if resolved is not None and resolved in self.graph.nodes:
                    name = resolved.rpartition(".")[2] or resolved
                    self.graph.entrypoints["workers"][name] = resolved


def build_callgraph(
    modules: Sequence[ModuleContext], package: str
) -> CallGraph:
    """Construct the call graph for one parsed tree.

    ``package`` is the importable name the scan root corresponds to
    (``repro`` when scanning ``src/repro``) so absolute intra-package
    imports are recognized.
    """
    builder = _Builder(modules, package)
    builder.collect()
    builder.link()
    builder.discover_entrypoints()
    return builder.graph


#: Qualified names that implement the cooperative-cancellation
#: checkpoint, in-package and external spellings both (the latter
#: appear when the scanned tree imports ``repro.runtime`` from outside,
#: e.g. the lint fixture package).
CHECKPOINT_QUALNAMES: frozenset[str] = frozenset(
    {
        "runtime.checkpoint",
        "runtime.deadline.checkpoint",
        "repro.runtime.checkpoint",
        "repro.runtime.deadline.checkpoint",
    }
)


def checkpoint_nodes(graph: CallGraph) -> frozenset[str]:
    """The graph's nodes/externals implementing ``checkpoint``."""
    present = set()
    for name in CHECKPOINT_QUALNAMES:
        if name in graph.nodes or name in graph.external:
            present.add(name)
    return frozenset(present)


def checkpoint_reaching(graph: CallGraph) -> frozenset[str]:
    """Every node from which a ``checkpoint`` implementation is reachable."""
    targets = checkpoint_nodes(graph)
    if not targets:
        return frozenset()
    # Reverse-BFS from the checkpoint nodes.
    callers: dict[str, set[str]] = {}
    for caller, callees in graph.edges.items():
        for callee in callees:
            callers.setdefault(callee, set()).add(caller)
    seen: set[str] = set(targets)
    frontier = list(targets)
    while frontier:
        current = frontier.pop()
        for caller in callers.get(current, ()):
            if caller not in seen:
                seen.add(caller)
                frontier.append(caller)
    return frozenset(seen)
