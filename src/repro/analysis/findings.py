"""The :class:`Finding` record shared by every rule and the engine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis diagnostic.

    Attributes
    ----------
    path:
        POSIX path of the offending file, relative to the scan root —
        stable across machines, which is what lets the committed
        baseline match findings without absolute paths.
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule identifier (``REP001`` … ``REP006``, ``LAY001``,
        ``LAY002``, or ``PARSE`` for unparseable files).
    message:
        Human-readable description.  Together with ``rule`` and
        ``path`` it forms the baseline fingerprint, so messages must
        not embed line numbers or other churn-prone detail.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-insensitive identity used by the baseline."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """One-line ``path:line:col: RULE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        """JSON-serializable dict (the ``findings`` array element)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
