"""Import-layering checker: the architecture DAG, machine-enforced.

The codebase layers strictly::

    errors                                           (0)
    obs                                              (1)
    report · structures · tabular · analysis · runtime   (2)
    matching · measures · obs.summarize              (3)
    core                                             (4)
    datasets · extensions · privacy · utility · verify · runtime.fallback  (5)
    experiments · serve                              (6)
    perf                                             (7)
    cli                                              (8)
    __main__                                         (9)

A module may import only from *strictly lower* layers (or from its own
subpackage).  Same-layer cross-package imports are back-edges too:
allowing ``matching -> measures`` today is how the
``matching <-> measures`` cycle appears tomorrow, and cycles are
exactly what blocks the ROADMAP's sharding/multi-backend refactors
(a backend must be able to depend on ``core`` without dragging the CLI
along).  The package facade (``__init__`` at the scan root) is exempt:
re-exporting from every layer is its job.

Layer keys may be *dotted*: a map entry ``"runtime.fallback": 4``
carves one submodule out of its parent package and gives it its own
layer — the checker resolves every module and import target to its
longest dotted prefix in the map.  That is how ``repro.runtime`` can
sit *below* the algorithms (so hot loops may call
:func:`repro.runtime.checkpoint`) while ``repro.runtime.fallback`` —
which orchestrates those same algorithms into degradation chains —
sits *above* them.  ``obs`` plays the same trick twice: the collection
machinery (tracer, metrics) sits *below everything but errors* so the
runtime checkpoint and any hot loop may feed it, while
``obs.summarize`` — which renders through ``repro.report`` — is carved
out above the report layer.

Violations surface as ``LAY001`` (back-edge) and ``LAY002`` (module or
import target missing from the layer map — the map must be extended
deliberately when a subpackage is added).
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext

#: Subpackage/top-level-module name -> layer index.  Lower imports into
#: higher only.
DEFAULT_LAYERS: Mapping[str, int] = {
    "errors": 0,
    "obs": 1,  # tracing/metrics collection, fed by every layer above
    "report": 2,
    "structures": 2,
    "tabular": 2,
    "analysis": 2,
    "runtime": 2,  # execution primitives, importable from the hot loops
    "matching": 3,
    "measures": 3,
    "obs.summarize": 3,  # renders via repro.report, so sits above it
    "core": 4,
    "datasets": 5,
    "extensions": 5,
    "privacy": 5,
    "utility": 5,
    "verify": 5,
    "runtime.fallback": 5,  # degradation chains orchestrate core algorithms
    "experiments": 6,
    "serve": 6,  # the server orchestrates fallback chains over datasets
    "perf": 7,  # benchmarks/parallel execution drive the experiment runner
    "cli": 8,
    "__main__": 9,  # the entry shim sits above the CLI it wraps
}

#: Scan-root modules outside the layer discipline.
_EXEMPT_SEGMENTS = frozenset({"__init__"})

#: Pseudo-segment for imports of the package facade itself
#: (``from repro import x``): it re-exports the highest layers, so it
#: sits above everything and importing it internally is a back-edge.
_FACADE = "__init__"


def resolve_layer(
    dotted: str, layers: Mapping[str, int] = DEFAULT_LAYERS
) -> tuple[str, int] | None:
    """Longest dotted prefix of ``dotted`` present in the layer map.

    The same resolution :class:`LayerChecker` applies to imports, as a
    standalone helper so the call-graph exporter can annotate nodes
    (``runtime.fallback.FallbackChain.run`` -> ``("runtime.fallback", 5)``).
    Returns ``None`` when no prefix is mapped.
    """
    parts = dotted.split(".")
    while parts:
        key = ".".join(parts)
        if key in layers:
            return key, layers[key]
        parts.pop()
    return None


class LayerChecker:
    """Check every intra-package import in a parsed tree against the DAG.

    Parameters
    ----------
    package:
        The importable package name the scan root corresponds to
        (``repro`` when scanning ``src/repro``).  Needed to recognize
        absolute intra-package imports.
    layers:
        Segment -> layer mapping; defaults to :data:`DEFAULT_LAYERS`.
    """

    def __init__(
        self, package: str, layers: Mapping[str, int] = DEFAULT_LAYERS
    ) -> None:
        self.package = package
        self.layers = dict(layers)
        self._facade_layer = max(self.layers.values(), default=0) + 1

    def check(self, modules: Sequence[ModuleContext]) -> Iterator[Finding]:
        """Yield LAY001/LAY002 findings over all modules."""
        for ctx in modules:
            segment = ctx.segment
            if segment in _EXEMPT_SEGMENTS:
                continue
            resolved = self._resolve(self._module_dotted(ctx))
            if resolved is None:
                yield Finding(
                    ctx.rel, 1, 0, "LAY002",
                    f"module segment '{segment}' is not in the layer map; "
                    "assign it a layer in repro.analysis.layers",
                )
                continue
            yield from self._check_module(ctx, *resolved)

    # ----------------------------------------------------------------- #

    @staticmethod
    def _module_dotted(ctx: ModuleContext) -> str:
        """Dotted in-package path of a module (``runtime.fallback``)."""
        parts = ctx.rel[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _resolve(self, dotted: str) -> tuple[str, int] | None:
        """Longest dotted prefix of ``dotted`` present in the layer map."""
        return resolve_layer(dotted, self.layers)

    def _check_module(
        self, ctx: ModuleContext, source_key: str, source_layer: int
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._absolute_target(alias.name)
                    yield from self._judge(
                        ctx, node.lineno, source_key, source_layer, target
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    target = self._absolute_target(node.module or "")
                else:
                    target = self._relative_target(ctx, node)
                yield from self._judge(
                    ctx, node.lineno, source_key, source_layer, target
                )
                # `from repro.runtime import fallback` names a carved-out
                # submodule; judge the deeper dotted key too.
                if target is not None and target != _FACADE:
                    for alias in node.names:
                        deeper = f"{target}.{alias.name}"
                        if deeper in self.layers:
                            yield from self._judge(
                                ctx, node.lineno,
                                source_key, source_layer, deeper,
                            )

    def _absolute_target(self, module: str) -> str | None:
        """In-package dotted path of an import, or None if external."""
        if module == self.package:
            return _FACADE
        prefix = self.package + "."
        if module.startswith(prefix):
            return module[len(prefix):]
        return None

    def _relative_target(
        self, ctx: ModuleContext, node: ast.ImportFrom
    ) -> str | None:
        """Dotted path a relative import resolves to, or None if unknown."""
        mod_parts = ctx.rel[: -len(".py")].split("/")
        if mod_parts[-1] == "__init__":
            mod_parts = mod_parts[:-1]
        package_parts = mod_parts[:-1] if mod_parts else []
        anchor = package_parts[: len(package_parts) - (node.level - 1)]
        target_parts = anchor + (node.module.split(".") if node.module else [])
        if target_parts:
            return ".".join(target_parts)
        # `from . import x` inside a subpackage: same segment.
        return ctx.segment if package_parts else None

    def _judge(
        self,
        ctx: ModuleContext,
        line: int,
        source_key: str,
        source_layer: int,
        target: str | None,
    ) -> Iterator[Finding]:
        if target is None:
            return
        if target == _FACADE:
            target_key = _FACADE
            target_layer = self._facade_layer
            target_label = f"the {self.package} package facade"
        else:
            resolved = self._resolve(target)
            if resolved is None:
                yield Finding(
                    ctx.rel, line, 0, "LAY002",
                    f"import of '{target.split('.')[0]}', which is not in "
                    "the layer map; assign it a layer in "
                    "repro.analysis.layers",
                )
                return
            target_key, target_layer = resolved
            target_label = f"'{target_key}' (layer {target_layer})"
        if target_key == source_key:
            return  # same layer unit: intra-subpackage imports are free
        if target_layer >= source_layer:
            yield Finding(
                ctx.rel, line, 0, "LAY001",
                f"layer back-edge: '{source_key}' (layer {source_layer}) "
                f"imports {target_label}; modules may import strictly "
                "lower layers only",
            )


#: Documentation strings for the layering diagnostics.
LAYER_RULE_DOCS: Mapping[str, str] = {
    "LAY001": "import-layering back-edge",
    "LAY002": "module missing from the layer map",
}
