"""Per-function control-flow graphs with def/use dataflow facts.

The token-level rules (REP001–REP009) ask *syntactic* questions — "is
this call spelled ``time.time``?".  The semantic rules (REP010–REP013)
ask *path* questions — "can this loop iterate without passing a
checkpoint?", "does this function write module state?" — and those need
a control-flow graph, not a token stream.

This module builds, from the stdlib ``ast`` alone, a conservative CFG
per function:

* :class:`BasicBlock` — a maximal straight-line statement run with
  successor edges;
* :class:`LoopInfo` — one ``for``/``while`` statement, its header
  block, the set of body blocks, whether it is *outermost* in its
  function, and whether its iterable is *provably bounded* (a literal
  collection or a constant ``range``);
* :class:`FunctionFlow` — the CFG plus dataflow facts: per-block def
  and use sets, declared-``global`` writes, and mutations of names the
  function never binds locally (the module-state writes REP010 polices).

The headline query is :meth:`FunctionFlow.loop_can_skip`: given a loop
and a statement predicate (e.g. "calls ``checkpoint``"), it answers
whether some body path can cycle back to the loop header without any
predicate-satisfying block — i.e. whether the loop *can iterate without
hitting* the predicate.  A checkpoint behind an ``if`` therefore does
not count as coverage, which is exactly the cancellation guarantee
:mod:`repro.runtime` needs (see REP011 in
:mod:`repro.analysis.semantic`).

Like the rest of :mod:`repro.analysis`, nothing here imports or
executes the code under analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

#: Method names that mutate their receiver in place (superset of the
#: REP003 list: containers plus the ContextVar protocol).
MUTATOR_METHODS: frozenset[str] = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "add", "discard", "sort", "reverse", "setdefault", "popitem",
        "fill", "itemset", "put", "__setitem__",
    }
)

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript/call chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements plus successor edges."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)

    @property
    def defs(self) -> set[str]:
        """Names this block binds (assignment/for/with/import targets)."""
        out: set[str] = set()
        for stmt in self.statements:
            out |= _stmt_bindings(stmt)
        return out

    @property
    def uses(self) -> set[str]:
        """Names this block reads (loaded ``Name`` nodes, own scope only)."""
        out: set[str] = set()
        for stmt in self.statements:
            for node in _walk_own_scope(stmt):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    out.add(node.id)
        return out


@dataclass
class LoopInfo:
    """One ``for``/``while`` statement located inside the CFG."""

    node: ast.For | ast.AsyncFor | ast.While
    header: int  #: block evaluating the loop test / iterator
    body_blocks: set[int]  #: blocks belonging to the loop body
    outermost: bool  #: not nested in another loop of the same function

    @property
    def line(self) -> int:
        return self.node.lineno

    @property
    def kind(self) -> str:
        return "while" if isinstance(self.node, ast.While) else "for"

    @property
    def bounded(self) -> bool:
        """True when the trip count is provably constant-bounded."""
        if isinstance(self.node, ast.While):
            return False
        return _is_bounded_iterable(self.node.iter)


def _is_bounded_iterable(expr: ast.expr) -> bool:
    """Literal collections and constant ranges cannot scale with input."""
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
        return True
    if isinstance(expr, ast.Constant) and isinstance(
        expr.value, (str, bytes)
    ):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        name = expr.func.id
        if name == "range":
            return all(
                isinstance(a, ast.Constant) and isinstance(a.value, int)
                for a in expr.args
            ) and bool(expr.args)
        if name in ("enumerate", "sorted", "reversed", "iter", "zip"):
            return bool(expr.args) and all(
                _is_bounded_iterable(a) for a in expr.args
            )
    return False


def surface_walk(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk only the parts of ``stmt`` that belong to *its own* block.

    The CFG builder splits compound statements: an ``if``'s branches, a
    loop's body and a ``try``'s clauses live in separate blocks, while
    the statement node itself stays in the block that evaluates its
    test/iterator.  Judging a block therefore must not descend into the
    split-off bodies — a ``checkpoint()`` inside ``if cond:`` belongs to
    the branch block, not to the block holding the test.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield from ast.walk(stmt.test)
        return
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from ast.walk(stmt.target)
        yield from ast.walk(stmt.iter)
        return
    if isinstance(stmt, ast.Try):
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        # The body is threaded into the same block chain statement by
        # statement; only the context expressions belong to the node.
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
            if item.optional_vars is not None:
                yield from ast.walk(item.optional_vars)
        return
    if isinstance(stmt, ast.Match):
        yield from ast.walk(stmt.subject)
        return
    yield from ast.walk(stmt)


def _walk_own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class/lambda."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                ),
            ):
                continue
            stack.append(child)


def _target_names(target: ast.expr) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names


def _stmt_bindings(stmt: ast.stmt) -> set[str]:
    """Names bound by one statement (without entering nested scopes)."""
    out: set[str] = set()
    for node in _walk_own_scope(stmt):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                out |= _target_names(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            out |= _target_names(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            out |= _target_names(node.target)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            out |= {a.asname or a.name.split(".")[0] for a in node.names}
        elif isinstance(node, ast.withitem) and node.optional_vars:
            out |= _target_names(node.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            out.add(node.name)
        elif isinstance(node, ast.NamedExpr):
            out |= _target_names(node.target)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            out.add(node.name)
        elif isinstance(node, (ast.comprehension,)):
            out |= _target_names(node.target)
    return out


@dataclass(frozen=True)
class ModuleStateWrite:
    """One write to state the enclosing function never binds locally."""

    name: str  #: the module-level name written
    line: int
    kind: str  #: ``"global-assign"``, ``"mutation"`` or ``"subscript"``


class _CfgBuilder:
    """Translate one function body into basic blocks."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.loops: list[LoopInfo] = []
        self._loop_stack: list[tuple[int, int]] = []  # (header, exit)
        self._loop_block_stack: list[set[int]] = []

    # -- low-level graph assembly ------------------------------------- #

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        for body_set in self._loop_block_stack:
            body_set.add(block.index)
        return block

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)

    # -- statement translation ---------------------------------------- #

    def build(self, fn: FunctionNode) -> int:
        entry = self._new_block()
        exit_block = self._new_block()
        end = self._statements(fn.body, entry.index, exit_block.index)
        if end is not None:
            self._edge(end, exit_block.index)
        return exit_block.index

    def _statements(
        self, stmts: Sequence[ast.stmt], current: int, fn_exit: int
    ) -> int | None:
        """Thread ``stmts`` from block ``current``; return the live tail
        block index, or None when control cannot fall through."""
        live: int | None = current
        for stmt in stmts:
            if live is None:
                # Unreachable code after return/raise/break: park it in
                # a fresh block so its facts still exist, unconnected.
                live = self._new_block().index
            live = self._statement(stmt, live, fn_exit)
        return live

    def _statement(
        self, stmt: ast.stmt, current: int, fn_exit: int
    ) -> int | None:
        if isinstance(stmt, ast.If):
            self.blocks[current].statements.append(stmt)
            after = self._new_block()
            body_entry = self._new_block()
            self._edge(current, body_entry.index)
            body_end = self._statements(stmt.body, body_entry.index, fn_exit)
            if body_end is not None:
                self._edge(body_end, after.index)
            if stmt.orelse:
                else_entry = self._new_block()
                self._edge(current, else_entry.index)
                else_end = self._statements(
                    stmt.orelse, else_entry.index, fn_exit
                )
                if else_end is not None:
                    self._edge(else_end, after.index)
            else:
                self._edge(current, after.index)
            return after.index

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new_block()
            header.statements.append(stmt)
            self._edge(current, header.index)
            after = self._new_block()
            self._edge(header.index, after.index)
            body_set: set[int] = set()
            self._loop_block_stack.append(body_set)
            self._loop_stack.append((header.index, after.index))
            body_entry = self._new_block()
            self._edge(header.index, body_entry.index)
            body_end = self._statements(stmt.body, body_entry.index, fn_exit)
            if body_end is not None:
                self._edge(body_end, header.index)
            self._loop_stack.pop()
            self._loop_block_stack.pop()
            if stmt.orelse:
                else_end = self._statements(stmt.orelse, after.index, fn_exit)
                if else_end is not None and else_end != after.index:
                    self._edge(else_end, after.index)
            self.loops.append(
                LoopInfo(
                    node=stmt,
                    header=header.index,
                    body_blocks=body_set,
                    outermost=len(self._loop_stack) == 0,
                )
            )
            return after.index

        if isinstance(stmt, ast.Try):
            after = self._new_block()
            body_entry = self._new_block()
            self._edge(current, body_entry.index)
            # Any statement in the body may raise into any handler.
            handler_entries: list[int] = []
            for handler in stmt.handlers:
                h_entry = self._new_block()
                handler_entries.append(h_entry.index)
                self._edge(body_entry.index, h_entry.index)
            body_end = self._statements(stmt.body, body_entry.index, fn_exit)
            tails: list[int] = []
            if body_end is not None:
                if stmt.orelse:
                    else_end = self._statements(stmt.orelse, body_end, fn_exit)
                    if else_end is not None:
                        tails.append(else_end)
                else:
                    tails.append(body_end)
                for h_index in handler_entries:
                    self._edge(body_end, h_index)
            for handler, h_index in zip(stmt.handlers, handler_entries):
                h_end = self._statements(handler.body, h_index, fn_exit)
                if h_end is not None:
                    tails.append(h_end)
            if stmt.finalbody:
                final_entry = self._new_block()
                for tail in tails:
                    self._edge(tail, final_entry.index)
                final_end = self._statements(
                    stmt.finalbody, final_entry.index, fn_exit
                )
                if final_end is None:
                    return None
                self._edge(final_end, after.index)
                return after.index
            if not tails:
                return None
            for tail in tails:
                self._edge(tail, after.index)
            return after.index

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].statements.append(stmt)
            return self._statements(stmt.body, current, fn_exit)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].statements.append(stmt)
            self._edge(current, fn_exit)
            return None

        if isinstance(stmt, ast.Break):
            self.blocks[current].statements.append(stmt)
            if self._loop_stack:
                self._edge(current, self._loop_stack[-1][1])
            return None

        if isinstance(stmt, ast.Continue):
            self.blocks[current].statements.append(stmt)
            if self._loop_stack:
                self._edge(current, self._loop_stack[-1][0])
            return None

        if isinstance(stmt, ast.Match):
            self.blocks[current].statements.append(stmt)
            after = self._new_block()
            self._edge(current, after.index)  # no case may match
            for case in stmt.cases:
                case_entry = self._new_block()
                self._edge(current, case_entry.index)
                case_end = self._statements(case.body, case_entry.index, fn_exit)
                if case_end is not None:
                    self._edge(case_end, after.index)
            return after.index

        # Plain statement: accumulate into the current block.
        self.blocks[current].statements.append(stmt)
        return current


class FunctionFlow:
    """CFG + dataflow facts for one function definition."""

    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn
        builder = _CfgBuilder()
        self.exit_index = builder.build(fn)
        self.blocks: list[BasicBlock] = builder.blocks
        self.loops: list[LoopInfo] = builder.loops
        self._globals: frozenset[str] | None = None
        self._locals: frozenset[str] | None = None

    # -- scope facts --------------------------------------------------- #

    @property
    def declared_globals(self) -> frozenset[str]:
        """Names declared ``global`` anywhere in the function."""
        if self._globals is None:
            names: set[str] = set()
            for node in _walk_own_scope(self.fn):
                if isinstance(node, ast.Global):
                    names.update(node.names)
            self._globals = frozenset(names)
        return self._globals

    @property
    def local_bindings(self) -> frozenset[str]:
        """Names the function binds locally (params + assignments)."""
        if self._locals is None:
            args = self.fn.args
            names: set[str] = {
                a.arg
                for a in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *([args.vararg] if args.vararg else []),
                    *([args.kwarg] if args.kwarg else []),
                )
            }
            for stmt in self.fn.body:
                names |= _stmt_bindings(stmt)
            names -= self.declared_globals
            self._locals = frozenset(names)
        return self._locals

    # -- module-state writes (REP010's raw material) -------------------- #

    def module_state_writes(
        self, module_names: frozenset[str]
    ) -> list[ModuleStateWrite]:
        """Writes to ``module_names`` the function never binds locally.

        Three shapes: rebinding a declared-``global`` name, calling a
        mutator method on a module-level object, and assigning into a
        subscript/attribute rooted at a module-level name.
        """
        writes: list[ModuleStateWrite] = []
        local = self.local_bindings

        def module_rooted(expr: ast.expr) -> str | None:
            name = root_name(expr)
            if name and name in module_names and name not in local:
                return name
            return None

        for node in _walk_own_scope(self.fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    elems = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for elem in elems:
                        if isinstance(elem, ast.Name):
                            if (
                                elem.id in self.declared_globals
                                and elem.id in module_names
                            ):
                                writes.append(
                                    ModuleStateWrite(
                                        elem.id, node.lineno, "global-assign"
                                    )
                                )
                        elif isinstance(
                            elem, (ast.Attribute, ast.Subscript)
                        ):
                            name = module_rooted(elem)
                            if name:
                                writes.append(
                                    ModuleStateWrite(
                                        name, node.lineno, "subscript"
                                    )
                                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        name = module_rooted(target)
                        if name:
                            writes.append(
                                ModuleStateWrite(
                                    name, node.lineno, "subscript"
                                )
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    name = module_rooted(func.value)
                    if name:
                        writes.append(
                            ModuleStateWrite(name, node.lineno, "mutation")
                        )
        return writes

    # -- loop path queries --------------------------------------------- #

    def loop_bounded(self, loop: LoopInfo) -> bool:
        """Dataflow-aware boundedness: literals, plus names bound to them.

        :attr:`LoopInfo.bounded` recognizes a literal iterable written
        inline; this also accepts ``for x in names:`` when every
        binding of ``names`` in the function is a plain assignment from
        a provably bounded iterable (parameters, augmented assignments
        and loop targets disqualify the name — any of them could grow
        it with input size).
        """
        if loop.bounded:
            return True
        node = loop.node
        if isinstance(node, ast.While):
            return False
        iterable = node.iter
        if not isinstance(iterable, ast.Name):
            return False
        return self._name_bounded(iterable.id)

    def _name_bounded(self, name: str) -> bool:
        args = self.fn.args
        param_names = {
            a.arg
            for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
        if name in param_names or name in self.declared_globals:
            return False
        values: list[ast.expr] = []
        for node in _walk_own_scope(self.fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if name not in _target_names(target):
                        continue
                    if not isinstance(target, ast.Name):
                        return False  # tuple-unpack: value shape unknown
                    values.append(node.value)
            elif isinstance(node, ast.AnnAssign):
                if name in _target_names(node.target):
                    if node.value is None:
                        return False
                    values.append(node.value)
            elif isinstance(node, ast.AugAssign):
                if name in _target_names(node.target):
                    return False  # could grow with input
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if name in _target_names(node.target):
                    return False
            elif isinstance(node, ast.NamedExpr):
                if name in _target_names(node.target):
                    return False
            elif isinstance(node, ast.comprehension):
                if name in _target_names(node.target):
                    return False
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None and name in _target_names(
                    node.optional_vars
                ):
                    return False
            elif isinstance(node, ast.Nonlocal):
                if name in node.names:
                    return False
        return bool(values) and all(_is_bounded_iterable(v) for v in values)

    def loop_can_skip(
        self, loop: LoopInfo, hits: Callable[[ast.AST], bool]
    ) -> bool:
        """Can the loop cycle back to its header missing every hit?

        ``hits`` judges one AST node (e.g. "is a ``checkpoint`` call").
        A block counts as a hit block when any node on the *surface* of
        its statements (:func:`surface_walk` — split-off compound
        bodies belong to other blocks) satisfies the predicate.
        Returns True when some path ``header -> body -> header`` avoids
        every hit block, i.e. the loop *can* iterate without hitting.
        """
        hit_blocks = {
            b.index
            for b in self.blocks
            if b.index in loop.body_blocks
            and any(
                hits(node)
                for stmt in b.statements
                for node in surface_walk(stmt)
            )
        }
        body = loop.body_blocks - hit_blocks
        entries = [
            s
            for s in self.blocks[loop.header].successors
            if s in loop.body_blocks
        ]
        frontier = [e for e in entries if e in body]
        seen: set[int] = set(frontier)
        while frontier:
            current = frontier.pop()
            for successor in self.blocks[current].successors:
                if successor == loop.header:
                    return True
                if successor in body and successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        # Every body path back to the header crosses a hit block.
        return False


def function_flows(tree: ast.Module) -> Iterator[tuple[FunctionNode, FunctionFlow]]:
    """Yield ``(def node, FunctionFlow)`` for every function in a module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, FunctionFlow(node)
