"""Domain-aware static analysis for the reproduction codebase.

The dynamic net (:mod:`repro.verify`) replays thousands of random
instances through every algorithm; this package catches the bug classes
that never make it to runtime — nondeterminism sources, input mutation,
layering violations, fork-unsafe state, uncancellable loops — by
inspecting the *code* with the stdlib ``ast`` module.  No third-party
dependency is required.

* :mod:`repro.analysis.rules` — the token/pattern rule catalogue
  (REP001–REP009), each one an AST visitor or a whole-tree check;
* :mod:`repro.analysis.flow` — per-function control-flow graphs with
  def/use dataflow facts (loop coverage, module-state writes);
* :mod:`repro.analysis.callgraph` — the project-wide call graph with
  import/re-export resolution, entry-point discovery and reachability;
* :mod:`repro.analysis.semantic` — the semantic rule catalogue
  (REP010–REP013) built on the CFG and call graph;
* :mod:`repro.analysis.layers` — the import-layering checker enforcing
  the architecture DAG (LAY001/LAY002);
* :mod:`repro.analysis.engine` — file discovery, inline suppressions
  (``# repro: allow[REP00N] reason``), the committed-baseline ratchet,
  and the text/JSON/GitHub reporters behind ``repro-anon lint``.

Quick use::

    from repro.analysis import run_lint
    report = run_lint(["src/repro"])
    assert report.ok, report.format_text()
"""

from repro.analysis.callgraph import (
    CallGraph,
    build_callgraph,
    checkpoint_reaching,
)
from repro.analysis.engine import (
    ALL_RULES,
    RULE_DOCS,
    Baseline,
    Finding,
    LintReport,
    build_tree_callgraph,
    rule_ids,
    run_lint,
)
from repro.analysis.flow import FunctionFlow, function_flows
from repro.analysis.layers import (
    DEFAULT_LAYERS,
    LayerChecker,
    resolve_layer,
)

__all__ = [
    "Finding",
    "LintReport",
    "Baseline",
    "run_lint",
    "ALL_RULES",
    "RULE_DOCS",
    "rule_ids",
    "DEFAULT_LAYERS",
    "LayerChecker",
    "resolve_layer",
    "CallGraph",
    "build_callgraph",
    "build_tree_callgraph",
    "checkpoint_reaching",
    "FunctionFlow",
    "function_flows",
]
