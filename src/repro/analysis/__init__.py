"""Domain-aware static analysis for the reproduction codebase.

The dynamic net (:mod:`repro.verify`) replays thousands of random
instances through every algorithm; this package catches the bug classes
that never make it to runtime — nondeterminism sources, input mutation,
layering violations — by inspecting the *code* with the stdlib ``ast``
module.  No third-party dependency is required.

* :mod:`repro.analysis.rules` — the project-specific rule catalogue
  (REP001–REP008), each one an AST visitor or a whole-tree check;
* :mod:`repro.analysis.layers` — the import-layering checker enforcing
  the architecture DAG (LAY001/LAY002);
* :mod:`repro.analysis.engine` — file discovery, inline suppressions
  (``# repro: allow[REP00N] reason``), the committed-baseline ratchet,
  and the text/JSON reporters behind ``repro-anon lint``.

Quick use::

    from repro.analysis import run_lint
    report = run_lint(["src/repro"])
    assert report.ok, report.format_text()
"""

from repro.analysis.engine import (
    Baseline,
    Finding,
    LintReport,
    run_lint,
)
from repro.analysis.layers import (
    DEFAULT_LAYERS,
    LayerChecker,
)
from repro.analysis.rules import (
    ALL_RULES,
    RULE_DOCS,
    rule_ids,
)

__all__ = [
    "Finding",
    "LintReport",
    "Baseline",
    "run_lint",
    "ALL_RULES",
    "RULE_DOCS",
    "rule_ids",
    "DEFAULT_LAYERS",
    "LayerChecker",
]
