"""The lint engine: discovery, suppressions, baseline, reporting.

Execution model: parse every ``*.py`` under the scan root once, run the
module rules file-by-file, then the project rules (registry
completeness) and the layering checker over the whole parsed tree.
Findings then pass through two filters:

* **inline suppressions** — ``# repro: allow[REP002] reason`` on the
  offending line (or the line directly above it) silences the listed
  rules *only when a reason is given*; a bare ``allow[...]`` with no
  justification is ignored, so every exception is documented at the
  call site;
* **the committed baseline** — a JSON file of known, reviewed findings
  (rule + path + message, deliberately line-number-free).  Baselined
  findings do not fail the run; baseline entries that no longer match
  anything are reported as stale so the file ratchets monotonically
  toward empty.

Exit semantics (see :func:`repro.cli.main`): a run is ``ok`` iff no
unsuppressed, unbaselined findings remain.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover — import cycle guard for typing only
    from repro.analysis.callgraph import CallGraph

from repro.analysis.findings import Finding
from repro.analysis.layers import DEFAULT_LAYERS, LAYER_RULE_DOCS, LayerChecker
from repro.analysis.rules import ALL_RULES as BASE_RULES
from repro.analysis.rules import RULE_DOCS as BASE_RULE_DOCS
from repro.analysis.rules import ModuleContext, Rule
from repro.analysis.semantic import SEMANTIC_RULE_DOCS, SEMANTIC_RULES
from repro.errors import ReproError

#: ``# repro: allow[REP001,REP004] why this is fine``
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*(.*?)\s*$"
)

#: The full rule set behind ``repro-anon lint``: the token/pattern
#: rules (REP001–REP009) plus the CFG/call-graph semantic rules
#: (REP010–REP013).
ALL_RULES: tuple[Rule, ...] = (*BASE_RULES, *SEMANTIC_RULES)

#: rule id -> one-line summary across both catalogues.
RULE_DOCS: dict[str, str] = {**BASE_RULE_DOCS, **SEMANTIC_RULE_DOCS}


def rule_ids() -> list[str]:
    """All module/project rule ids (token + semantic), sorted."""
    return sorted(RULE_DOCS)


#: Every rule id the engine can emit (module + project + layering).
KNOWN_RULE_IDS: tuple[str, ...] = tuple(
    sorted({*RULE_DOCS, *LAYER_RULE_DOCS, "PARSE"})
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    @property
    def valid(self) -> bool:
        """Suppressions must carry a reason to take effect."""
        return bool(self.reason)


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Line -> suppression for every ``repro: allow`` comment."""
    out: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            out[lineno] = Suppression(lineno, rules, match.group(2).strip())
    return out


@dataclass
class Baseline:
    """The committed ratchet file of reviewed, tolerated findings.

    Schema::

        {"version": 1,
         "entries": [{"rule": "REP005", "path": "core/kk.py",
                      "message": "...", "reason": "..."}]}

    Matching ignores line numbers on purpose: unrelated edits above a
    tolerated finding must not churn the baseline.
    """

    path: Path | None = None
    entries: list[dict[str, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read baseline {path}: {exc}") from exc
        entries = raw.get("entries", [])
        for entry in entries:
            missing = {"rule", "path", "message", "reason"} - set(entry)
            if missing:
                raise ReproError(
                    f"baseline {path}: entry {entry!r} is missing "
                    f"{sorted(missing)}"
                )
            if not entry["reason"].strip():
                raise ReproError(
                    f"baseline {path}: entry for {entry['rule']} at "
                    f"{entry['path']} has an empty reason; every tolerated "
                    "finding must say why"
                )
        return cls(path=path, entries=list(entries))

    def partition(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict[str, str]]]:
        """Split findings into (new, baselined) and list stale entries."""
        index: dict[tuple[str, str, str], dict[str, str]] = {
            (e["rule"], e["path"], e["message"]): e for e in self.entries
        }
        used: set[tuple[str, str, str]] = set()
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            if finding.fingerprint in index:
                used.add(finding.fingerprint)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [
            entry
            for key, entry in index.items()
            if key not in used
        ]
        return new, baselined, stale

    def prune(self, stale: Sequence[Mapping[str, str]]) -> int:
        """Drop ``stale`` entries and rewrite the baseline file.

        Returns the number of entries removed.  The escape hatch behind
        ``repro-anon lint --prune-baseline``: stale entries are
        otherwise a hard error (see :attr:`LintReport.ok`).
        """
        keys = {(e["rule"], e["path"], e["message"]) for e in stale}
        kept = [
            entry
            for entry in self.entries
            if (entry["rule"], entry["path"], entry["message"]) not in keys
        ]
        removed = len(self.entries) - len(kept)
        self.entries = kept
        if self.path is not None and removed:
            self.path.write_text(
                json.dumps({"version": 1, "entries": kept}, indent=2) + "\n"
            )
        return removed


@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: Path
    files_scanned: int
    findings: list[Finding]
    suppressed: list[Finding]
    baselined: list[Finding]
    stale_baseline: list[dict[str, str]]

    @property
    def ok(self) -> bool:
        """True when nothing gates: no live findings, no stale baseline.

        A stale baseline entry is a hard error: the finding it tolerated
        is gone, so keeping the entry would silently tolerate a *future*
        regression with the same fingerprint.  ``repro-anon lint
        --prune-baseline`` removes stale entries instead of failing.
        """
        return not self.findings and not self.stale_baseline

    def format_text(self) -> str:
        """Human-readable report, one line per finding."""
        lines: list[str] = []
        for finding in self.findings:
            lines.append(finding.format())
        for entry in self.stale_baseline:
            lines.append(
                f"error: stale baseline entry {entry['rule']} "
                f"{entry['path']}: {entry['message']!r} no longer matches "
                "anything — remove it, or rerun with --prune-baseline"
            )
        lines.append(
            f"{self.root}: {len(self.findings)} finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_scanned} file(s) scanned"
        )
        return "\n".join(lines)

    def format_github(self) -> str:
        """GitHub Actions ``::error`` annotations, one per finding.

        Paths are prefixed with the scan root so annotations anchor to
        repository-relative files in CI.
        """
        base = self.root if self.root.is_dir() else self.root.parent
        lines: list[str] = []
        for finding in self.findings:
            path = (base / finding.path).as_posix()
            lines.append(
                f"::error file={path},line={finding.line},"
                f"col={finding.col + 1},title={finding.rule}"
                f"::{finding.message}"
            )
        for entry in self.stale_baseline:
            lines.append(
                f"::error title=stale baseline ({entry['rule']})"
                f"::baseline entry for {entry['path']} "
                f"({entry['message']!r}) no longer matches anything; "
                "remove it or rerun with --prune-baseline"
            )
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        """The documented machine-readable schema (version 1)."""
        return {
            "version": 1,
            "root": str(self.root),
            "summary": {
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline": len(self.stale_baseline),
                "files_scanned": self.files_scanned,
            },
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
            "suppressed": [f.to_json() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
        }


def _discover(root: Path) -> list[Path]:
    if root.is_file():
        return [root]
    if not root.is_dir():
        raise ReproError(f"lint target {root} does not exist")
    return sorted(
        p
        for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
        and not any(part.startswith(".") for part in p.parts)
    )


def _parse_modules(
    root: Path, files: Iterable[Path]
) -> tuple[list[ModuleContext], list[Finding]]:
    scan_root = root if root.is_dir() else root.parent
    modules: list[ModuleContext] = []
    errors: list[Finding] = []
    for path in files:
        rel = path.relative_to(scan_root).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rel, exc.lineno or 1, (exc.offset or 1) - 1, "PARSE",
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        modules.append(ModuleContext(scan_root, path, rel, tree, source))
    return modules, errors


def _validate_select(select: Iterable[str]) -> frozenset[str]:
    chosen = frozenset(select)
    unknown = chosen - set(KNOWN_RULE_IDS)
    if unknown:
        raise ReproError(
            f"unknown rule id(s) {sorted(unknown)}; known rules: "
            f"{list(KNOWN_RULE_IDS)}"
        )
    return chosen


def _active_rules(
    chosen: frozenset[str] | None, check_layers: bool
) -> frozenset[str]:
    """The rule ids whose findings this run could actually produce."""
    active = chosen if chosen is not None else frozenset(KNOWN_RULE_IDS)
    if not check_layers:
        active = frozenset(r for r in active if not r.startswith("LAY"))
    return active


def lint_tree(
    root: str | Path,
    *,
    select: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    rules: Sequence[Rule] = ALL_RULES,
    check_layers: bool = True,
    layers: Mapping[str, int] = DEFAULT_LAYERS,
) -> LintReport:
    """Lint one scan root (a package directory or a single file).

    Parameters
    ----------
    root:
        Directory (scanned recursively) or single ``.py`` file.  The
        directory name doubles as the package name for the layering
        checker, so scanning ``src/repro`` enforces ``repro.*`` imports.
    select:
        Optional iterable of rule ids; when given, only those rules'
        findings are reported.  Unknown ids raise :class:`ReproError`.
    baseline:
        Optional loaded :class:`Baseline`; matched findings are
        reported separately and do not gate.
    check_layers:
        Set to False to skip the import-layering DAG check.
    """
    root = Path(root)
    chosen = _validate_select(select) if select is not None else None
    if chosen is not None and not _active_rules(chosen, check_layers):
        detail = (
            "the selected layer rules are disabled by --no-layers"
            if chosen
            else "--select names no rules"
        )
        raise ReproError(
            f"no runnable rules selected ({detail}); known rules: "
            f"{list(KNOWN_RULE_IDS)}"
        )
    files = _discover(root)
    modules, raw_findings = _parse_modules(root, files)

    for ctx in modules:
        for rule in rules:
            raw_findings.extend(rule.check_module(ctx))
    for rule in rules:
        raw_findings.extend(rule.check_project(modules))
    if check_layers and root.is_dir():
        checker = LayerChecker(root.name, layers)
        raw_findings.extend(checker.check(modules))

    if chosen is not None:
        raw_findings = [f for f in raw_findings if f.rule in chosen]
    raw_findings.sort()

    suppressions_by_path: dict[str, dict[int, Suppression]] = {
        ctx.rel: parse_suppressions(ctx.source) for ctx in modules
    }
    live: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw_findings:
        table = suppressions_by_path.get(finding.path, {})
        hit = table.get(finding.line) or table.get(finding.line - 1)
        if hit and hit.valid and finding.rule in hit.rules:
            suppressed.append(finding)
        else:
            live.append(finding)

    if baseline is not None:
        live, baselined, stale = baseline.partition(live)
        # A baseline entry for a rule that did not run this time cannot
        # be judged stale — under --select or --no-layers its finding
        # was never produced in the first place.
        stale = [e for e in stale if e["rule"] in _active_rules(chosen, check_layers)]
    else:
        baselined, stale = [], []

    return LintReport(
        root=root,
        files_scanned=len(files),
        findings=live,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
    )


def build_tree_callgraph(root: str | Path) -> "CallGraph":
    """Parse one package tree and build its call graph.

    The function behind ``repro-anon lint --callgraph``: same discovery
    and parsing as the linter, producing the deterministic artifact
    (see :meth:`repro.analysis.callgraph.CallGraph.to_json_text`).
    """
    from repro.analysis.callgraph import build_callgraph

    root = Path(root)
    if not root.is_dir():
        raise ReproError(
            f"--callgraph needs a package directory to scan, got {root}"
        )
    modules, _errors = _parse_modules(root, _discover(root))
    return build_callgraph(modules, root.name)


def run_lint(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    baseline_path: str | Path | None = None,
    check_layers: bool = True,
) -> list[LintReport]:
    """Lint several scan roots with one shared baseline.

    This is the function behind ``repro-anon lint``; it returns one
    :class:`LintReport` per path, in input order.
    """
    baseline = Baseline.load(baseline_path) if baseline_path else None
    reports = [
        lint_tree(
            path, select=select, baseline=baseline, check_layers=check_layers
        )
        for path in paths
    ]
    if baseline is not None and len(reports) > 1:
        # An entry is stale only if *no* scanned root matched it, so the
        # per-tree stale lists are replaced by the combined one on the
        # final report.
        used = {
            f.fingerprint for report in reports for f in report.baselined
        }
        chosen = _validate_select(select) if select is not None else None
        active = _active_rules(chosen, check_layers)
        for report in reports:
            report.stale_baseline = []
        reports[-1].stale_baseline = [
            entry
            for entry in baseline.entries
            if entry["rule"] in active
            and (entry["rule"], entry["path"], entry["message"]) not in used
        ]
    return reports
