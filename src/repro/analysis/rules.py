"""The project-specific rule catalogue (REP001–REP009).

Every rule inspects the stdlib ``ast`` of the scanned tree; none of
them import or execute the code under analysis, so the linter is safe
to run on broken or hostile files.  Rules come in two shapes:

* **module rules** implement :meth:`Rule.check_module` and see one file
  at a time;
* **project rules** implement :meth:`Rule.check_project` and see the
  whole parsed tree at once (registry completeness needs to compare
  ``core`` against ``verify/differential.py``).

Rule scoping is by top-level subpackage of the scan root: the
determinism rules (REP001/REP004) only police algorithm code under
``core/`` and ``verify/``, because a CLI module printing the wall-clock
time is fine while an anonymizer reading it is a reproducibility bug.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding


@dataclass
class ModuleContext:
    """One parsed file plus where it sits in the scanned tree."""

    root: Path
    path: Path
    rel: str  # POSIX path relative to the scan root
    tree: ast.Module
    source: str

    @property
    def segment(self) -> str:
        """Top-level subpackage (``core``, ``verify``, …) or module stem."""
        parts = self.rel.split("/")
        return parts[0] if len(parts) > 1 else Path(parts[0]).stem


class Rule:
    """Base class: a rule has an id, a summary, and one or both hooks."""

    rule_id: str = "REP000"
    summary: str = ""

    def __repr__(self) -> str:
        # Address-free so rendered rule catalogues (docs/api.md) are
        # deterministic across processes.
        return f"<{type(self).__name__} {self.rule_id}>"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one file (default: none)."""
        return iter(())

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        """Yield findings needing the whole tree (default: none)."""
        return iter(())


# --------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------- #


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_aliases(tree: ast.Module, module: str) -> dict[str, str]:
    """Names under which ``module`` (e.g. ``numpy``) is visible.

    Returns a mapping of local name -> dotted module path, covering
    ``import numpy``, ``import numpy as np``, ``import numpy.random``
    and ``from numpy import random [as r]``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == module or name.startswith(module + "."):
                    local = alias.asname or name.split(".")[0]
                    aliases[local] = name if alias.asname else module
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            base = node.module or ""
            if base == module or base.startswith(module + "."):
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
    return aliases


def _resolve_dotted(tree_aliases: dict[str, str], node: ast.expr) -> str | None:
    """Dotted path of ``node`` with the leading alias canonicalized."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in tree_aliases:
        canonical = tree_aliases[head]
        return canonical + ("." + rest if rest else "")
    return dotted


def _has_arguments(call: ast.Call) -> bool:
    return bool(call.args or call.keywords)


# --------------------------------------------------------------------- #
# REP001 — unseeded randomness
# --------------------------------------------------------------------- #

#: Constructors that are fine *when given an explicit seed argument*.
_SEEDABLE = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}


class UnseededRandomness(Rule):
    """REP001: calls into global RNG state in algorithm code.

    ``random.shuffle(...)``, ``np.random.rand(...)`` and friends draw
    from process-global generators, so two runs of the same experiment
    diverge unless every call site is threaded through an explicitly
    seeded ``np.random.Generator`` / ``random.Random``.  Scope:
    ``core/`` and ``verify/``.
    """

    rule_id = "REP001"
    summary = "unseeded randomness in algorithm code"
    segments = ("core", "verify")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment not in self.segments:
            return
        aliases = _module_aliases(ctx.tree, "random")
        aliases.update(_module_aliases(ctx.tree, "numpy"))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_dotted(aliases, node.func)
            if target is None:
                continue
            if target in _SEEDABLE:
                if _has_arguments(node):
                    continue  # explicitly seeded construction
                kind = "constructed without an explicit seed"
            elif target.startswith("random.") or target.startswith(
                "numpy.random."
            ):
                kind = "draws from process-global RNG state"
            else:
                continue
            yield Finding(
                ctx.rel,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"'{target}' {kind}; thread an explicitly seeded "
                "np.random.Generator / random.Random through instead",
            )


# --------------------------------------------------------------------- #
# REP002 — set/dict ordering leaks
# --------------------------------------------------------------------- #


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class UnsortedSetIteration(Rule):
    """REP002: a set iterated straight into an ordered output.

    Set iteration order depends on insertion history and (for strings)
    on ``PYTHONHASHSEED``, so ``for x in {…}`` / ``list(set(…))``
    leaks nondeterminism into anything order-sensitive.  Wrapping the
    set in ``sorted(...)`` fixes it and is never flagged.  The rule is
    syntactic: only expressions that are *literally* sets (a set
    display, a set comprehension, or a direct ``set(...)`` /
    ``frozenset(...)`` call) are recognized, which keeps false
    positives at zero in exchange for missing aliased sets.
    """

    rule_id = "REP002"
    summary = "unsorted set iterated into an ordered output"

    _ORDERED_CONSUMERS = ("list", "tuple", "enumerate", "iter")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            sites: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sites.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                # Only the *ordered* comprehensions leak; building
                # another set (or a dict used as a set) from a set is
                # order-insensitive, but a list comprehension is not.
                if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    sites.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in self._ORDERED_CONSUMERS and node.args:
                    sites.append(node.args[0])
            for site in sites:
                if _is_set_expression(site):
                    yield Finding(
                        ctx.rel,
                        site.lineno,
                        site.col_offset,
                        self.rule_id,
                        "iterating a set into an ordered output; set order "
                        "is not reproducible across runs — wrap it in "
                        "sorted(...)",
                    )


# --------------------------------------------------------------------- #
# REP003 — input mutation in core algorithms
# --------------------------------------------------------------------- #

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "sort", "reverse", "setdefault", "popitem",
    "fill", "itemset", "put",
}

#: Annotation names marking a parameter as shared input data.
_PROTECTED_TYPES = {
    "Table", "Record", "GeneralizedRecord", "GeneralizedTable",
    "EncodedTable", "EncodedAttribute",
}


def _annotation_type_names(node: ast.expr | None) -> set[str]:
    """All type names appearing anywhere in an annotation expression."""
    if node is None:
        return set()
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: pull identifiers out of the literal.
            names.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", sub.value))
    return names


class InputMutation(Rule):
    """REP003: an algorithm mutating its input table/record parameters.

    Every anonymizer must be a pure function of its input — the
    differential runner executes all eleven registered algorithms on
    the *same* instance, so the first one to ``.append`` to a shared
    ``Table`` poisons every run after it.  The rule flags assignments,
    ``del``, augmented assignments and mutating method calls whose
    target chain is rooted at a parameter annotated with one of the
    shared input types.  Scope: ``core/``.
    """

    rule_id = "REP003"
    summary = "mutation of a shared input parameter"
    segments = ("core",)

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment not in self.segments:
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = fn.args
            protected = {
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
                if _annotation_type_names(a.annotation) & _PROTECTED_TYPES
            }
            if not protected:
                continue
            yield from self._scan_body(ctx, fn, protected)

    def _scan_body(
        self, ctx: ModuleContext, fn: ast.AST, protected: set[str]
    ) -> Iterator[Finding]:
        def hit(node: ast.AST, param: str, what: str) -> Finding:
            assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            return Finding(
                ctx.rel,
                node.lineno,  # type: ignore[attr-defined]
                node.col_offset,  # type: ignore[attr-defined]
                self.rule_id,
                f"'{fn.name}' {what} its input parameter '{param}'; "
                "core algorithms must not mutate their inputs",
            )

        def rooted(expr: ast.expr) -> str | None:
            if not isinstance(expr, (ast.Attribute, ast.Subscript)):
                return None
            root = _root_name(expr)
            return root if root in protected else None

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    elems = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for elem in elems:
                        param = rooted(elem)
                        if param:
                            yield hit(elem, param, "assigns into")
            elif isinstance(node, ast.AugAssign):
                param = rooted(node.target)
                if param:
                    yield hit(node, param, "assigns into")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    param = rooted(target)
                    if param:
                        yield hit(target, param, "deletes from")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                ):
                    root = _root_name(func.value)
                    if root in protected:
                        yield hit(node, root, f"calls .{func.attr}() on")


# --------------------------------------------------------------------- #
# REP004 — wall-clock / environment reads
# --------------------------------------------------------------------- #

#: Dotted names whose *read* makes an algorithm depend on the outside
#: world.  Monotonic timers (``time.monotonic``, ``time.perf_counter``)
#: are fine — they only ever feed elapsed-time reporting.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.environ", "os.environb", "os.getenv", "os.getenvb",
}


class WallClockRead(Rule):
    """REP004: wall-clock or environment reads in algorithm code.

    An anonymizer whose output can depend on ``time.time()`` or
    ``os.environ`` is unreproducible by construction.  Elapsed-time
    *measurement* stays legal: the monotonic clocks are not flagged.
    Scope: ``core/`` and ``verify/``.
    """

    rule_id = "REP004"
    summary = "wall-clock/environment read in algorithm code"
    segments = ("core", "verify")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment not in self.segments:
            return
        aliases = _module_aliases(ctx.tree, "time")
        aliases.update(_module_aliases(ctx.tree, "os"))
        aliases.update(_module_aliases(ctx.tree, "datetime"))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            target = _resolve_dotted(aliases, node)
            if target in _WALL_CLOCK:
                yield Finding(
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"'{target}' read in algorithm code; outputs must not "
                    "depend on wall-clock time or the process environment",
                )


# --------------------------------------------------------------------- #
# REP005 — registry completeness
# --------------------------------------------------------------------- #

#: A top-level public function in ``core/`` matching one of these is an
#: algorithm entry point and must be exercised by the differential
#: registry (``verify/differential.py``).
_ENTRY_POINT_PATTERNS = (
    r"_clustering$",
    r"_anonymize$",
    r"_anonymity$",
    r"agglomerative$",
    r"_expansion$",
    r"_nearest_neighbors$",
    r"^datafly$",
)
_ENTRY_POINT_RE = re.compile("|".join(_ENTRY_POINT_PATTERNS))


class RegistryCompleteness(Rule):
    """REP005: every algorithm is registered, every measure is flagged.

    Two halves, both cross-module:

    * every algorithm entry point defined under ``core/`` must be
      referenced by ``verify/differential.py`` — otherwise the
      differential net silently stops covering it;
    * every ``LossMeasure`` subclass under ``measures/`` must declare
      ``monotone`` and ``bounded_unit`` explicitly in its class body,
      because the verifier checks exactly what the class *claims* and
      an inherited default is an unreviewed claim.
    """

    rule_id = "REP005"
    summary = "algorithm/measure registry completeness"

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        differential = next(
            (m for m in modules if m.rel == "verify/differential.py"), None
        )
        if differential is not None:
            referenced = self._referenced_names(differential.tree)
            for ctx in modules:
                parts = ctx.rel.split("/")
                if parts[0] != "core" or parts[-1] == "__init__.py":
                    continue
                for node in ctx.tree.body:
                    if not isinstance(node, ast.FunctionDef):
                        continue
                    name = node.name
                    if name.startswith("_") or not _ENTRY_POINT_RE.search(
                        name
                    ):
                        continue
                    if name not in referenced:
                        yield Finding(
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            self.rule_id,
                            f"algorithm entry point '{name}' is not "
                            "referenced by verify/differential.py; register "
                            "it so the differential net covers it",
                        )
        for ctx in modules:
            if ctx.rel.split("/")[0] != "measures":
                continue
            yield from self._check_measures(ctx)

    @staticmethod
    def _referenced_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                names.update(a.asname or a.name for a in node.names)
        return names

    def _check_measures(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == "LossMeasure":
                continue
            base_names = {
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", None)
                for b in node.bases
            }
            if "LossMeasure" not in base_names:
                continue
            declared = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    declared.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    declared.add(stmt.target.id)
            missing = sorted({"monotone", "bounded_unit"} - declared)
            if missing:
                yield Finding(
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"measure '{node.name}' does not declare "
                    f"{' or '.join(missing)} explicitly; the verification "
                    "harness checks what the class claims — state the "
                    "flags in the class body",
                )


# --------------------------------------------------------------------- #
# REP006 — __all__ / public-API drift
# --------------------------------------------------------------------- #


def _top_level_bindings(tree: ast.Module) -> dict[str, tuple[int, str]]:
    """Names bound at module top level -> (line, binding kind).

    Kinds are ``"import"`` (plain ``import x``), ``"from-import"`` and
    ``"definition"`` (def/class/assignment); ``__future__`` imports are
    skipped entirely.  Descends into top-level ``if``/``try`` bodies
    (TYPE_CHECKING and import-fallback guards) but not into functions
    or classes.
    """
    bindings: dict[str, tuple[int, str]] = {}

    def visit(stmts: Iterable[ast.stmt]) -> None:
        for node in stmts:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bindings[local] = (node.lineno, "import")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    bindings[alias.asname or alias.name] = (
                        node.lineno, "from-import"
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bindings[node.name] = (node.lineno, "definition")
            elif isinstance(node, ast.ClassDef):
                bindings[node.name] = (node.lineno, "definition")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    elems = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for elem in elems:
                        if isinstance(elem, ast.Name):
                            bindings[elem.id] = (node.lineno, "definition")
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bindings[node.target.id] = (node.lineno, "definition")
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(tree.body)
    return bindings


class PublicApiDrift(Rule):
    """REP006: ``__all__`` out of sync with what the module binds.

    Three checks: every ``__all__`` entry must be a string naming a
    bound top-level name; no duplicates; and in package ``__init__``
    files every public name bound by a from-import, def, class or
    assignment must appear in ``__all__`` (a re-export that ``import *``
    and the docs miss is drift in the other direction).
    """

    rule_id = "REP006"
    summary = "__all__ / public-API drift"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        dunder_all: ast.Assign | ast.AnnAssign | None = None
        for node in ctx.tree.body:
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            ):
                dunder_all = node
                break
        if dunder_all is None:
            return
        value = dunder_all.value
        line, col = dunder_all.lineno, dunder_all.col_offset
        if not isinstance(value, (ast.List, ast.Tuple)):
            yield Finding(
                ctx.rel, line, col, self.rule_id,
                "__all__ is not a list/tuple literal, so the public API "
                "cannot be statically audited",
            )
            return
        names: list[str] = []
        for elem in value.elts:
            if isinstance(elem, ast.Constant) and isinstance(elem.value, str):
                names.append(elem.value)
            else:
                yield Finding(
                    ctx.rel, elem.lineno, elem.col_offset, self.rule_id,
                    "__all__ contains a non-literal entry; list string "
                    "names only",
                )

        bindings = _top_level_bindings(ctx.tree)
        bindings.setdefault("__all__", (line, "definition"))
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield Finding(
                    ctx.rel, line, col, self.rule_id,
                    f"__all__ lists '{name}' more than once",
                )
            seen.add(name)
            if name not in bindings:
                yield Finding(
                    ctx.rel, line, col, self.rule_id,
                    f"__all__ exports '{name}' but the module never binds "
                    "it",
                )

        if ctx.rel.split("/")[-1] == "__init__.py":
            exported = set(names)
            for name, (bound_line, kind) in sorted(bindings.items()):
                if (
                    name.startswith("_")
                    or name in exported
                    or kind == "import"  # `import numpy` is not a re-export
                ):
                    continue
                yield Finding(
                    ctx.rel, bound_line, 0, self.rule_id,
                    f"public name '{name}' is bound in the package "
                    "__init__ but missing from __all__",
                )


# --------------------------------------------------------------------- #
# REP007 — swallowed exceptions
# --------------------------------------------------------------------- #


def _contains_raise(stmts: Iterable[ast.stmt]) -> bool:
    """True if any statement (not inside a nested def/class) raises."""

    def scan(node: ast.AST) -> bool:
        if isinstance(node, ast.Raise):
            return True
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            return False  # a nested definition raising later doesn't count
        return any(scan(child) for child in ast.iter_child_nodes(node))

    return any(scan(stmt) for stmt in stmts)


def _handler_types(node: ast.ExceptHandler) -> list[str]:
    """Exception type names a handler catches ('' for a bare except)."""
    if node.type is None:
        return [""]
    types = (
        list(node.type.elts)
        if isinstance(node.type, ast.Tuple)
        else [node.type]
    )
    names = []
    for t in types:
        dotted = _dotted(t)
        names.append(dotted.split(".")[-1] if dotted else "?")
    return names


class SwallowedException(Rule):
    """REP007: broad or silent exception swallowing in runtime-critical code.

    The resilience machinery (:mod:`repro.runtime`) steers execution
    through *typed* errors — :class:`DeadlineExceeded` must abort a
    grid run, :class:`InjectedFault` must surface in fault drills.  A
    ``try: ... except Exception: pass`` in an algorithm or the
    experiment harness silently eats those signals, turning a
    cancelled run into a wrong answer.  Two shapes are flagged, in
    ``core/`` and ``experiments/`` only:

    * a handler for ``Exception``/``BaseException`` or a bare
      ``except:`` that never re-raises;
    * any handler whose body is nothing but ``pass``/``...``.

    A deliberate broad catch (e.g. a degradation-chain rung boundary)
    belongs in a module *designed* for it — or carries an inline
    ``# repro: allow[REP007] reason`` suppression.
    """

    rule_id = "REP007"
    summary = "broad or silent exception swallowing"
    segments = ("core", "experiments")

    _BROAD = {"Exception", "BaseException", ""}

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment not in self.segments:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _handler_types(node)
            broad = [t for t in caught if t in self._BROAD]
            silent = all(
                isinstance(s, ast.Pass)
                or (
                    isinstance(s, ast.Expr)
                    and isinstance(s.value, ast.Constant)
                    and s.value.value is Ellipsis
                )
                for s in node.body
            )
            if silent:
                label = broad[0] if broad else caught[0]
                shown = repr(label) if label else "a bare except"
                yield Finding(
                    ctx.rel, node.lineno, node.col_offset, self.rule_id,
                    f"handler for {shown} silently swallows the "
                    "exception (body is only pass/...); handle it, "
                    "re-raise, or narrow the catch",
                )
            elif broad and not _contains_raise(node.body):
                shown = repr(broad[0]) if broad[0] else "a bare except"
                yield Finding(
                    ctx.rel, node.lineno, node.col_offset, self.rule_id,
                    f"broad handler for {shown} never re-raises; it "
                    "swallows typed runtime signals (DeadlineExceeded, "
                    "InjectedFault) — narrow the exception type or "
                    "re-raise what you don't handle",
                )


# --------------------------------------------------------------------- #
# REP008 — raw timer calls outside the timing layers
# --------------------------------------------------------------------- #

#: Clock *calls* that must go through :class:`repro.runtime.Timer`.
#: Unlike REP004 (which bans wall-clock **reads** in algorithm code,
#: everywhere-determinism), this is about benchmarkability: a raw
#: ``time.perf_counter()`` sprinkled in a harness can't be faked in
#: tests and can't be swapped for the bench suite's repeat-aware
#: timing.  The monotonic clocks are *legal to inject* (passing
#: ``time.monotonic`` as a ``clock=`` argument is the approved
#: pattern) — only direct calls are flagged.
_RAW_TIMERS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
}


class RawTimerCall(Rule):
    """REP008: raw ``time`` clock calls outside ``perf``/``runtime``.

    Timing belongs to the two layers built for it: ``repro.runtime``
    owns the injectable :class:`~repro.runtime.Timer` and ``Deadline``
    primitives, and ``repro.perf`` owns benchmark repetition and
    reporting.  A direct ``time.perf_counter()`` anywhere else bakes a
    real clock into code that tests then cannot make deterministic —
    use ``Timer`` (optionally with an injected fake clock) instead.
    Referencing a clock *without calling it* (``clock=time.monotonic``)
    stays legal: injection is exactly the approved pattern.  Wall-clock
    calls inside REP004's segments are *not* double-reported here —
    REP004 already owns those.
    """

    rule_id = "REP008"
    summary = "raw time.* clock call outside repro.perf/repro.runtime"
    allowed_segments = ("perf", "runtime")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment in self.allowed_segments:
            return
        defer_to_rep004 = ctx.segment in WallClockRead.segments
        aliases = _module_aliases(ctx.tree, "time")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_dotted(aliases, node.func)
            if target in _RAW_TIMERS:
                if defer_to_rep004 and target in _WALL_CLOCK:
                    continue
                yield Finding(
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"'{target}()' called outside repro.perf/repro.runtime; "
                    "time through the injectable repro.runtime.Timer so "
                    "tests can fake the clock",
                )


# --------------------------------------------------------------------- #
# REP009 — bare print() outside the presentation layers
# --------------------------------------------------------------------- #


class BarePrint(Rule):
    """REP009: bare ``print()`` outside ``cli``/``report``/``tools``.

    Library code talks through return values, the journal, and
    ``repro.obs`` — a stray ``print()`` in an algorithm or runtime
    module is debug output that bypasses all three: it is invisible to
    the journal, unfakeable in tests, and garbles machine-readable CLI
    output when the module runs under ``repro-anon``.  The presentation
    layers (``cli``, ``repro.report`` consumers rendering to stdout,
    ``tools`` scripts, ``__main__``) are exactly where printing *is*
    the job, so they stay exempt.
    """

    rule_id = "REP009"
    summary = "bare print() outside cli/report/tools presentation layers"
    allowed_segments = ("cli", "report", "tools", "__main__")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment in self.allowed_segments:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Finding(
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    "bare 'print()' outside the presentation layers; "
                    "debug output here is invisible to the journal — "
                    "return data, record a metric via repro.obs, or "
                    "move the printing into cli/report",
                )


# --------------------------------------------------------------------- #
# REP014 — raw concurrency/socket primitives outside the serving layers
# --------------------------------------------------------------------- #

#: Blocking/concurrency *calls* that belong behind the serving layer's
#: injectable primitives.  ``socket`` is matched by prefix — any direct
#: socket construction counts.
_RAW_CONCURRENCY = {
    "time.sleep",
    "threading.Thread",
    "threading.Timer",
}


class RawConcurrencyPrimitive(Rule):
    """REP014: raw socket/thread/sleep use outside ``serve``/``runtime``.

    Concurrency is confined to the two layers built to own it:
    ``repro.runtime`` wraps sleeping behind the injectable
    :data:`~repro.runtime.retry.Sleeper` and ``repro.serve`` owns the
    threads, locks and sockets of the long-lived server.  A
    ``threading.Thread`` spawned from an algorithm or a ``time.sleep``
    in a harness is untestable wall-clock behavior that the fault
    plans, fake clocks and drills cannot reach — route sleeps through
    an injected sleeper and push thread/socket work into
    ``repro.serve``.  Referencing a primitive without calling it
    (``sleeper=time.sleep`` as an injectable default) stays legal, as
    do the synchronization *guards* (``threading.Lock``/``Condition``
    etc.) that pure data structures legitimately need.
    """

    rule_id = "REP014"
    summary = "raw socket/thread/sleep primitive outside repro.serve/repro.runtime"
    allowed_segments = ("serve", "runtime")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.segment in self.allowed_segments:
            return
        aliases = _module_aliases(ctx.tree, "time")
        aliases.update(_module_aliases(ctx.tree, "threading"))
        aliases.update(_module_aliases(ctx.tree, "socket"))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_dotted(aliases, node.func)
            if target is None:
                continue
            if target in _RAW_CONCURRENCY or target.startswith("socket."):
                yield Finding(
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"'{target}()' called outside repro.serve/repro.runtime; "
                    "sleeps go through an injected Sleeper and "
                    "thread/socket work belongs to the serving layer",
                )


# --------------------------------------------------------------------- #
# REP015 — metric/span names outside the repro.obs.names registry
# --------------------------------------------------------------------- #

#: The module-level instrumentation helpers whose first argument is a
#: metric name.  Both the facade (``repro.obs``) and the defining
#: module spellings are matched.
_METRIC_HELPERS = {
    "repro.obs.count",
    "repro.obs.gauge",
    "repro.obs.observe",
    "repro.obs.metrics.count",
    "repro.obs.metrics.gauge",
    "repro.obs.metrics.observe",
}

#: Span-opening helpers whose first argument is a span name.
_SPAN_HELPERS = {
    "repro.obs.span",
    "repro.obs.tracer.span",
}

#: Registry methods whose *literal* first arguments are also checked
#: (receiver types are unknown statically, so dynamic first arguments
#: on methods are left alone).
_METRIC_METHODS = {"inc", "set_gauge"}


def _string_literals(node: ast.expr) -> list[ast.expr] | None:
    """Flatten a name expression into its string-bearing leaves.

    Returns the ``Constant``/``JoinedStr`` leaves of the expression
    (descending through ``IfExp`` arms, the one conditional shape the
    instrumented code uses), or ``None`` when any leaf is something
    else — i.e. the name is dynamic.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node]
    if isinstance(node, ast.JoinedStr):
        return [node]
    if isinstance(node, ast.IfExp):
        body = _string_literals(node.body)
        orelse = _string_literals(node.orelse)
        if body is None or orelse is None:
            return None
        return body + orelse
    return None


def _fstring_prefix(node: ast.JoinedStr) -> str:
    """The leading constant text of an f-string (may be empty)."""
    prefix = ""
    for part in node.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            prefix += part.value
        else:
            break
    return prefix


class UnregisteredMetricName(Rule):
    """REP015: a metric/span name not registered in ``repro.obs.names``.

    Telemetry names are stringly-typed contracts: dashboards, the SLO
    objectives, the Prometheus exposition and the window snapshots all
    key on them, so a typo'd or ad-hoc name silently severs the series.
    Every name passed to ``count``/``gauge``/``observe``/``span`` (and
    to literal ``inc``/``set_gauge`` method calls) must be a literal
    found in :data:`repro.obs.names.METRIC_NAMES` /
    :data:`~repro.obs.names.SPAN_NAMES`.  The one sanctioned dynamic
    shape is an f-string whose literal prefix is registered in
    :data:`~repro.obs.names.DYNAMIC_METRIC_PREFIXES` (status/reason
    families like ``serve.status.*``).  Anything computed — a variable,
    a concatenation — is flagged; reviewed exceptions go in the
    baseline with a reason.
    """

    rule_id = "REP015"
    summary = "metric/span name is not a registered literal from repro.obs.names"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        from repro.obs.names import (
            DYNAMIC_METRIC_PREFIXES,
            is_registered_metric,
            is_registered_span,
        )

        aliases = _module_aliases(ctx.tree, "repro.obs")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            target = _resolve_dotted(aliases, node.func)
            if target in _METRIC_HELPERS:
                kind = "metric"
            elif target in _SPAN_HELPERS:
                kind = "span"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and _string_literals(node.args[0]) is not None
            ):
                kind = "metric"
            else:
                continue
            label = _dotted(node.func) or "?"
            name_arg = node.args[0]
            leaves = _string_literals(name_arg)
            if leaves is None:
                yield Finding(
                    ctx.rel,
                    name_arg.lineno,
                    name_arg.col_offset,
                    self.rule_id,
                    f"dynamic {kind} name passed to '{label}()'; names "
                    "must be literals from repro.obs.names (or an "
                    "f-string on a registered dynamic prefix)",
                )
                continue
            for leaf in leaves:
                if isinstance(leaf, ast.JoinedStr):
                    prefix = _fstring_prefix(leaf)
                    if kind == "span" or not any(
                        prefix.startswith(p)
                        for p in DYNAMIC_METRIC_PREFIXES
                    ):
                        yield Finding(
                            ctx.rel,
                            leaf.lineno,
                            leaf.col_offset,
                            self.rule_id,
                            f"f-string {kind} name in '{label}()' does "
                            f"not start with a registered dynamic "
                            f"prefix (got '{prefix}'); register the "
                            "family in repro.obs.names",
                        )
                    continue
                name = leaf.value  # type: ignore[attr-defined]
                registered = (
                    is_registered_span(name)
                    if kind == "span"
                    else is_registered_metric(name)
                )
                if not registered:
                    yield Finding(
                        ctx.rel,
                        leaf.lineno,
                        leaf.col_offset,
                        self.rule_id,
                        f"{kind} name '{name}' is not registered in "
                        "repro.obs.names; add it to the registry so "
                        "dashboards and SLOs can rely on the series",
                    )


#: Every module/project rule, in rule-id order.
ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomness(),
    UnsortedSetIteration(),
    InputMutation(),
    WallClockRead(),
    RegistryCompleteness(),
    PublicApiDrift(),
    SwallowedException(),
    RawTimerCall(),
    BarePrint(),
    RawConcurrencyPrimitive(),
    UnregisteredMetricName(),
)

#: rule id -> one-line summary, for ``--select`` validation and docs.
RULE_DOCS: dict[str, str] = {rule.rule_id: rule.summary for rule in ALL_RULES}


def rule_ids() -> list[str]:
    """All module/project rule ids, sorted."""
    return sorted(RULE_DOCS)
