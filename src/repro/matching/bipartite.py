"""The consistency graph ``V_{D, g(D)}`` (Section IV).

The bipartite graph has the original records on the left, the generalized
records on the right, and an edge wherever the two are consistent
(Definition 3.3).  Anonymity notions read off it directly:

* (1,k): every left vertex has degree ≥ k;
* (k,1): every right vertex has degree ≥ k;
* (k,k): both;
* global (1,k): every left vertex has ≥ k *allowed* neighbours
  (:mod:`repro.matching.allowed`).

Construction is vectorized: identical original rows have identical
neighbourhoods, so consistency is evaluated once per unique row against
all generalized records via the precomputed ancestor tables.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.runtime import checkpoint
from repro.tabular.encoding import EncodedTable


class ConsistencyGraph:
    """The bipartite consistency graph of a table and a generalization.

    Attributes
    ----------
    adjacency:
        ``adjacency[i]`` — sorted numpy array of generalized-record
        indices consistent with original record ``i``.
    """

    __slots__ = ("enc", "node_matrix", "adjacency", "_reverse_degrees")

    def __init__(self, enc: EncodedTable, node_matrix: NDArray[np.int64]) -> None:
        node_matrix = np.asarray(node_matrix)
        n = enc.num_records
        if node_matrix.shape != (n, enc.num_attributes):
            raise ValueError(
                f"node matrix has shape {node_matrix.shape}, expected "
                f"{(n, enc.num_attributes)}"
            )
        self.enc = enc
        self.node_matrix = node_matrix

        # One consistency sweep per unique original row.
        unique_neighbours: list[NDArray[np.intp]] = []
        for row in enc.unique_codes:
            checkpoint("matching.bipartite.row")
            mask = enc.consistency_mask_for_codes(row, node_matrix)
            unique_neighbours.append(np.flatnonzero(mask))
        self.adjacency: list[NDArray[np.intp]] = [
            unique_neighbours[enc.unique_inverse[i]] for i in range(n)
        ]

        # Right-side degrees: count over all left vertices.
        counts = np.zeros(n, dtype=np.int64)
        for i in range(n):
            counts[self.adjacency[i]] += 1
        self._reverse_degrees = counts

    @property
    def num_records(self) -> int:
        """Number of records on each side."""
        return self.enc.num_records

    def left_degrees(self) -> NDArray[np.int64]:
        """Degree of every original record (its number of neighbours)."""
        return np.array([len(a) for a in self.adjacency], dtype=np.int64)

    def right_degrees(self) -> NDArray[np.int64]:
        """Degree of every generalized record."""
        return self._reverse_degrees.copy()

    def num_edges(self) -> int:
        """Total number of consistency edges."""
        return int(sum(len(a) for a in self.adjacency))

    def adjacency_lists(self) -> list[list[int]]:
        """Plain-list adjacency, as the matching routines expect."""
        return [a.tolist() for a in self.adjacency]

    def __repr__(self) -> str:
        return (
            f"ConsistencyGraph(n={self.num_records}, m={self.num_edges()})"
        )
