"""Allowed edges: which edges lie in *some* perfect matching.

Definition 4.6 calls a generalized record R̄ a *match* of an original
record R when the edge (R, R̄) of the consistency graph can be completed
to a perfect matching.  The paper tests this by deleting the two
endpoints and re-running Hopcroft–Karp per edge (O(√n · m²) overall).

We implement that naive test (:func:`allowed_edges_naive`, used for
cross-checking) and the standard O(n + m) structure theorem
(:func:`allowed_edges`):

    Given a perfect matching M, orient every matched edge from right to
    left and every unmatched edge from left to right.  An edge (u, v) is
    allowed iff it is in M or u and v lie in the same strongly connected
    component of the oriented graph (equivalently, iff it lies on an
    M-alternating cycle — Berge).

Both functions take the bipartite graph as left-side adjacency lists and
return, per left vertex, the set of allowed right neighbours.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MatchingError
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.tarjan import strongly_connected_components


def _perfect_matching(
    adj: Sequence[Sequence[int]], num_right: int
) -> tuple[list[int], list[int]]:
    num_left = len(adj)
    match_left, match_right, size = hopcroft_karp(adj, num_right)
    if size != num_left or size != num_right:
        raise MatchingError(
            f"graph has no perfect matching (max matching {size}, "
            f"sides {num_left}/{num_right})"
        )
    return match_left, match_right


def allowed_edges(
    adj: Sequence[Sequence[int]], num_right: int
) -> list[set[int]]:
    """Allowed right-neighbours of every left vertex, via one matching + SCC.

    Raises
    ------
    MatchingError
        If the graph has no perfect matching (then *no* edge is allowed
        in the Definition 4.6 sense, and the caller's input is broken:
        every generalization graph contains the identity matching).
    """
    num_left = len(adj)
    match_left, match_right = _perfect_matching(adj, num_right)

    # Vertices 0..num_left-1 are left; num_left..num_left+num_right-1 right.
    directed: list[list[int]] = [[] for _ in range(num_left + num_right)]
    # repro: allow[REP011] single pass over one oracle instance's vertex set
    for u in range(num_left):
        mu = match_left[u]
        for v in adj[u]:
            if v == mu:
                directed[num_left + v].append(u)  # matched: right -> left
            else:
                directed[u].append(num_left + v)  # unmatched: left -> right
    comp = strongly_connected_components(directed)

    allowed: list[set[int]] = []
    # repro: allow[REP011] single pass over one oracle instance's vertex set
    for u in range(num_left):
        mine = {match_left[u]}
        for v in adj[u]:
            if comp[u] == comp[num_left + v]:
                mine.add(v)
        allowed.append(mine)
    return allowed


def allowed_edges_naive(
    adj: Sequence[Sequence[int]], num_right: int
) -> list[set[int]]:
    """Reference implementation: per-edge endpoint deletion + Hopcroft–Karp.

    This is the O(√n · m²) procedure the paper describes.  Exponentially
    clearer, quadratically slower; used by the tests to validate
    :func:`allowed_edges` and by the benchmarks to demonstrate the
    speed-up.
    """
    num_left = len(adj)
    _perfect_matching(adj, num_right)  # validate the precondition

    allowed: list[set[int]] = []
    for u in range(num_left):
        mine: set[int] = set()
        for v in adj[u]:
            # Delete u and v; the rest must still have a perfect matching.
            sub_adj = [
                [w if w < v else w - 1 for w in adj[x] if w != v]
                for x in range(num_left)
                if x != u
            ]
            _, _, size = hopcroft_karp(sub_adj, num_right - 1)
            if size == num_left - 1:
                mine.add(v)
        allowed.append(mine)
    return allowed


def match_counts(adj: Sequence[Sequence[int]], num_right: int) -> list[int]:
    """Number of matches (Definition 4.6) of every left vertex."""
    return [len(s) for s in allowed_edges(adj, num_right)]
