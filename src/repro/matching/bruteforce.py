"""Brute-force augmenting-path matching (Kuhn's algorithm).

A deliberately simple maximum-matching implementation: for every left
vertex, do a depth-first search for an augmenting path, recomputing the
visited set from scratch each time — O(V · E) against Hopcroft–Karp's
O(√V · E).  It shares no code and no data structures with
:mod:`repro.matching.hopcroft_karp`, which is exactly what makes it a
useful differential oracle: the two implementations can only agree on
the matching *size* (maximum matchings are not unique), and the
verification harness demands that they always do.
"""

from __future__ import annotations

from typing import Sequence

from repro.matching.hopcroft_karp import UNMATCHED
from repro.obs import count


def kuhn_matching(
    adj: Sequence[Sequence[int]], num_right: int
) -> tuple[list[int], list[int], int]:
    """Maximum matching by single augmenting-path search per left vertex.

    Same interface as :func:`repro.matching.hopcroft_karp.hopcroft_karp`:
    returns ``(match_left, match_right, size)``.
    """
    num_left = len(adj)
    match_left = [UNMATCHED] * num_left
    match_right = [UNMATCHED] * num_right

    path_steps = 0

    def try_augment(u: int, visited: list[bool]) -> bool:
        nonlocal path_steps
        path_steps += 1
        for v in adj[u]:
            if visited[v]:
                continue
            visited[v] = True
            if match_right[v] == UNMATCHED or try_augment(
                match_right[v], visited
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        return False

    size = 0
    for u in range(num_left):
        if try_augment(u, [False] * num_right):
            size += 1
    if path_steps:
        count("matching.kuhn.path_steps", path_steps)
    if size:
        count("matching.kuhn.augmenting_paths", size)
    return match_left, match_right, size


def max_matching_size(adj: Sequence[Sequence[int]], num_right: int) -> int:
    """Cardinality of a maximum matching, by brute force."""
    *_, size = kuhn_matching(adj, num_right)
    return size
