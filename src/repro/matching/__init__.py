"""Bipartite matching substrate (Section IV/V-C of the paper).

Consistency graphs, from-scratch Hopcroft–Karp, Tarjan SCC, and the
allowed-edge computation behind Definition 4.6's match test.
"""

from repro.matching.allowed import (
    allowed_edges,
    allowed_edges_naive,
    match_counts,
)
from repro.matching.bipartite import ConsistencyGraph
from repro.matching.bruteforce import kuhn_matching, max_matching_size
from repro.matching.hopcroft_karp import (
    UNMATCHED,
    has_perfect_matching,
    hopcroft_karp,
)
from repro.matching.tarjan import strongly_connected_components

__all__ = [
    "ConsistencyGraph",
    "hopcroft_karp",
    "kuhn_matching",
    "max_matching_size",
    "has_perfect_matching",
    "UNMATCHED",
    "strongly_connected_components",
    "allowed_edges",
    "allowed_edges_naive",
    "match_counts",
]
