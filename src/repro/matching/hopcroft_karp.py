"""Hopcroft–Karp maximum bipartite matching, from scratch.

Section V-C of the paper tests whether an edge of the consistency graph
extends to a perfect matching by (conceptually) invoking Hopcroft–Karp,
whose O(√V · E) running time it quotes.  This module implements the
algorithm directly — phased BFS to layer the graph, then iterative DFS
along layered alternating paths — with no recursion (n can be thousands).

The graph is given as adjacency lists from the *left* side: ``adj[u]`` is
an iterable of right-vertex indices.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.obs import count

#: Marker for an unmatched vertex.
UNMATCHED = -1

_INF = float("inf")


def hopcroft_karp(
    adj: Sequence[Sequence[int]], num_right: int
) -> tuple[list[int], list[int], int]:
    """Compute a maximum matching.

    Parameters
    ----------
    adj:
        ``adj[u]`` lists the right-side neighbours of left vertex ``u``.
    num_right:
        Number of right-side vertices.

    Returns
    -------
    ``(match_left, match_right, size)`` where ``match_left[u]`` is the
    right vertex matched to ``u`` (or :data:`UNMATCHED`), symmetrically
    for ``match_right``, and ``size`` is the matching cardinality.
    """
    num_left = len(adj)
    match_left = [UNMATCHED] * num_left
    match_right = [UNMATCHED] * num_right
    dist = [0.0] * num_left

    def bfs() -> bool:
        """Layer free left vertices; return True if an augmenting path exists."""
        queue: deque[int] = deque()
        # repro: allow[REP011] BFS layer construction, one pass per Hopcroft-Karp phase
        for u in range(num_left):
            if match_left[u] == UNMATCHED:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        # repro: allow[REP011] BFS queue drain, bounded by the per-row oracle instance
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_right[v]
                if w == UNMATCHED:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(root: int) -> bool:
        """Find one augmenting path from ``root`` along the BFS layers.

        Iterative: the stack holds (vertex, index-into-adjacency) frames;
        on success the path is flipped from the far end back to the root.
        """
        nonlocal path_steps
        stack: list[tuple[int, int]] = [(root, 0)]
        path: list[tuple[int, int]] = []  # (left vertex, right vertex) pairs
        # repro: allow[REP011] DFS augmenting-path walk, bounded by the per-row oracle instance
        while stack:
            path_steps += 1
            u, i = stack[-1]
            if i >= len(adj[u]):
                # Dead end: retire u from this phase and backtrack.
                dist[u] = _INF
                stack.pop()
                if path and stack:
                    path.pop()
                continue
            stack[-1] = (u, i + 1)
            v = adj[u][i]
            w = match_right[v]
            if w == UNMATCHED:
                # Augment: flip matched status along the collected path.
                path.append((u, v))
                for pu, pv in path:
                    match_left[pu] = pv
                    match_right[pv] = pu
                return True
            if dist[w] == dist[u] + 1:
                path.append((u, v))
                stack.append((w, 0))
        return False

    # Work tallies, accumulated locally and published once per call so
    # the inner loops pay integer increments, not registry lookups.
    phases = 0
    path_steps = 0
    size = 0
    # repro: allow[REP011] O(sqrt(V)) Hopcroft-Karp phases on a per-row oracle instance
    while bfs():
        phases += 1
        for u in range(num_left):
            if match_left[u] == UNMATCHED and dfs(u):
                size += 1
    if phases:
        count("matching.hopcroft_karp.phases", phases)
    if path_steps:
        count("matching.hopcroft_karp.path_steps", path_steps)
    if size:
        count("matching.hopcroft_karp.augmenting_paths", size)
    return match_left, match_right, size


def has_perfect_matching(adj: Sequence[Sequence[int]], num_right: int) -> bool:
    """Whether a perfect matching (saturating both sides) exists."""
    if len(adj) != num_right:
        return False
    *_, size = hopcroft_karp(adj, num_right)
    return size == len(adj)
