"""Tarjan's strongly connected components, iterative.

Used by the allowed-edge computation (:mod:`repro.matching.allowed`):
after orienting the consistency graph around one perfect matching, an
edge lies on an alternating cycle iff its endpoints share an SCC.

The implementation is the standard Tarjan lowlink algorithm converted to
an explicit stack, so graphs with tens of thousands of vertices do not
hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Sequence


def strongly_connected_components(adj: Sequence[Sequence[int]]) -> list[int]:
    """Compute SCC ids for a directed graph.

    Parameters
    ----------
    adj:
        ``adj[u]`` lists the out-neighbours of vertex ``u``.

    Returns
    -------
    ``comp`` with ``comp[u] == comp[v]`` iff u and v are strongly
    connected.  Component ids are assigned in reverse topological order of
    the condensation (Tarjan's natural output order); only equality of ids
    is meaningful to callers.
    """
    n = len(adj)
    index = [-1] * n  # discovery index, -1 = unvisited
    lowlink = [0] * n
    on_stack = [False] * n
    scc_stack: list[int] = []
    comp = [-1] * n
    next_index = 0
    next_comp = 0

    # repro: allow[REP011] iterative Tarjan, one pass over a bounded oracle instance
    for root in range(n):
        if index[root] != -1:
            continue
        # Frame: (vertex, iterator position into adj[vertex])
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            u, i = work[-1]
            if i == 0:
                index[u] = lowlink[u] = next_index
                next_index += 1
                scc_stack.append(u)
                on_stack[u] = True
            advanced = False
            neighbours = adj[u]
            while i < len(neighbours):
                v = neighbours[i]
                i += 1
                if index[v] == -1:
                    work[-1] = (u, i)
                    work.append((v, 0))
                    advanced = True
                    break
                if on_stack[v]:
                    if index[v] < lowlink[u]:
                        lowlink[u] = index[v]
            if advanced:
                continue
            # All neighbours done: close u.
            work.pop()
            if lowlink[u] == index[u]:
                while True:
                    w = scc_stack.pop()
                    on_stack[w] = False
                    comp[w] = next_comp
                    if w == u:
                        break
                next_comp += 1
            if work:
                parent = work[-1][0]
                if lowlink[u] < lowlink[parent]:
                    lowlink[parent] = lowlink[u]
    return comp
