"""COUNT-query workloads over quasi-identifier attributes.

The paper's motivation is publishing data "for the purposes of data
mining or other types of statistical research"; the operational test of
an anonymization's utility is therefore how well the release answers
the analyst's queries.  This module defines the standard workload —
conjunctive COUNT queries, each constraining a few attributes to value
sets — a seeded random generator for them, and exact evaluation on the
original table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class CountQuery:
    """SELECT COUNT(*) WHERE ⋀_j (A_j ∈ S_j) over constrained attributes.

    ``predicates`` maps attribute index -> frozenset of admissible value
    indices; unconstrained attributes are simply absent.
    """

    predicates: tuple[tuple[int, frozenset[int]], ...]

    def describe(self, enc: EncodedTable) -> str:
        """Human-readable rendering against a concrete schema."""
        parts = []
        for j, values in self.predicates:
            att = enc.attrs[j].collection.attribute
            shown = sorted(att.values[v] for v in values)
            if len(shown) > 4:
                shown = shown[:4] + ["..."]
            parts.append(f"{att.name} ∈ {{{', '.join(shown)}}}")
        return "COUNT WHERE " + " AND ".join(parts) if parts else "COUNT(*)"


def evaluate_exact(enc: EncodedTable, query: CountQuery) -> int:
    """The true answer on the original table."""
    mask = np.ones(enc.num_records, dtype=bool)
    for j, values in query.predicates:
        allowed = np.zeros(enc.attrs[j].num_values, dtype=bool)
        allowed[list(values)] = True
        mask &= allowed[enc.codes[:, j]]
    return int(mask.sum())


def random_workload(
    enc: EncodedTable,
    num_queries: int = 200,
    arity: int = 2,
    seed: int = 0,
    min_true_count: int = 1,
    max_tries: int = 50,
) -> list[CountQuery]:
    """Generate a seeded random workload of conjunctive COUNT queries.

    Each query constrains ``arity`` distinct attributes; per attribute
    the admissible set is a random non-empty, non-full subset of the
    domain, biased towards contiguous runs for integer-like domains
    (matching the range predicates analysts actually write).  Queries
    whose true answer is below ``min_true_count`` are resampled so
    relative errors stay well-defined.

    Raises
    ------
    ExperimentError
        If the arity exceeds the attribute count, or non-empty queries
        cannot be found within the retry budget.
    """
    r = enc.num_attributes
    if arity > r:
        raise ExperimentError(f"arity {arity} exceeds {r} attributes")
    rng = np.random.default_rng(seed)
    workload: list[CountQuery] = []
    for _ in range(num_queries):
        for _ in range(max_tries):
            attrs = rng.choice(r, size=arity, replace=False)
            predicates = []
            for j in sorted(int(a) for a in attrs):
                m = enc.attrs[j].num_values
                if m < 2:
                    predicates = []
                    break
                if rng.random() < 0.7:
                    # Contiguous run of 1 .. m-1 values.
                    width = int(rng.integers(1, m))
                    start = int(rng.integers(0, m - width + 1))
                    values = frozenset(range(start, start + width))
                else:
                    size = int(rng.integers(1, m))
                    values = frozenset(
                        int(v) for v in rng.choice(m, size=size, replace=False)
                    )
                predicates.append((j, values))
            if not predicates:
                continue
            query = CountQuery(tuple(predicates))
            if evaluate_exact(enc, query) >= min_true_count:
                workload.append(query)
                break
        else:
            raise ExperimentError(
                "could not generate a non-empty query within the retry "
                "budget; lower min_true_count or arity"
            )
    return workload
