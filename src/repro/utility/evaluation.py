"""Workload-level utility comparison of anonymization methods.

Ties the query machinery together: generate one workload, answer it on
several releases of the same table, and summarize the error
distributions — the operational counterpart of Table I's information-
loss comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.report import format_table
from repro.tabular.encoding import EncodedTable
from repro.utility.estimator import query_errors
from repro.utility.queries import CountQuery, random_workload


@dataclass(frozen=True)
class WorkloadSummary:
    """Error statistics of one release on one workload."""

    release: str
    mean_error: float
    median_error: float
    p90_error: float

    @classmethod
    def from_errors(cls, release: str, errors: np.ndarray) -> "WorkloadSummary":
        """Summarize a vector of relative errors."""
        return cls(
            release=release,
            mean_error=float(errors.mean()),
            median_error=float(np.median(errors)),
            p90_error=float(np.quantile(errors, 0.9)),
        )


@dataclass(frozen=True)
class WorkloadComparison:
    """All releases' error statistics on a shared workload."""

    num_queries: int
    arity: int
    summaries: tuple[WorkloadSummary, ...]

    def by_release(self) -> dict[str, WorkloadSummary]:
        """Summaries keyed by release name."""
        return {s.release: s for s in self.summaries}

    def ranking(self) -> list[str]:
        """Releases from most to least useful (by mean error)."""
        return [
            s.release
            for s in sorted(self.summaries, key=lambda s: s.mean_error)
        ]

    def format(self) -> str:
        """Aligned report table."""
        rows = [
            [s.release, s.mean_error, s.median_error, s.p90_error]
            for s in sorted(self.summaries, key=lambda s: s.mean_error)
        ]
        header = (
            f"workload: {self.num_queries} COUNT queries, arity {self.arity} "
            "(relative errors; lower = more useful)"
        )
        return header + "\n" + format_table(
            ["release", "mean", "median", "p90"], rows, 3
        )


def compare_releases(
    enc: EncodedTable,
    releases: dict[str, np.ndarray],
    num_queries: int = 200,
    arity: int = 2,
    seed: int = 0,
    workload: list[CountQuery] | None = None,
) -> WorkloadComparison:
    """Answer one shared workload on every release and summarize.

    Parameters
    ----------
    enc:
        The original table's encoding (ground truth).
    releases:
        Name -> node matrix of each anonymized release.
    workload:
        Optional pre-built workload; generated when omitted.
    """
    if workload is None:
        workload = random_workload(
            enc, num_queries=num_queries, arity=arity, seed=seed
        )
    summaries = tuple(
        WorkloadSummary.from_errors(name, query_errors(enc, nodes, workload))
        for name, nodes in releases.items()
    )
    return WorkloadComparison(
        num_queries=len(workload), arity=arity, summaries=summaries
    )
