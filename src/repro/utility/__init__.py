"""Workload-based utility evaluation: COUNT queries on releases.

The operational counterpart of the information-loss measures — how
accurately does each anonymized release answer an analyst's conjunctive
COUNT queries under the uniform-spread estimator?
"""

from repro.utility.estimator import evaluate_estimated, query_errors
from repro.utility.evaluation import (
    WorkloadComparison,
    WorkloadSummary,
    compare_releases,
)
from repro.utility.queries import CountQuery, evaluate_exact, random_workload

__all__ = [
    "CountQuery",
    "random_workload",
    "evaluate_exact",
    "evaluate_estimated",
    "query_errors",
    "compare_releases",
    "WorkloadComparison",
    "WorkloadSummary",
]
