"""Answering COUNT queries on a generalized release.

The analyst sees generalized cells, not values.  The standard estimator
(uniform-spread / cell-intersection) assumes each record's true value is
uniform over its published subset: a record published with subset B_j in
attribute j matches the predicate S_j with probability
``|B_j ∩ S_j| / |B_j|``, independently across attributes, and the
estimated count is the sum of match probabilities over records.

On an un-generalized release the estimator is exact; the more a release
is generalized, the more mass leaks across predicate boundaries — which
is precisely how information loss turns into query error.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.encoding import EncodedTable
from repro.utility.queries import CountQuery


def _overlap_fractions(
    enc: EncodedTable, j: int, values: frozenset[int]
) -> np.ndarray:
    """``frac[b] = |B_b ∩ S| / |B_b|`` for every node b of attribute j."""
    att = enc.attrs[j]
    allowed = np.zeros(att.num_values, dtype=np.float64)
    allowed[list(values)] = 1.0
    # anc is [values, nodes]; column b flags the members of node b.
    inter = allowed @ att.anc  # [nodes] — |B ∩ S|
    return inter / att.sizes.astype(np.float64)


def evaluate_estimated(
    enc: EncodedTable, node_matrix: np.ndarray, query: CountQuery
) -> float:
    """Uniform-spread estimate of the query answer on a release."""
    node_matrix = np.asarray(node_matrix)
    probs = np.ones(node_matrix.shape[0], dtype=np.float64)
    for j, values in query.predicates:
        frac = _overlap_fractions(enc, j, values)
        probs *= frac[node_matrix[:, j]]
    return float(probs.sum())


def query_errors(
    enc: EncodedTable,
    node_matrix: np.ndarray,
    workload: list[CountQuery],
) -> np.ndarray:
    """Relative error of every workload query on a release.

    Error = |estimate − truth| / truth (truth ≥ 1 by workload
    construction).
    """
    from repro.utility.queries import evaluate_exact

    errors = np.empty(len(workload), dtype=np.float64)
    for i, query in enumerate(workload):
        truth = evaluate_exact(enc, query)
        estimate = evaluate_estimated(enc, node_matrix, query)
        errors[i] = abs(estimate - truth) / max(truth, 1)
    return errors
