"""Request/response envelopes of the anonymization service.

"The Role of Quasi-identifiers in k-Anonymity Revisited" (Bettini et
al.) shows that a k-anonymous release is only as meaningful as the QI
configuration it was computed against, and degradation chains can serve
a *different* notion than the one requested.  The response envelope
therefore carries an explicit ``guarantee`` block — the notion, k,
quasi-identifier list and winning rung the result actually satisfies —
so a degraded answer is never silently mistaken for the requested one.

Envelopes split into a deterministic ``body`` (cacheable, byte-stable
across runs and restarts — the chaos drill compares these) and a
volatile ``meta`` block (elapsed time, request id, cache hit), so crash
recovery can assert byte-identical bodies without fighting wall-clock
noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import (
    AnonymityError,
    DatasetError,
    FallbackExhausted,
    ReproError,
    RequestError,
    ServiceOverloaded,
)
from repro.core.backend import BACKENDS
from repro.measures.registry import get_measure
from repro.runtime.fallback import FallbackReport
from repro.tabular.table import Table

#: Envelope schema version (bump on breaking layout changes).
ENVELOPE_VERSION = 1

#: Anonymity notions a request may ask for (normalized spellings).
VALID_NOTIONS = ("k", "k1", "1k", "kk", "global-1k")

_NOTION_ALIASES = {"g1k": "global-1k", "global": "global-1k"}

_REQUEST_FIELDS = frozenset(
    {"dataset", "n", "seed", "k", "notion", "measure", "timeout", "backend"}
)


@dataclass(frozen=True)
class AnonymizeRequest:
    """One validated ``POST /anonymize`` request."""

    k: int  #: anonymity parameter
    dataset: str = "art"  #: registry dataset name
    n: int | None = None  #: table size (None = the paper's default)
    seed: int = 0  #: dataset generator seed
    notion: str = "kk"  #: requested anonymity notion (normalized)
    measure: str = "entropy"  #: loss measure (normalized canonical name)
    timeout: float | None = None  #: client latency budget, seconds
    #: Execution backend preference (``None`` = server default).
    #: Excluded from :meth:`to_json` on purpose: backends are
    #: bit-equivalent, so the echoed request, the response body and the
    #: :func:`cache_key` must not vary with it — the resolved backend is
    #: reported in the volatile ``meta`` envelope instead.
    backend: str | None = None

    @classmethod
    def from_json(cls, payload: Any) -> "AnonymizeRequest":
        """Parse and validate a JSON payload into a request.

        Strict: unknown keys are rejected (a typoed ``"notions"`` must
        not silently fall back to the default), notion and measure
        names are normalized so equivalent spellings share one cache
        key.
        """
        if not isinstance(payload, dict):
            raise RequestError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - _REQUEST_FIELDS)
        if unknown:
            raise RequestError(
                f"unknown request fields {unknown}; "
                f"expected a subset of {sorted(_REQUEST_FIELDS)}"
            )
        if "k" not in payload:
            raise RequestError("request is missing the required field 'k'")
        k = _as_int(payload["k"], "k")
        if k < 1:
            raise RequestError(f"k must be a positive integer, got {k}")
        n = payload.get("n")
        if n is not None:
            n = _as_int(n, "n")
            if n < 1:
                raise RequestError(f"n must be a positive integer, got {n}")
        seed = _as_int(payload.get("seed", 0), "seed")
        dataset = payload.get("dataset", "art")
        if not isinstance(dataset, str) or not dataset:
            raise RequestError(f"dataset must be a non-empty string, got {dataset!r}")
        notion = payload.get("notion", "kk")
        if not isinstance(notion, str):
            raise RequestError(f"notion must be a string, got {notion!r}")
        notion = _NOTION_ALIASES.get(notion.lower(), notion.lower())
        if notion not in VALID_NOTIONS:
            raise RequestError(
                f"unknown notion {notion!r}; expected one of {list(VALID_NOTIONS)}"
            )
        measure = payload.get("measure", "entropy")
        if not isinstance(measure, str):
            raise RequestError(f"measure must be a string, got {measure!r}")
        try:
            measure = get_measure(measure).name
        except ReproError as exc:
            raise RequestError(str(exc)) from exc
        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError) as exc:
                raise RequestError(
                    f"timeout must be a number, got {timeout!r}"
                ) from exc
            if timeout <= 0:
                raise RequestError(f"timeout must be positive, got {timeout}")
        backend = payload.get("backend")
        if backend is not None:
            if not isinstance(backend, str):
                raise RequestError(
                    f"backend must be a string, got {backend!r}"
                )
            if backend not in BACKENDS:
                raise RequestError(
                    f"unknown backend {backend!r}; "
                    f"expected one of {list(BACKENDS)}"
                )
        return cls(
            k=k,
            dataset=dataset,
            n=n,
            seed=seed,
            notion=notion,
            measure=measure,
            timeout=timeout,
            backend=backend,
        )

    def to_json(self) -> dict[str, Any]:
        """JSON form of the normalized request (echoed in responses)."""
        return {
            "dataset": self.dataset,
            "n": self.n,
            "seed": self.seed,
            "k": self.k,
            "notion": self.notion,
            "measure": self.measure,
            "timeout": self.timeout,
        }


def _as_int(value: Any, name: str) -> int:
    """An exact integer (bools and floats with fractions rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{name} must be an integer, got {value!r}")
    return value


def request_mix(seed: int, count: int) -> list[AnonymizeRequest]:
    """A deterministic, varied request stream shared by drills and tools.

    The same ``(seed, count)`` always yields the same sequence — the
    chaos drill, the load generator and the serve bench all replay
    identical traffic, so their results are comparable and recovered
    responses can be checked request-by-request against a reference.
    """
    from random import Random

    rng = Random(seed)
    notions = ("kk", "k", "1k", "k1")
    measures = ("entropy", "lm")
    out: list[AnonymizeRequest] = []
    for _ in range(count):
        out.append(
            AnonymizeRequest(
                k=rng.choice((2, 3, 4)),
                dataset="art",
                n=rng.choice((30, 40, 50)),
                seed=rng.choice((0, 1)),
                notion=rng.choice(notions),
                measure=rng.choice(measures),
            )
        )
    return out


# ---------------------------------------------------------------------- #
# response envelopes
# ---------------------------------------------------------------------- #


def build_body(
    request: AnonymizeRequest,
    table: Table,
    result: Any,
    report: FallbackReport,
    primary_rung: str,
) -> dict[str, Any]:
    """The deterministic (cacheable) part of a success response.

    Everything here is a pure function of the request and the winning
    result: per-attempt timings are deliberately excluded (they live in
    the volatile ``meta`` block) so two runs that degrade identically
    produce byte-identical bodies.
    """
    degraded = report.winner is not None and report.winner != primary_rung
    return {
        "guarantee": {
            "requested_notion": request.notion,
            "notion": result.notion,
            "k": request.k,
            "quasi_identifiers": list(table.schema.attribute_names),
            "algorithm": result.algorithm,
            "winner": report.winner,
            "degraded": degraded,
        },
        "result": {
            "num_records": table.num_records,
            "measure": result.measure,
            "cost": result.cost,
            "rows": [list(row) for row in result.generalized.labels()],
            "stats": dict(result.stats),
        },
        "fallback": {
            "winner": report.winner,
            "attempts": [
                {"name": a.name, "status": a.status} for a in report.attempts
            ],
        },
    }


def ok_envelope(
    request: AnonymizeRequest,
    body: dict[str, Any],
    *,
    cache_hit: bool,
    backend: str | None = None,
) -> dict[str, Any]:
    """A success response around a (possibly cached) body.

    ``backend`` (the resolved execution backend) lives in the volatile
    ``meta`` block alongside ``cache_hit``: like a timing, it describes
    *how* this response was produced, never *what* it contains — bodies
    and cache keys are backend-independent by the equivalence contract.
    """
    meta: dict[str, Any] = {"cache_hit": cache_hit}
    if backend is not None:
        meta["backend"] = backend
    return {
        "v": ENVELOPE_VERSION,
        "status": "ok",
        "request": request.to_json(),
        "body": body,
        "meta": meta,
    }


def shed_envelope(
    request: AnonymizeRequest, shed: ServiceOverloaded
) -> dict[str, Any]:
    """A typed 429-style load-shed response (never a hang)."""
    return {
        "v": ENVELOPE_VERSION,
        "status": "shed",
        "request": request.to_json(),
        "shed": {
            "reason": shed.reason,
            "detail": str(shed),
            "retry_after": shed.retry_after,
        },
        "meta": {"cache_hit": False},
    }


def error_envelope(
    request: AnonymizeRequest | None, error: BaseException
) -> dict[str, Any]:
    """A typed failure response (bad request, infeasible k, exhaustion)."""
    return {
        "v": ENVELOPE_VERSION,
        "status": "error",
        "request": request.to_json() if request is not None else None,
        "error": {
            "type": type(error).__name__,
            "kind": _error_kind(error),
            "message": str(error),
        },
        "meta": {"cache_hit": False},
    }


def _error_kind(error: BaseException) -> str:
    if isinstance(error, RequestError):
        return "request"
    if isinstance(error, (AnonymityError, DatasetError)):
        return "infeasible"
    if isinstance(error, FallbackExhausted):
        return "exhausted"
    return "internal"


def http_status(envelope: dict[str, Any]) -> int:
    """The HTTP status code an envelope maps to."""
    status = envelope.get("status")
    if status == "ok":
        return 200
    if status == "shed":
        return 429
    kind = envelope.get("error", {}).get("kind", "internal")
    if kind in ("request", "infeasible"):
        return 400
    if kind == "exhausted":
        return 503
    return 500
