"""Crash-safe result cache keyed by content, not by request spelling.

The cache key is ``(dataset fingerprint, k, notion, measure)`` where
the fingerprint is a SHA-256 over the table's *content* — canonical
schema JSON (including every permissible generalization subset) plus
all rows.  Two requests that load byte-identical tables share a key no
matter how they were phrased; two tables differing in a single
permissible subset (a different QI configuration in Bettini et al.'s
sense) never collide, because serving a result computed under a
different QI configuration would be a silent guarantee violation.

Persistence rides the existing fsync-per-line
:class:`~repro.runtime.journal.Journal`: every stored body is durable
before the response leaves the service, a SIGKILL can tear at most the
final line (which :meth:`Journal.entries` tolerates), and a restarted
server replays the journal and serves every previously computed body
with zero recomputation.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any

from repro.errors import InjectedFault, ReproError
from repro.obs import count
from repro.runtime.deadline import checkpoint
from repro.runtime.journal import Journal
from repro.runtime.retry import RetryPolicy, Sleeper, call_with_retry
from repro.tabular.io import schema_to_dict
from repro.tabular.table import Table

#: Version of the cached-body journal records.
CACHE_VERSION = 1


def table_fingerprint(table: Table) -> str:
    """SHA-256 over the table's canonical schema + row content.

    The schema serialization includes attribute names, full value
    domains and every non-trivial permissible subset, so any change to
    the QI configuration — not just to the data — changes the key.
    """
    payload = {
        "schema": schema_to_dict(table.schema),
        "rows": table.rows,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(fingerprint: str, k: int, notion: str, measure: str) -> str:
    """The canonical cache key string for one anonymization cell."""
    return f"{fingerprint}|k={k}|notion={notion}|measure={measure}"


class ResultCache:
    """In-memory body cache with optional journal-backed durability.

    Parameters
    ----------
    journal:
        Durable backing store; ``None`` keeps the cache memory-only
        (drills and unit tests that do not exercise recovery).
    retry:
        Backoff policy for journal I/O (loads and stores retry through
        :func:`~repro.runtime.retry.call_with_retry`).
    sleeper:
        Injectable backoff sleeper, so tests never wall-clock sleep.
    """

    def __init__(
        self,
        journal: Journal | None = None,
        *,
        retry: RetryPolicy | None = None,
        sleeper: Sleeper = time.sleep,
    ) -> None:
        self.journal = journal
        self.retry = retry if retry is not None else RetryPolicy()
        self.sleeper = sleeper
        self._lock = threading.Lock()
        self._store: dict[str, dict[str, Any]] = {}
        self.recovered = 0  #: bodies replayed by the last load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def journal_bytes(self) -> int:
        """Current size of the backing journal file in bytes.

        The journal is append-only with no compaction (ROADMAP item 3),
        so this number only grows; surfacing it as the
        ``serve.cache.journal_bytes`` gauge makes that growth visible
        on ``/metricz`` instead of discovered at disk-full.  Returns 0
        for a memory-only cache or a journal not yet written.
        """
        if self.journal is None:
            return 0
        try:
            return int(self.journal.path.stat().st_size)
        except OSError:
            return 0

    def load(self) -> int:
        """Replay the journal into memory; returns the recovery count.

        Last write wins per key; a torn final line (crash mid-append)
        is skipped by the journal reader rather than failing recovery.
        """
        self.recovered = 0
        if self.journal is None:
            return 0

        def _read() -> list[tuple[dict[str, Any], dict[str, Any]]]:
            checkpoint("serve.cache.load")
            assert self.journal is not None
            return self.journal.entries()

        entries = call_with_retry(
            _read, policy=self.retry, sleep=self.sleeper
        )
        loaded: dict[str, dict[str, Any]] = {}
        for key, value in entries:
            cell = key.get("cache_key")
            body = value.get("body")
            if (
                value.get("cache_v") != CACHE_VERSION
                or not isinstance(cell, str)
                or not isinstance(body, dict)
            ):
                count("serve.cache.skipped_records")
                continue
            loaded[cell] = body
        with self._lock:
            self._store.update(loaded)
        self.recovered = len(loaded)
        count("serve.cache.recovered", self.recovered)
        return self.recovered

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached body for ``key``, or ``None`` (tallies hit/miss)."""
        with self._lock:
            body = self._store.get(key)
        count("serve.cache.hits" if body is not None else "serve.cache.misses")
        return body

    def put(self, key: str, body: dict[str, Any]) -> None:
        """Store a body in memory and (best-effort) durably.

        The in-memory store always succeeds; the journal append retries
        under the policy and, if it *still* fails, the failure is
        counted and swallowed — a cache that lost durability degrades
        to recomputing after a crash, which is strictly better than
        failing a request whose result is already in hand.
        """

        def _persist() -> None:
            checkpoint("serve.cache.store")
            if self.journal is not None:
                self.journal.append(
                    {"cache_key": key}, {"cache_v": CACHE_VERSION, "body": body}
                )

        with self._lock:
            self._store[key] = body
        try:
            call_with_retry(_persist, policy=self.retry, sleep=self.sleeper)
        except (OSError, InjectedFault, ReproError):
            count("serve.cache.store_failures")
