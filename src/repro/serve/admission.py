"""Admission control: bounded queueing, SLO triage, circuit breaking.

The service refuses work it cannot finish rather than letting latency
grow without bound.  Three typed shed reasons:

Both primitives also accept an *advisory* signal from the SLO monitor
(:meth:`AdmissionGate.advise_pressure`, :meth:`CircuitBreaker.advise`):
under confirmed burn the gate inflates its wait estimates (shedding
earlier) and the breaker halves its failure budget (tripping sooner).
Advice never admits work the un-advised gate would refuse — it only
tightens — and it is opt-in end to end (``ServiceConfig.slo_advisory``),
so the default service is bit-for-bit the pre-advisory one.

``queue_full``
    The bounded wait queue is at capacity — depth alone makes the SLO
    unmeetable for a newcomer.
``deadline_unmeetable``
    Queue depth times the EWMA service time already exceeds the
    request's latency budget; admitting it would burn compute on an
    answer the client will have abandoned.
``breaker_open``
    The circuit breaker tripped on consecutive backend failures and is
    cooling down; a half-open probe re-tests the backend before the
    gate fully reopens.

Every clock here is injectable (:data:`~repro.obs.Clock`), so shed and
breaker transitions are unit-testable with a fake clock and no test
ever sleeps wall-clock time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ReproError, ServiceOverloaded
from repro.obs import Clock


@dataclass(frozen=True)
class GateStats:
    """A point-in-time view of the admission gate."""

    queued: int  #: requests waiting for an execution slot
    inflight: int  #: requests currently executing
    ewma_seconds: float  #: smoothed observed service time


class BreakerPermit:
    """One admission through a :class:`CircuitBreaker`, resolved once.

    :meth:`success` / :meth:`failure` record backend evidence;
    :meth:`release` hands back a half-open probe the request never
    resolved (it exited before exercising the backend — a cache hit, a
    shed, invalid input), so the breaker stays half-open and the *next*
    request can probe.  Resolution is once-only — after the first call
    the others are no-ops — so callers put ``release()`` in a
    ``finally`` as a backstop without fear of double-counting.
    """

    __slots__ = ("_breaker", "is_probe", "_resolved")

    def __init__(self, breaker: "CircuitBreaker", is_probe: bool) -> None:
        self._breaker = breaker
        self.is_probe = is_probe  #: whether this permit holds the half-open probe
        self._resolved = False

    def success(self) -> None:
        """The backend call succeeded: reclose the breaker."""
        if not self._resolved:
            self._resolved = True
            self._breaker.record_success()

    def failure(self) -> None:
        """The backend call failed: count it against the breaker."""
        if not self._resolved:
            self._resolved = True
            self._breaker.record_failure()

    def release(self) -> None:
        """The backend was never exercised: return the probe, if held."""
        if not self._resolved:
            self._resolved = True
            if self.is_probe:
                self._breaker._release_probe()


class CircuitBreaker:
    """Classic closed / open / half-open breaker on an injectable clock.

    ``failure_threshold`` consecutive backend failures open the
    breaker; after ``reset_after`` seconds a single half-open probe is
    admitted — success recloses, failure reopens the cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 30.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after <= 0:
            raise ReproError(f"reset_after must be positive, got {reset_after}")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._advised_pressure = False

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half-open``."""
        with self._lock:
            return self._state

    def acquire(self) -> BreakerPermit | None:
        """Admit a request, or ``None`` while the breaker is open.

        The returned permit must be resolved exactly once on *every*
        exit path (``success`` / ``failure`` / ``release`` in a
        ``finally``): an unresolved half-open probe would block all
        traffic until restart.
        """
        with self._lock:
            if self._state == "open":
                if self.clock() - self._opened_at >= self.reset_after:
                    self._state = "half-open"
                    self._probing = False
                else:
                    return None
            if self._state == "half-open":
                # half-open: exactly one probe at a time.
                if self._probing:
                    return None
                self._probing = True
                return BreakerPermit(self, is_probe=True)
            return BreakerPermit(self, is_probe=False)

    def allow(self) -> bool:
        """Whether a request may reach the backend right now.

        Prefer :meth:`acquire` where the request has multiple exit
        paths — a half-open probe admitted here can only be resolved by
        ``record_success`` / ``record_failure``.
        """
        return self.acquire() is not None

    def _release_probe(self) -> None:
        """Return an unresolved half-open probe (permit-only entry point)."""
        with self._lock:
            if self._state == "half-open":
                self._probing = False

    def record_success(self) -> None:
        """The backend call succeeded: reclose and reset the count."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def advise(self, pressure: bool) -> None:
        """Advisory from the SLO monitor: halve the failure budget.

        Under pressure the effective threshold drops to
        ``max(1, failure_threshold // 2)`` — the breaker trips sooner
        while the service is already burning its error budget.  Advice
        is level-triggered (set on breach, cleared on recovery) and
        never widens the budget past the configured threshold.
        """
        with self._lock:
            self._advised_pressure = bool(pressure)

    def _effective_threshold_locked(self) -> int:
        if self._advised_pressure:
            return max(1, self.failure_threshold // 2)
        return self.failure_threshold

    def record_failure(self) -> None:
        """The backend call failed: count it, trip when over threshold."""
        with self._lock:
            self._failures += 1
            if (
                self._state == "half-open"
                or self._failures >= self._effective_threshold_locked()
            ):
                self._state = "open"
                self._opened_at = self.clock()
                self._probing = False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe would be admitted."""
        with self._lock:
            if self._state != "open":
                return 0.0
            remaining = self.reset_after - (self.clock() - self._opened_at)
            return max(0.0, remaining)


class AdmissionGate:
    """Bounded two-stage gate: a wait queue in front of execution slots.

    ``try_admit`` is the cheap, lock-only triage step (shed decisions
    never block); ``enter`` then waits — bounded by the request's own
    budget — for one of ``max_inflight`` execution slots.  Observed
    service times feed an EWMA used to estimate whether a newcomer's
    deadline is already unmeetable from queue depth alone.
    """

    def __init__(
        self,
        max_inflight: int = 4,
        max_queue: int = 16,
        expected_seconds: float = 0.5,
        ewma_alpha: float = 0.3,
        clock: Clock = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ReproError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ReproError(f"max_queue must be >= 0, got {max_queue}")
        if expected_seconds <= 0:
            raise ReproError(
                f"expected_seconds must be positive, got {expected_seconds}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ReproError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.ewma_alpha = ewma_alpha
        self.clock = clock
        self._cond = threading.Condition()
        self._queued = 0
        self._inflight = 0
        self._ewma = expected_seconds
        self._pressure = 1.0

    def stats(self) -> GateStats:
        """Current depth and smoothed service time."""
        with self._cond:
            return GateStats(self._queued, self._inflight, self._ewma)

    def estimated_wait(self) -> float:
        """EWMA-based estimate of a newcomer's queueing delay."""
        with self._cond:
            return self._estimated_wait_locked()

    def advise_pressure(self, factor: float) -> None:
        """Advisory from the SLO monitor: inflate wait estimates.

        ``factor`` multiplies the EWMA-based delay estimate used by
        ``deadline_unmeetable`` triage; it is clamped to ``>= 1.0`` so
        advice can only make admission more conservative, never admit
        work the un-advised gate would shed.  ``1.0`` clears it.
        """
        with self._cond:
            self._pressure = max(1.0, float(factor))

    def _estimated_wait_locked(self) -> float:
        backlog = self._queued + max(
            0, self._inflight - self.max_inflight + 1
        )
        return backlog * self._ewma * self._pressure / self.max_inflight

    def try_admit(self, budget: float | None) -> None:
        """Admit into the wait queue, or raise a typed shed.

        Raises
        ------
        ServiceOverloaded
            With reason ``queue_full`` when every execution slot is
            busy *and* the queue is at capacity (a free slot always
            admits, so ``max_queue=0`` means "no waiting", not "no
            serving"), or ``deadline_unmeetable`` when the estimated
            queueing delay plus one EWMA service time already exceeds
            ``budget``.
        """
        with self._cond:
            if (
                self._inflight >= self.max_inflight
                and self._queued >= self.max_queue
            ):
                raise ServiceOverloaded(
                    f"wait queue is full ({self._queued}/{self.max_queue})",
                    reason="queue_full",
                    retry_after=self._estimated_wait_locked() + self._ewma,
                )
            estimate = self._estimated_wait_locked() + self._ewma
            if budget is not None and estimate > budget:
                raise ServiceOverloaded(
                    f"estimated completion {estimate:.3f}s exceeds the "
                    f"request budget {budget:.3f}s "
                    f"(queued={self._queued}, inflight={self._inflight})",
                    reason="deadline_unmeetable",
                    retry_after=self._estimated_wait_locked(),
                )
            self._queued += 1

    def enter(self, timeout: float | None = None) -> bool:
        """Move from the queue into an execution slot (may block).

        Returns ``False`` when no slot freed up within ``timeout``
        seconds; the queue reservation is released either way, so a
        caller that gets ``False`` simply sheds.
        """
        with self._cond:
            deadline = None if timeout is None else self.clock() + timeout
            while self._inflight >= self.max_inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - self.clock()
                    if remaining <= 0:
                        self._queued -= 1
                        self._cond.notify()
                        return False
                self._cond.wait(remaining)
            self._queued -= 1
            self._inflight += 1
            return True

    def cancel(self) -> None:
        """Release a queue reservation without executing (e.g. a fault)."""
        with self._cond:
            self._queued -= 1
            self._cond.notify()

    def leave(self, service_seconds: float) -> None:
        """Release an execution slot and fold the timing into the EWMA."""
        with self._cond:
            self._inflight -= 1
            if service_seconds > 0:
                self._ewma += self.ewma_alpha * (service_seconds - self._ewma)
            self._cond.notify()
