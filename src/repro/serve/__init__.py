"""repro.serve — the fault-hardened anonymization service.

A zero-dependency (stdlib ``http.server`` + threads) long-lived server
around :func:`repro.core.api.anonymize`, hardened end to end:

- bounded admission with typed load shedding
  (:mod:`repro.serve.admission`),
- per-request deadlines threaded into the runtime checkpoint sites,
- seeded retry + circuit breaker over the
  :mod:`repro.runtime.fallback` degradation chain, with the winning
  rung reported in the response's guarantee block
  (:mod:`repro.serve.protocol`),
- a crash-safe result cache keyed by
  ``(dataset fingerprint, k, notion, measure)`` persisted through the
  fsync-per-line journal (:mod:`repro.serve.cache`),
- a chaos drill proving byte-identical recovery with zero
  recomputation (:mod:`repro.serve.drill`),
- opt-in live telemetry (``ServiceConfig.live_telemetry``): a
  sliding-window registry behind ``/metricz?window=N``, SLO burn-rate
  monitors surfaced in ``/healthz`` (and, with ``slo_advisory``,
  advising the gate and breaker), and a flight recorder behind
  ``/debugz`` that dumps atomically on the first breach edge.

Run it with ``repro-anon serve``; see docs/serving.md.
"""

from repro.serve.admission import (
    AdmissionGate,
    BreakerPermit,
    CircuitBreaker,
    GateStats,
)
from repro.serve.cache import (
    CACHE_VERSION,
    ResultCache,
    cache_key,
    table_fingerprint,
)
from repro.serve.drill import (
    SERVE_SITES,
    DrillCheck,
    DrillReport,
    canonical_body,
    run_chaos_drill,
)
from repro.serve.http import (
    MAX_BODY_BYTES,
    ServiceHTTPServer,
    serve_http,
)
from repro.serve.protocol import (
    ENVELOPE_VERSION,
    VALID_NOTIONS,
    AnonymizeRequest,
    build_body,
    error_envelope,
    http_status,
    ok_envelope,
    request_mix,
    shed_envelope,
)
from repro.serve.service import (
    AnonymizationService,
    ServiceConfig,
    chain_for,
    default_loader,
)

__all__ = [
    "AdmissionGate",
    "AnonymizationService",
    "AnonymizeRequest",
    "BreakerPermit",
    "CACHE_VERSION",
    "CircuitBreaker",
    "DrillCheck",
    "DrillReport",
    "ENVELOPE_VERSION",
    "GateStats",
    "MAX_BODY_BYTES",
    "ResultCache",
    "SERVE_SITES",
    "ServiceConfig",
    "ServiceHTTPServer",
    "VALID_NOTIONS",
    "build_body",
    "cache_key",
    "canonical_body",
    "chain_for",
    "default_loader",
    "error_envelope",
    "http_status",
    "ok_envelope",
    "request_mix",
    "run_chaos_drill",
    "serve_http",
    "shed_envelope",
    "table_fingerprint",
]
