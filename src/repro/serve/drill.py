"""The chaos drill: faults at every serve site, crash, recover, verify.

:func:`run_chaos_drill` is the executable form of the serving layer's
robustness contract:

1. **Reference pass** — a pristine service answers a deterministic
   request mix; every response must be ``ok``.
2. **Faulted pass** — a journal-backed service answers the same mix
   under a :class:`~repro.runtime.FaultPlan` injecting one fault at
   *every* ``serve.*`` site; the seeded retries must absorb all of
   them and every body must be byte-identical to the reference.
3. **Crash + recovery** — a brand-new service (the in-memory state a
   SIGKILL destroys) replays the same journal, serves the mix again,
   and must produce byte-identical bodies with **zero** recomputed
   cells (the ``serve.execute.computed`` counter stays at 0).
4. **Overload** — with the gate saturated, requests must come back as
   *typed* sheds (``deadline_unmeetable``, ``queue_full``,
   ``breaker_open``) — never a hang, never a silently degraded
   guarantee.
5. **Live telemetry** — a service with windowed telemetry on a ticking
   fake clock suffers a synthetic latency regression; the SLO monitor
   must count exactly one breach edge, write exactly one atomic flight
   dump, keep the request mix in the flight ring, and degrade
   ``/healthz`` from ``ok``.

``tools/serve_smoke.py`` runs the same contract over real HTTP with a
real SIGKILL; this in-process version is deterministic enough for the
test suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import default_objectives
from repro.obs.windows import WindowedRegistry
from repro.runtime.faults import FaultPlan, fault_scope
from repro.runtime.journal import Journal
from repro.runtime.retry import RetryPolicy
from repro.serve.cache import ResultCache
from repro.serve.protocol import request_mix
from repro.serve.service import AnonymizationService, ServiceConfig

#: Every fault site the serving layer registers.
SERVE_SITES = (
    "serve.accept",
    "serve.enqueue",
    "serve.execute",
    "serve.cache.load",
    "serve.cache.store",
)


@dataclass(frozen=True)
class DrillCheck:
    """One assertion of the drill, with its evidence."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class DrillReport:
    """All checks of one drill run."""

    checks: list[DrillCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return all(check.ok for check in self.checks)

    def format(self) -> str:
        """Human-readable pass/fail listing."""
        lines = [f"chaos drill: {'PASS' if self.ok else 'FAIL'}"]
        for check in self.checks:
            mark = "ok  " if check.ok else "FAIL"
            line = f"  [{mark}] {check.name}"
            if check.detail:
                line += f"  {check.detail}"
            lines.append(line)
        return "\n".join(lines)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        """Append one check."""
        self.checks.append(DrillCheck(name, ok, detail))


def canonical_body(envelope: dict[str, Any]) -> str:
    """The byte-stable serialization of a response's cacheable body."""
    return json.dumps(envelope.get("body"), sort_keys=True, separators=(",", ":"))


def _no_sleep(_seconds: float) -> None:
    """Drill sleeper: backoff delays are schedule-checked, not waited."""


class _TickClock:
    """Fake monotonic clock: every read advances by a fixed step.

    Any code path that reads time (timers, deadlines, window buckets)
    therefore observes strictly increasing, fully deterministic
    timestamps — and a request whose handling touches the clock a few
    hundred times appears to take a few seconds, which is the synthetic
    latency regression phase 5 relies on.
    """

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _drill_config() -> ServiceConfig:
    return ServiceConfig(
        max_inflight=2,
        max_queue=8,
        default_timeout=60.0,
        retry=RetryPolicy(attempts=3, base_delay=0.0, seed=0),
    )


def _serve_mix(
    service: AnonymizationService, mix: list[Any]
) -> tuple[list[str], list[str]]:
    """(statuses, canonical bodies) of the mix served in order."""
    statuses: list[str] = []
    bodies: list[str] = []
    for request in mix:
        envelope = service.handle(request.to_json())
        statuses.append(envelope["status"])
        bodies.append(canonical_body(envelope))
    return statuses, bodies


def run_chaos_drill(
    journal_path: str | Path, *, requests: int = 6, seed: int = 0
) -> DrillReport:
    """Run the full drill; see the module docstring for the phases.

    ``journal_path`` must be a writable location in a fresh directory —
    the drill owns the file.
    """
    report = DrillReport()
    mix = request_mix(seed, requests)
    journal_path = Path(journal_path)

    # Phase 1: undisturbed reference (memory-only cache).
    reference = AnonymizationService(_drill_config(), sleeper=_no_sleep)
    ref_statuses, ref_bodies = _serve_mix(reference, mix)
    report.record(
        "reference.all_ok",
        all(status == "ok" for status in ref_statuses),
        f"statuses={sorted(set(ref_statuses))}",
    )

    # Phase 2: same mix under one injected fault at every serve site.
    plan = FaultPlan()
    for site in SERVE_SITES:
        plan.inject(site, times=1)
    faulted = AnonymizationService(
        _drill_config(),
        ResultCache(Journal(journal_path), sleeper=_no_sleep),
        sleeper=_no_sleep,
    )
    with fault_scope(plan):
        faulted.recover()  # fires (and absorbs) serve.cache.load
        faulted_statuses, faulted_bodies = _serve_mix(faulted, mix)
    fired_sites = {site for site, _ in plan.fired}
    report.record(
        "faulted.all_sites_fired",
        fired_sites == set(SERVE_SITES),
        f"fired={sorted(fired_sites)}",
    )
    report.record(
        "faulted.all_ok",
        all(status == "ok" for status in faulted_statuses),
        f"statuses={sorted(set(faulted_statuses))}",
    )
    report.record(
        "faulted.byte_identical",
        faulted_bodies == ref_bodies,
        "responses under injected faults match the reference",
    )

    # Phase 3: the crash. A new service object is exactly the state that
    # survives a SIGKILL — nothing but the journal on disk.
    recovered = AnonymizationService(
        _drill_config(),
        ResultCache(Journal(journal_path), sleeper=_no_sleep),
        sleeper=_no_sleep,
    )
    loaded = recovered.recover()
    rec_statuses, rec_bodies = _serve_mix(recovered, mix)
    computed = recovered.registry.counter("serve.execute.computed")
    report.record(
        "recovered.cache_loaded",
        loaded > 0,
        f"recovered {loaded} bodies from the journal",
    )
    report.record(
        "recovered.all_ok",
        all(status == "ok" for status in rec_statuses),
        f"statuses={sorted(set(rec_statuses))}",
    )
    report.record(
        "recovered.byte_identical",
        rec_bodies == ref_bodies,
        "post-restart responses match the reference",
    )
    report.record(
        "recovered.zero_recompute",
        computed == 0,
        f"serve.execute.computed={computed}",
    )

    # Phase 4: overload must shed with types, not hang.
    slow = AnonymizationService(
        ServiceConfig(
            max_inflight=1,
            max_queue=1,
            expected_seconds=10.0,
            retry=RetryPolicy(attempts=3, base_delay=0.0, seed=0),
        ),
        sleeper=_no_sleep,
    )
    probe = mix[0].to_json()
    # Saturate the single execution slot and the one queue seat.
    slow.gate.try_admit(None)
    slow.gate.enter(timeout=0.0)
    tight = dict(probe, timeout=0.5)
    unmeetable = slow.handle(tight)
    report.record(
        "overload.deadline_unmeetable",
        unmeetable["status"] == "shed"
        and unmeetable["shed"]["reason"] == "deadline_unmeetable",
        f"got {unmeetable.get('shed', unmeetable.get('status'))}",
    )
    slow.gate.try_admit(None)  # occupy the queue seat
    full = slow.handle(probe)
    report.record(
        "overload.queue_full",
        full["status"] == "shed" and full["shed"]["reason"] == "queue_full",
        f"got {full.get('shed', full.get('status'))}",
    )
    for _ in range(slow.config.breaker_threshold):
        slow.breaker.record_failure()
    broken = slow.handle(probe)
    report.record(
        "overload.breaker_open",
        broken["status"] == "shed"
        and broken["shed"]["reason"] == "breaker_open"
        and broken["shed"]["retry_after"] > 0,
        f"got {broken.get('shed', broken.get('status'))}",
    )

    # Phase 5: live telemetry under a synthetic latency regression.
    # Every clock read ticks 10 ms, so each request "takes" far longer
    # than the 50 ms p99 objective — the first request must cross the
    # breach edge exactly once.
    flight_path = journal_path.parent / "flight_dump.json"
    live = AnonymizationService(
        ServiceConfig(
            max_inflight=2,
            max_queue=8,
            default_timeout=600.0,
            retry=RetryPolicy(attempts=3, base_delay=0.0, seed=0),
            live_telemetry=True,
            flight_journal=str(flight_path),
            window_horizon_seconds=600.0,
            objectives=default_objectives(latency_target=0.05),
        ),
        clock=_TickClock(step=0.01),
        sleeper=_no_sleep,
    )
    live_requests = mix[:3]
    for request in live_requests:
        live.handle(request.to_json())
    report.record(
        "telemetry.breach_counted",
        live.registry.counter("serve.slo.breaches") >= 1,
        f"serve.slo.breaches={live.registry.counter('serve.slo.breaches')}",
    )
    report.record(
        "telemetry.single_flight_dump",
        live.flight_dumps == 1 and flight_path.is_file(),
        f"flight_dumps={live.flight_dumps}, file={flight_path.is_file()}",
    )
    assert isinstance(live.registry, WindowedRegistry)
    window = live.registry.window_snapshot(60.0)["window"]
    report.record(
        "telemetry.window_counters_nonzero",
        window["counters"].get("serve.requests", 0) >= 1,
        f"window counters={sorted(window['counters'])}",
    )
    assert live.flight is not None
    report.record(
        "telemetry.flight_ring_populated",
        len(live.flight) >= len(live_requests),
        f"flight entries={len(live.flight)}",
    )
    report.record(
        "telemetry.health_degraded",
        live.health()["status"] in ("warn", "breach"),
        f"healthz status={live.health()['status']!r}",
    )
    return report
