"""Stdlib HTTP transport around :class:`AnonymizationService`.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` only — the whole
server is zero-dependency.  Endpoints:

``POST /anonymize``
    JSON request body → response envelope.  200 on success, 400 on bad
    or infeasible requests, 429 (with ``Retry-After``) on typed load
    sheds, 503 when the degradation chain is exhausted.
``GET /healthz``
    Gate depth, breaker state and cache size; with live telemetry on,
    ``status`` carries the worst SLO standing (ok/warn/breach) plus a
    per-objective ``slo`` block.
``GET /metricz``
    The service registry's metrics snapshot (counters, latency
    histograms) — the smoke drill reads ``serve.execute.computed``
    here to prove zero recomputation after a crash.  Health gauges
    (gate depth, breaker state, cache entries, journal bytes) are
    refreshed into the snapshot so one scrape suffices.
    ``?window=N`` (live telemetry only) returns the v2 windowed
    snapshot for the last N seconds; ``?format=text`` — or an
    ``Accept: text/plain`` header — selects the Prometheus text
    exposition instead of JSON.
``GET /debugz``
    The flight recorder's ring of recent request summaries (live
    telemetry only; 400 when disabled).

Request threads spawned by the server cannot see the main thread's
``ContextVar`` scopes; the service installs its own registry/tracer
scopes inside :meth:`AnonymizationService.handle`, so observability
works identically over HTTP and in-process.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.obs import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.windows import WindowedRegistry
from repro.serve.protocol import http_status
from repro.serve.service import AnonymizationService

#: Cap on accepted request bodies (a service guarding its memory
#: should not buffer arbitrarily large payloads).
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service instance."""

    daemon_threads = True  #: in-flight threads die with the process

    def __init__(
        self, address: tuple[str, int], service: AnonymizationService
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        """The bound port (useful with port 0)."""
        return int(self.server_address[1])


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        if self.path != "/anonymize":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply(400, {"error": "missing or oversized request body"})
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"request body is not JSON: {exc}"})
            return
        envelope = self.server.service.handle(payload)
        status = http_status(envelope)
        headers = {}
        if status == 429:
            retry_after = envelope.get("shed", {}).get("retry_after", 0.0)
            headers["Retry-After"] = f"{max(retry_after, 0.0):.3f}"
        self._reply(status, envelope, headers)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        if parts.path == "/healthz":
            self._reply(200, self.server.service.health())
        elif parts.path == "/metricz":
            self._get_metricz(query)
        elif parts.path == "/debugz":
            flight = self.server.service.flight
            if flight is None:
                self._reply(
                    400,
                    {
                        "error": "flight recorder disabled; start the "
                        "service with live telemetry enabled"
                    },
                )
            else:
                self._reply(200, flight.snapshot())
        else:
            self._reply(404, {"error": f"unknown path {parts.path!r}"})

    def _get_metricz(self, query: dict[str, list[str]]) -> None:
        service = self.server.service
        service.refresh_health_gauges()
        window_arg = query.get("window", [None])[0]
        if window_arg is None:
            snapshot = service.registry.snapshot()
        else:
            registry = service.registry
            if not isinstance(registry, WindowedRegistry):
                self._reply(
                    400,
                    {
                        "error": "?window= needs a windowed registry; "
                        "start the service with live telemetry enabled"
                    },
                )
                return
            try:
                seconds = float(window_arg)
            except ValueError:
                self._reply(
                    400, {"error": f"invalid window {window_arg!r}"}
                )
                return
            if seconds <= 0:
                self._reply(
                    400, {"error": "window must be positive seconds"}
                )
                return
            snapshot = registry.window_snapshot(seconds)
        fmt = query.get("format", [None])[0]
        accept = self.headers.get("Accept", "")
        as_text = fmt == "text" or (
            fmt is None
            and "text/plain" in accept
            and "application/json" not in accept
        )
        if fmt not in (None, "text", "json"):
            self._reply(400, {"error": f"unknown format {fmt!r}"})
            return
        if as_text:
            self._reply_text(200, render_prometheus(snapshot))
        else:
            self._reply(200, snapshot)

    def _reply(
        self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._reply_bytes(status, body, "application/json", headers)

    def _reply_text(self, status: int, text: str) -> None:
        self._reply_bytes(
            status, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE, None
        )

    def _reply_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging goes through the service's metrics instead


def serve_http(
    service: AnonymizationService, host: str = "127.0.0.1", port: int = 8077
) -> ServiceHTTPServer:
    """Bind (but do not start) the HTTP server for ``service``.

    Returns the bound server; the caller runs ``serve_forever()`` (the
    CLI) or drives it from a thread (tests).  ``port=0`` binds an
    ephemeral port, readable via :attr:`ServiceHTTPServer.port`.
    """
    return ServiceHTTPServer((host, port), service)
