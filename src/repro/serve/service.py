"""The anonymization service: admission → cache → fallback → respond.

One :meth:`AnonymizationService.handle` call is the whole request
lifecycle, independent of any transport (the HTTP layer, the chaos
drill and the serve bench all drive it directly):

1. **accept** — parse/validate the payload (fault site ``serve.accept``
   behind seeded retry).
2. **admit** — circuit breaker (a once-only
   :class:`~repro.serve.admission.BreakerPermit`, released on every
   exit path so a half-open probe can never leak), then the bounded
   :class:`~repro.serve.admission.AdmissionGate`; overload yields a
   typed shed envelope, never a hang.
3. **cache** — fingerprint the loaded table and look up
   ``(fingerprint, k, notion, measure)``; hits serve the stored body
   verbatim with zero recomputation.
4. **execute** — run the :mod:`repro.runtime.fallback` degradation
   chain under the request's :class:`~repro.runtime.Deadline`, guarded
   by retry and the breaker; the winning rung lands in the response's
   guarantee block.
5. **store** — persist the deterministic body through the crash-safe
   cache journal *after* the deadline scope is exited, so a result in
   hand is never discarded because storing it ran past the SLO.

Because HTTP requests arrive on server threads (where the main
thread's ``ContextVar`` scopes are invisible), the service owns its
:class:`~repro.obs.MetricsRegistry`/:class:`~repro.obs.Tracer` and
enters both scopes inside ``handle`` — per-request spans and latency
histograms work identically in-process and under ``ThreadingHTTPServer``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.backend import resolve_backend
from repro.datasets.registry import load as load_dataset
from repro.errors import (
    FallbackExhausted,
    ReproError,
    RequestError,
    ServiceOverloaded,
)
from repro.obs import (
    Clock,
    FlightRecorder,
    MetricsRegistry,
    NullTracer,
    SLOMonitor,
    SLObjective,
    Tracer,
    WindowedRegistry,
    count,
    default_objectives,
    metrics_scope,
    observe,
    span,
    trace_scope,
    worst_status,
)
from repro.runtime.deadline import Deadline, Timer, checkpoint, limit_scope
from repro.runtime.fallback import (
    DEFAULT_CHAIN,
    FallbackOutcome,
    Rung,
    run_with_fallback,
)
from repro.runtime.retry import RetryPolicy, Sleeper, call_with_retry
from repro.serve.admission import AdmissionGate, BreakerPermit, CircuitBreaker
from repro.serve.cache import ResultCache, cache_key, table_fingerprint
from repro.serve.protocol import (
    AnonymizeRequest,
    build_body,
    error_envelope,
    ok_envelope,
    shed_envelope,
)
from repro.tabular.table import Table

#: Resolves a request to the table it names (injectable for tests that
#: serve hand-built tables with custom QI configurations).
TableLoader = Callable[[AnonymizeRequest], Table]


def default_loader(request: AnonymizeRequest) -> Table:
    """Load the registry dataset a request names."""
    return load_dataset(request.dataset, n=request.n, seed=request.seed)


@dataclass(frozen=True)
class ServiceConfig:
    """Every SLO knob in one place (see docs/serving.md)."""

    max_inflight: int = 4  #: concurrent executions
    max_queue: int = 16  #: bounded wait queue depth
    default_timeout: float = 30.0  #: per-request budget when unset, seconds
    rung_timeout: float | None = None  #: per-rung cap inside the chain
    expected_seconds: float = 0.5  #: EWMA seed for shed estimation
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(attempts=3, base_delay=0.01, seed=0)
    )
    breaker_threshold: int = 5  #: consecutive failures that trip the breaker
    breaker_reset: float = 30.0  #: breaker cooldown, seconds
    # -- live telemetry (repro.obs.live); all off by default so the
    # -- stock service stays byte-identical to the pre-telemetry one.
    live_telemetry: bool = False  #: windowed registry + SLOs + flight ring
    slo_advisory: bool = False  #: let SLO breaches tighten gate/breaker
    window_bucket_seconds: float = 1.0  #: window resolution
    window_horizon_seconds: float = 300.0  #: how far back windows reach
    flight_capacity: int = 256  #: flight-recorder ring size
    flight_journal: str | None = None  #: breach dumps land here (atomic)
    objectives: tuple[SLObjective, ...] = field(
        default_factory=default_objectives
    )  #: SLOs evaluated per request when live


def chain_for(notion: str) -> tuple[Rung, ...]:
    """The degradation chain serving a requested notion.

    The first rung targets the notion itself; the tail reuses the
    plain-k rungs of :data:`~repro.runtime.fallback.DEFAULT_CHAIN`
    (agglomerative → mondrian → suppress), each of which still
    satisfies k-anonymity — the guarantee block records the served
    notion so degradation is visible, never silent.
    """
    if notion == "kk":
        return DEFAULT_CHAIN
    tail = tuple(rung for rung in DEFAULT_CHAIN if rung.notion == "k")
    if notion == "k":
        return tail
    return (Rung(notion, notion=notion),) + tail


class AnonymizationService:
    """Transport-independent request handler (see the module docstring).

    Parameters
    ----------
    config:
        SLO knobs; defaults are sized for interactive use.
    cache:
        Result cache (journal-backed for crash recovery); defaults to
        a memory-only cache.
    loader:
        Request → table resolver; injectable for tests.
    clock:
        Monotonic clock driving deadlines, the breaker and the gate.
    sleeper:
        Retry-backoff sleeper; injectable so tests never sleep.
    registry / tracer:
        Service-owned observability sinks, entered per request (the
        server's worker threads cannot see caller ``ContextVar``
        scopes, so the service carries its own).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        cache: ResultCache | None = None,
        *,
        loader: TableLoader = default_loader,
        clock: Clock = time.monotonic,
        sleeper: Sleeper = time.sleep,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.cache = cache if cache is not None else ResultCache(
            retry=self.config.retry, sleeper=sleeper
        )
        self.loader = loader
        self.clock = clock
        self.sleeper = sleeper
        if registry is not None:
            self.registry = registry
        elif self.config.live_telemetry:
            self.registry = WindowedRegistry(
                clock,
                bucket_seconds=self.config.window_bucket_seconds,
                horizon_seconds=self.config.window_horizon_seconds,
            )
        else:
            self.registry = MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        # Live telemetry: SLO monitor + flight recorder, only when the
        # config opts in *and* the registry can answer window queries.
        self.flight: FlightRecorder | None = None
        self.slo: SLOMonitor | None = None
        if self.config.live_telemetry:
            self.flight = FlightRecorder(
                self.config.flight_capacity, clock=clock
            )
            if isinstance(self.registry, WindowedRegistry):
                self.slo = SLOMonitor(self.config.objectives, self.registry)
        self.flight_dumps = 0  #: breach-edge dumps written so far
        self._slo_status = "ok"
        self._slo_lock = threading.Lock()
        self.gate = AdmissionGate(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            expected_seconds=self.config.expected_seconds,
            clock=clock,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_after=self.config.breaker_reset,
            clock=clock,
        )
        self._ids = itertools.count(1)
        self._fingerprints: dict[tuple[str, int | None, int], str] = {}
        self._fp_lock = threading.Lock()

    # ----------------------------------------------------------------- #

    def recover(self) -> int:
        """Replay the cache journal (on restart); returns bodies loaded."""
        with metrics_scope(self.registry), trace_scope(self.tracer):
            with span("serve.recover"):
                return self.cache.load()

    def handle(self, payload: Any) -> dict[str, Any]:
        """Serve one request payload; always returns an envelope.

        ``payload`` is the decoded JSON request body (or an
        :class:`AnonymizeRequest` directly).  Never raises for
        request-shaped failures — overload, bad input, infeasible
        parameters and exhausted chains all come back as typed
        envelopes.
        """
        with metrics_scope(self.registry), trace_scope(self.tracer):
            count("serve.requests")
            timer = Timer(clock=self.clock)
            with timer, span("serve.request"):
                envelope = self._accept_and_serve(payload)
            envelope["meta"]["elapsed_seconds"] = timer.seconds
            observe("serve.request_seconds", timer.seconds)
            count(f"serve.status.{envelope['status']}")
            if self.flight is not None:
                self._record_flight(envelope, timer.seconds)
            if self.slo is not None:
                self._observe_slo()
            return envelope

    def stats(self) -> dict[str, Any]:
        """Health snapshot: gate depth, breaker state, cache size."""
        gate = self.gate.stats()
        return {
            "queued": gate.queued,
            "inflight": gate.inflight,
            "ewma_seconds": gate.ewma_seconds,
            "breaker": self.breaker.state,
            "cached_bodies": len(self.cache),
        }

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` payload: stats plus SLO standing when live.

        With live telemetry off this is exactly the historical payload
        (``status: ok`` + :meth:`stats`); when on, ``status`` becomes
        the worst current SLO status (``ok``/``warn``/``breach``) and a
        per-objective ``slo`` block rides along.
        """
        payload: dict[str, Any] = {"status": "ok", **self.stats()}
        if self.slo is not None:
            results = self.slo.evaluate()
            payload["status"] = worst_status(results)
            payload["slo"] = [result.to_json() for result in results]
        return payload

    def slo_status(self) -> str:
        """Worst SLO status as of the last handled request."""
        if self.slo is None:
            return "ok"
        with self._slo_lock:
            return self._slo_status

    def refresh_health_gauges(self) -> None:
        """Mirror ``/healthz`` state into registry gauges.

        Called before every ``/metricz`` snapshot so one scrape carries
        both workload counters and service health — gate depth, breaker
        state (0 closed / 1 half-open / 2 open), cache entries, and the
        cache journal's unbounded on-disk size (ROADMAP item 3).
        """
        gate = self.gate.stats()
        breaker_states = {"closed": 0.0, "half-open": 1.0, "open": 2.0}
        registry = self.registry
        registry.set_gauge(
            "serve.gate.depth", float(gate.queued + gate.inflight)
        )
        registry.set_gauge(
            "serve.breaker.state",
            breaker_states.get(self.breaker.state, 2.0),
        )
        registry.set_gauge("serve.cache.entries", float(len(self.cache)))
        registry.set_gauge(
            "serve.cache.journal_bytes", float(self.cache.journal_bytes())
        )

    def _record_flight(
        self, envelope: dict[str, Any], seconds: float
    ) -> None:
        """Append this request's summary to the flight ring."""
        assert self.flight is not None
        status = envelope.get("status", "unknown")
        summary: dict[str, Any] = {
            "status": status,
            "elapsed_seconds": seconds,
            "request_id": envelope.get("meta", {}).get("request_id"),
        }
        if "error" in envelope:
            summary["error"] = envelope["error"]
        if "shed" in envelope:
            summary["shed"] = envelope["shed"]
        kind = "error" if status == "error" else "request"
        self.flight.record(kind, summary)

    def _observe_slo(self) -> None:
        """Evaluate SLOs after a request; act on the breach *edge*.

        The ok→breach transition (detected under a lock, so concurrent
        requests see exactly one edge) counts a breach, records it in
        the flight ring and — if a dump path is configured — writes one
        atomic flight dump.  Level-triggered advisory pressure is then
        applied to the gate and breaker when ``slo_advisory`` is on.
        """
        assert self.slo is not None and self.flight is not None
        results = self.slo.evaluate()
        status = worst_status(results)
        with self._slo_lock:
            previous, self._slo_status = self._slo_status, status
            new_breach = status == "breach" and previous != "breach"
            if new_breach and self.config.flight_journal is not None:
                self.flight_dumps += 1
        if new_breach:
            count("serve.slo.breaches")
            self.flight.record(
                "breach",
                {"results": [result.to_json() for result in results]},
            )
            if self.config.flight_journal is not None:
                count("serve.flight.dumps")
                self.flight.dump(self.config.flight_journal)
        if self.config.slo_advisory:
            if status == "breach":
                self.gate.advise_pressure(2.0)
                self.breaker.advise(True)
            elif status == "warn":
                self.gate.advise_pressure(1.5)
                self.breaker.advise(False)
            else:
                self.gate.advise_pressure(1.0)
                self.breaker.advise(False)

    # ----------------------------------------------------------------- #

    def _accept_and_serve(self, payload: Any) -> dict[str, Any]:
        try:
            request = self._accept(payload)
        except RequestError as exc:
            count("serve.errors.request")
            return error_envelope(None, exc)
        except ReproError as exc:
            # e.g. an injected serve.accept fault that survived retry:
            # still an envelope, never an escaping exception.
            count("serve.errors.internal")
            return error_envelope(None, exc)
        request_id = next(self._ids)
        try:
            envelope = self._admit_and_execute(request)
        except ServiceOverloaded as shed:
            count(f"serve.shed.{shed.reason}")
            envelope = shed_envelope(request, shed)
        except ReproError as exc:
            count("serve.errors.internal")
            envelope = error_envelope(request, exc)
        envelope["meta"]["request_id"] = request_id
        return envelope

    def _accept(self, payload: Any) -> AnonymizeRequest:
        def _parse() -> AnonymizeRequest:
            checkpoint("serve.accept")
            if isinstance(payload, AnonymizeRequest):
                return payload
            return AnonymizeRequest.from_json(payload)

        return call_with_retry(
            _parse, policy=self.config.retry, sleep=self.sleeper
        )

    def _admit_and_execute(self, request: AnonymizeRequest) -> dict[str, Any]:
        budget = (
            request.timeout
            if request.timeout is not None
            else self.config.default_timeout
        )
        permit = self.breaker.acquire()
        if permit is None:
            raise ServiceOverloaded(
                "circuit breaker is open after repeated backend failures",
                reason="breaker_open",
                retry_after=self.breaker.retry_after(),
            )
        # Every exit below must resolve the permit: _execute records
        # success/failure once the backend has spoken; the finally
        # returns an unresolved half-open probe (cache hit, shed,
        # loader/validation failure) so the breaker is never wedged.
        try:
            started = self.clock()
            with span("serve.admit"):
                self.gate.try_admit(budget)  # raises the typed shed itself

                def _enter() -> bool:
                    # The fault site fires *before* the slot transition
                    # so a retried attempt never double-claims a slot.
                    checkpoint("serve.enqueue")
                    return self.gate.enter(timeout=budget)

                try:
                    entered = call_with_retry(
                        _enter, policy=self.config.retry, sleep=self.sleeper
                    )
                except ReproError:
                    self.gate.cancel()
                    raise
            if not entered:
                raise ServiceOverloaded(
                    f"no execution slot freed up within the "
                    f"{budget:.3f}s budget",
                    reason="deadline_unmeetable",
                    retry_after=self.gate.estimated_wait(),
                )
            work_timer = Timer(clock=self.clock)
            try:
                with work_timer:
                    remaining = max(0.0, budget - (self.clock() - started))
                    return self._execute(request, remaining, permit)
            finally:
                self.gate.leave(work_timer.seconds)
        finally:
            permit.release()

    def _execute(
        self,
        request: AnonymizeRequest,
        budget: float,
        permit: BreakerPermit,
    ) -> dict[str, Any]:
        table = self.loader(request)
        if request.k > table.num_records:
            raise RequestError(
                f"k={request.k} exceeds the table size n={table.num_records}"
            )
        fingerprint = self._fingerprint(request, table)
        # The key deliberately excludes the backend: backends are
        # bit-equivalent, so a body computed under either is *the*
        # body for this request.
        key = cache_key(
            fingerprint, request.k, request.notion, request.measure
        )
        backend = resolve_backend(request.backend)
        with span("serve.cache.lookup"):
            body = self.cache.get(key)
        if body is not None:
            return ok_envelope(request, body, cache_hit=True, backend=backend)

        chain = chain_for(request.notion)
        # One deadline spanning every retry attempt: the budget is the
        # client's, so a retried execution resumes the *remaining*
        # budget rather than restarting a fresh one per attempt.
        deadline = Deadline.after(budget, clock=self.clock)

        def _run() -> FallbackOutcome:
            checkpoint("serve.execute")
            with limit_scope(deadline):
                return run_with_fallback(
                    table,
                    request.k,
                    chain=chain,
                    measure=request.measure,
                    overall_timeout=deadline.remaining(),
                    rung_timeout=self.config.rung_timeout,
                    clock=self.clock,
                    backend=backend,
                )

        with span("serve.execute", notion=request.notion, k=request.k):
            try:
                outcome = call_with_retry(
                    _run, policy=self.config.retry, sleep=self.sleeper
                )
            except ReproError:
                permit.failure()
                raise
        if not outcome.ok:
            permit.failure()
            count("serve.exhausted")
            return error_envelope(
                request,
                FallbackExhausted(
                    "every rung of the degradation chain failed:\n"
                    + outcome.report.format(),
                    report=outcome.report,
                ),
            )
        permit.success()
        count("serve.execute.computed")
        assert outcome.result is not None
        body = build_body(
            request, table, outcome.result, outcome.report, chain[0].name
        )
        if outcome.report.winner != chain[0].name:
            count("serve.degraded")
        # Store *outside* the deadline scope: the result exists; failing
        # the request because persistence ran past the SLO helps nobody.
        self.cache.put(key, body)
        return ok_envelope(request, body, cache_hit=False, backend=backend)

    def _fingerprint(self, request: AnonymizeRequest, table: Table) -> str:
        """Fingerprint with a per-(dataset, n, seed) memo.

        The memo only short-circuits the hash for *registry-named*
        tables, which are pure functions of ``(dataset, n, seed)``;
        injected loaders that ignore the request (tests) bypass it by
        keying on the loader identity being the default.
        """
        if self.loader is not default_loader:
            return table_fingerprint(table)
        memo_key = (request.dataset, request.n, request.seed)
        with self._fp_lock:
            cached = self._fingerprints.get(memo_key)
        if cached is not None:
            return cached
        fingerprint = table_fingerprint(table)
        with self._fp_lock:
            self._fingerprints[memo_key] = fingerprint
        return fingerprint
