"""Numeric encoding of tables and hierarchies.

Every algorithm in the paper is O(n²)-ish in the number of records, which
is only feasible in Python if the inner loops become numpy table lookups.
This module precomputes, per attribute:

* ``join[a, b]`` — node index of the closure of the union of nodes a and b
  (the LCA for laminar collections), so cluster closures become integer
  lookups;
* ``anc[v, b]`` — whether value ``v`` lies in node ``b``, so consistency
  checks (Definition 3.3) become boolean lookups;
* ``sizes[b]`` and ``singleton[v]`` helper arrays;
* the empirical value distribution, which the entropy measure needs.

An :class:`EncodedTable` additionally deduplicates identical rows: all
costs and closures depend only on the multiset of values, so algorithms
can work on ``u ≤ n`` unique rows with multiplicities.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.tabular.hierarchy import SubsetCollection
from repro.tabular.record import GeneralizedRecord
from repro.tabular.table import GeneralizedTable, Table


class EncodedAttribute:
    """Precomputed lookup tables for one attribute's subset collection."""

    __slots__ = ("collection", "join", "anc", "sizes", "singleton", "full_node")

    def __init__(self, collection: SubsetCollection) -> None:
        self.collection = collection
        n_nodes = collection.num_nodes
        m = collection.attribute.size

        # Specialized collections (e.g. IntervalCollection, whose node
        # count is quadratic in m) supply vectorized table builders.
        if hasattr(collection, "build_join_table"):
            self.join = np.asarray(
                collection.build_join_table(), dtype=np.int32
            )
        else:
            join = np.empty((n_nodes, n_nodes), dtype=np.int32)
            for a in range(n_nodes):
                join[a, a] = a
                for b in range(a + 1, n_nodes):
                    j = collection.join(a, b)
                    join[a, b] = j
                    join[b, a] = j
            self.join = join

        if hasattr(collection, "build_ancestor_table"):
            self.anc = np.asarray(
                collection.build_ancestor_table(), dtype=bool
            )
        else:
            anc = np.zeros((m, n_nodes), dtype=bool)
            for b in range(n_nodes):
                for v in collection.node_indices(b):
                    anc[v, b] = True
            self.anc = anc

        self.sizes = np.array(
            [collection.node_size(b) for b in range(n_nodes)], dtype=np.int32
        )
        self.singleton = np.array(
            [collection.singleton_node(v) for v in range(m)], dtype=np.int32
        )
        self.full_node = collection.full_node

    @property
    def num_nodes(self) -> int:
        """Number of permissible subsets."""
        return int(self.join.shape[0])

    @property
    def num_values(self) -> int:
        """Domain size ``m_j``."""
        return int(self.anc.shape[0])


class EncodedTable:
    """A table compiled to integer codes plus per-attribute lookup tables.

    Attributes
    ----------
    codes:
        ``int32[n, r]`` value indices of every record.
    singleton_nodes:
        ``int32[n, r]`` node index of each record's singleton subsets —
        a plain record viewed as a (trivially) generalized record.
    unique_codes, unique_inverse, unique_counts:
        Deduplicated rows: ``codes == unique_codes[unique_inverse]`` and
        ``unique_counts`` are the multiplicities.
    value_counts:
        Per attribute, the empirical count of each domain value in the
        table — the distribution behind the entropy measure (Def. 4.3).
    """

    __slots__ = (
        "table",
        "schema",
        "attrs",
        "codes",
        "singleton_nodes",
        "unique_codes",
        "unique_inverse",
        "unique_counts",
        "unique_singleton_nodes",
        "value_counts",
    )

    def __init__(self, table: Table) -> None:
        self.table = table
        self.schema = table.schema
        self.attrs: tuple[EncodedAttribute, ...] = tuple(
            EncodedAttribute(coll) for coll in self.schema.collections
        )

        n = table.num_records
        r = self.schema.num_attributes
        codes = np.empty((n, r), dtype=np.int32)
        for j, coll in enumerate(self.schema.collections):
            att = coll.attribute
            codes[:, j] = [att.index_of(row[j]) for row in table.rows]
        self.codes = codes

        self.singleton_nodes = np.empty_like(codes)
        for j, att in enumerate(self.attrs):
            self.singleton_nodes[:, j] = att.singleton[codes[:, j]]

        uniq, inverse, counts = np.unique(
            codes, axis=0, return_inverse=True, return_counts=True
        )
        self.unique_codes = uniq.astype(np.int32)
        self.unique_inverse = inverse.astype(np.int64)
        self.unique_counts = counts.astype(np.int64)
        self.unique_singleton_nodes = np.empty_like(self.unique_codes)
        for j, att in enumerate(self.attrs):
            self.unique_singleton_nodes[:, j] = att.singleton[self.unique_codes[:, j]]

        self.value_counts = tuple(
            np.bincount(codes[:, j], minlength=att.num_values).astype(np.int64)
            for j, att in enumerate(self.attrs)
        )

    # ------------------------------------------------------------------ #
    # shape accessors
    # ------------------------------------------------------------------ #

    @property
    def num_records(self) -> int:
        """Number of records ``n``."""
        return int(self.codes.shape[0])

    @property
    def num_attributes(self) -> int:
        """Number of public attributes ``r``."""
        return int(self.codes.shape[1])

    @property
    def num_unique(self) -> int:
        """Number of distinct rows ``u``."""
        return int(self.unique_codes.shape[0])

    # ------------------------------------------------------------------ #
    # closures and joins
    # ------------------------------------------------------------------ #

    def closure_of_records(self, indices: Iterable[int]) -> np.ndarray:
        """Exact closure nodes of a set of records (one node per attribute).

        Computed from the union of value sets per attribute (not by
        iterated joins), so it is exact even for non-laminar collections.
        """
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            raise SchemaError("closure of an empty record set is undefined")
        nodes = np.empty(self.num_attributes, dtype=np.int32)
        for j, att in enumerate(self.attrs):
            values = np.unique(self.codes[idx, j])
            nodes[j] = att.collection.closure_of_value_indices(values.tolist())
        return nodes

    def join_rows(self, nodes_a: np.ndarray, nodes_b: np.ndarray) -> np.ndarray:
        """Vectorized per-attribute join of two node arrays.

        ``nodes_a`` may be ``[r]`` or ``[*, r]``; ``nodes_b`` likewise;
        standard numpy broadcasting applies along the leading axis.
        """
        nodes_a = np.asarray(nodes_a)
        nodes_b = np.asarray(nodes_b)
        out = np.empty(np.broadcast_shapes(nodes_a.shape, nodes_b.shape), dtype=np.int32)
        a2 = np.broadcast_to(nodes_a, out.shape)
        b2 = np.broadcast_to(nodes_b, out.shape)
        for j, att in enumerate(self.attrs):
            out[..., j] = att.join[a2[..., j], b2[..., j]]
        return out

    def consistency_mask(
        self, record_index: int, gen_nodes: np.ndarray
    ) -> np.ndarray:
        """Boolean mask: which generalized records (rows of ``gen_nodes``,
        shape ``[*, r]``) are consistent with original record ``record_index``
        (Definition 3.3)."""
        codes = self.codes[record_index]
        gen_nodes = np.asarray(gen_nodes)
        mask = np.ones(gen_nodes.shape[:-1], dtype=bool)
        for j, att in enumerate(self.attrs):
            mask &= att.anc[codes[j], gen_nodes[..., j]]
        return mask

    def consistency_mask_for_codes(
        self, codes: np.ndarray, gen_nodes: np.ndarray
    ) -> np.ndarray:
        """Like :meth:`consistency_mask` but for an explicit code vector."""
        gen_nodes = np.asarray(gen_nodes)
        mask = np.ones(gen_nodes.shape[:-1], dtype=bool)
        for j, att in enumerate(self.attrs):
            mask &= att.anc[codes[j], gen_nodes[..., j]]
        return mask

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #

    def decode_record(self, nodes: Sequence[int]) -> GeneralizedRecord:
        """Turn a per-attribute node vector into a :class:`GeneralizedRecord`."""
        return GeneralizedRecord(self.schema, [int(x) for x in nodes])

    def decode_table(self, node_matrix: np.ndarray) -> GeneralizedTable:
        """Turn an ``[n, r]`` node matrix into a :class:`GeneralizedTable`."""
        node_matrix = np.asarray(node_matrix)
        if node_matrix.shape != (self.num_records, self.num_attributes):
            raise SchemaError(
                f"node matrix has shape {node_matrix.shape}, expected "
                f"{(self.num_records, self.num_attributes)}"
            )
        records = [self.decode_record(row) for row in node_matrix]
        return GeneralizedTable(self.schema, records)

    def encode_generalized(self, gtable: GeneralizedTable) -> np.ndarray:
        """Turn a :class:`GeneralizedTable` into an ``[n, r]`` node matrix."""
        if gtable.schema is not self.schema:
            raise SchemaError("generalized table uses a different schema")
        return np.array([rec.nodes for rec in gtable.records], dtype=np.int32)

    def __repr__(self) -> str:
        return (
            f"EncodedTable(n={self.num_records}, r={self.num_attributes}, "
            f"unique={self.num_unique})"
        )
