"""Numeric encoding of tables and hierarchies.

Every algorithm in the paper is O(n²)-ish in the number of records, which
is only feasible in Python if the inner loops become numpy table lookups.
This module precomputes, per attribute:

* ``join[a, b]`` — node index of the closure of the union of nodes a and b
  (the LCA for laminar collections), so cluster closures become integer
  lookups;
* ``anc[v, b]`` — whether value ``v`` lies in node ``b``, so consistency
  checks (Definition 3.3) become boolean lookups;
* ``sizes[b]`` and ``singleton[v]`` helper arrays;
* the empirical value distribution, which the entropy measure needs.

An :class:`EncodedTable` additionally deduplicates identical rows: all
costs and closures depend only on the multiset of values, so algorithms
can work on ``u ≤ n`` unique rows with multiplicities.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.obs import count
from repro.tabular.hierarchy import SubsetCollection
from repro.tabular.record import GeneralizedRecord
from repro.tabular.table import GeneralizedTable, Table


class EncodedAttribute:
    """Precomputed lookup tables for one attribute's subset collection."""

    __slots__ = ("collection", "join", "anc", "sizes", "singleton", "full_node")

    def __init__(self, collection: SubsetCollection) -> None:
        self.collection = collection
        n_nodes = collection.num_nodes
        m = collection.attribute.size

        # Specialized collections (e.g. IntervalCollection, whose node
        # count is quadratic in m) supply vectorized table builders.
        if hasattr(collection, "build_join_table"):
            self.join = np.asarray(
                collection.build_join_table(), dtype=np.int32
            )
        else:
            join = np.empty((n_nodes, n_nodes), dtype=np.int32)
            for a in range(n_nodes):
                join[a, a] = a
                for b in range(a + 1, n_nodes):
                    j = collection.join(a, b)
                    join[a, b] = j
                    join[b, a] = j
            self.join = join

        if hasattr(collection, "build_ancestor_table"):
            self.anc = np.asarray(
                collection.build_ancestor_table(), dtype=bool
            )
        else:
            anc = np.zeros((m, n_nodes), dtype=bool)
            for b in range(n_nodes):
                for v in collection.node_indices(b):
                    anc[v, b] = True
            self.anc = anc

        self.sizes = np.array(
            [collection.node_size(b) for b in range(n_nodes)], dtype=np.int32
        )
        self.singleton = np.array(
            [collection.singleton_node(v) for v in range(m)], dtype=np.int32
        )
        self.full_node = collection.full_node

    @property
    def num_nodes(self) -> int:
        """Number of permissible subsets."""
        return int(self.join.shape[0])

    @property
    def num_values(self) -> int:
        """Domain size ``m_j``."""
        return int(self.anc.shape[0])


class EncodedTable:
    """A table compiled to integer codes plus per-attribute lookup tables.

    Attributes
    ----------
    codes:
        ``int32[n, r]`` value indices of every record.
    singleton_nodes:
        ``int32[n, r]`` node index of each record's singleton subsets —
        a plain record viewed as a (trivially) generalized record.
    unique_codes, unique_inverse, unique_counts:
        Deduplicated rows: ``codes == unique_codes[unique_inverse]`` and
        ``unique_counts`` are the multiplicities.
    value_counts:
        Per attribute, the empirical count of each domain value in the
        table — the distribution behind the entropy measure (Def. 4.3).
    """

    __slots__ = (
        "table",
        "schema",
        "attrs",
        "codes",
        "singleton_nodes",
        "unique_codes",
        "unique_inverse",
        "unique_counts",
        "unique_singleton_nodes",
        "value_counts",
        "_closure_cache",
        "_join_flat",
        "_join_offsets",
        "_join_cols",
    )

    def __init__(self, table: Table) -> None:
        self.table = table
        self.schema = table.schema
        self.attrs: tuple[EncodedAttribute, ...] = tuple(
            EncodedAttribute(coll) for coll in self.schema.collections
        )

        n = table.num_records
        r = self.schema.num_attributes
        codes = np.empty((n, r), dtype=np.int32)
        for j, coll in enumerate(self.schema.collections):
            att = coll.attribute
            codes[:, j] = [att.index_of(row[j]) for row in table.rows]
        self.codes = codes

        self.singleton_nodes = np.empty_like(codes)
        for j, att in enumerate(self.attrs):
            self.singleton_nodes[:, j] = att.singleton[codes[:, j]]

        uniq, inverse, counts = np.unique(
            codes, axis=0, return_inverse=True, return_counts=True
        )
        self.unique_codes = uniq.astype(np.int32)
        self.unique_inverse = inverse.astype(np.int64)
        self.unique_counts = counts.astype(np.int64)
        self.unique_singleton_nodes = np.empty_like(self.unique_codes)
        for j, att in enumerate(self.attrs):
            self.unique_singleton_nodes[:, j] = att.singleton[self.unique_codes[:, j]]

        self.value_counts = tuple(
            np.bincount(codes[:, j], minlength=att.num_values).astype(np.int64)
            for j, att in enumerate(self.attrs)
        )

        # Memoized closure lookups: (attribute, sorted unique value bytes)
        # -> node index.  The agglomerative engine re-closes overlapping
        # record sets thousands of times per run (merges, Algorithm 2
        # shrinks); for the generic SubsetCollection each closure is a
        # linear node scan, so the memo turns the hot path into a dict hit.
        self._closure_cache: dict[tuple[int, bytes], int] = {}

        # All per-attribute join tables concatenated flat, so a whole
        # [*, r] row join is ONE fancy-index instead of r separate ones
        # (numpy call overhead dominates the engine's small-row joins).
        # flat index of join[a, b] in attribute j:
        #   offsets[j] + a * cols[j] + b.
        self._join_flat = np.concatenate(
            [att.join.ravel() for att in self.attrs]
        )
        self._join_cols = np.array(
            [att.num_nodes for att in self.attrs], dtype=np.int64
        )
        table_sizes = np.array(
            [att.join.size for att in self.attrs], dtype=np.int64
        )
        self._join_offsets = np.concatenate(
            ([0], np.cumsum(table_sizes[:-1]))
        )

    # ------------------------------------------------------------------ #
    # shape accessors
    # ------------------------------------------------------------------ #

    @property
    def num_records(self) -> int:
        """Number of records ``n``."""
        return int(self.codes.shape[0])

    @property
    def num_attributes(self) -> int:
        """Number of public attributes ``r``."""
        return int(self.codes.shape[1])

    @property
    def num_unique(self) -> int:
        """Number of distinct rows ``u``."""
        return int(self.unique_codes.shape[0])

    @property
    def exact_joins(self) -> bool:
        """Whether every attribute's join fold computes exact closures.

        See :attr:`repro.tabular.hierarchy.SubsetCollection.exact_joins`;
        vectorized closure shortcuts (e.g.
        :meth:`leave_one_out_closures`) are only available when this
        holds for all attributes.
        """
        return all(att.collection.exact_joins for att in self.attrs)

    # ------------------------------------------------------------------ #
    # closures and joins
    # ------------------------------------------------------------------ #

    def closure_of_records(self, indices: Iterable[int]) -> np.ndarray:
        """Exact closure nodes of a set of records (one node per attribute).

        Computed from the union of value sets per attribute (not by
        iterated joins), so it is exact even for non-laminar collections.
        Results are memoized per (attribute, value set): the hot loops
        re-close heavily overlapping record sets, and for the generic
        collection each miss costs a linear node scan.
        """
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            raise SchemaError("closure of an empty record set is undefined")
        cache = self._closure_cache
        nodes = np.empty(self.num_attributes, dtype=np.int32)
        hits = misses = 0
        for j, att in enumerate(self.attrs):
            values = np.unique(self.codes[idx, j])
            key = (j, values.tobytes())
            node = cache.get(key)
            if node is None:
                misses += 1
                node = att.collection.closure_of_value_indices(values.tolist())
                cache[key] = node
            else:
                hits += 1
            nodes[j] = node
        if hits:
            count("tabular.closure.memo_hits", hits)
        if misses:
            count("tabular.closure.memo_misses", misses)
        return nodes

    def leave_one_out_closures(self, indices: Sequence[int]) -> np.ndarray:
        """Closure nodes of every leave-one-out subset of ``indices``.

        Row ``i`` of the returned ``int32[len(indices), r]`` matrix is
        the per-attribute closure of ``indices`` with element ``i``
        removed.  Computed with prefix/suffix join folds over the
        precomputed join tables — O(size · r) lookups instead of the
        O(size² · r) closure scans of the naive per-subset loop — which
        is exact precisely when :attr:`exact_joins` holds.

        Raises
        ------
        SchemaError
            If fewer than two records are given (a leave-one-out subset
            would be empty) or :attr:`exact_joins` does not hold.
        """
        if not self.exact_joins:
            raise SchemaError(
                "leave_one_out_closures requires exact joins; compute "
                "closures per subset with closure_of_records instead"
            )
        idx = np.asarray(list(indices), dtype=np.int64)
        size = idx.size
        if size < 2:
            raise SchemaError(
                "leave-one-out closures need at least two records"
            )
        single = self.singleton_nodes[idx]  # [size, r]
        r = self.num_attributes
        prefix = np.empty((size, r), dtype=np.int32)  # closure of idx[:i+1]
        suffix = np.empty((size, r), dtype=np.int32)  # closure of idx[i:]
        prefix[0] = single[0]
        suffix[size - 1] = single[size - 1]
        for i in range(1, size):
            prefix[i] = self.join_rows(prefix[i - 1], single[i])
            suffix[size - 1 - i] = self.join_rows(
                suffix[size - i], single[size - 1 - i]
            )
        out = np.empty((size, r), dtype=np.int32)
        out[0] = suffix[1]
        out[size - 1] = prefix[size - 2]
        for i in range(1, size - 1):
            out[i] = self.join_rows(prefix[i - 1], suffix[i + 1])
        return out

    def join_rows(self, nodes_a: np.ndarray, nodes_b: np.ndarray) -> np.ndarray:
        """Vectorized per-attribute join of two node arrays.

        ``nodes_a`` may be ``[r]`` or ``[*, r]``; ``nodes_b`` likewise;
        standard numpy broadcasting applies along the leading axis.
        One indexing pass over the flat concatenated join tables (the
        last axis addresses the per-attribute table via the precomputed
        offsets/strides).
        """
        nodes_a = np.asarray(nodes_a, dtype=np.int64)
        nodes_b = np.asarray(nodes_b, dtype=np.int64)
        flat_index = self._join_offsets + nodes_a * self._join_cols + nodes_b
        return self._join_flat[flat_index].astype(np.int32, copy=False)

    def consistency_mask(
        self, record_index: int, gen_nodes: np.ndarray
    ) -> np.ndarray:
        """Boolean mask: which generalized records (rows of ``gen_nodes``,
        shape ``[*, r]``) are consistent with original record ``record_index``
        (Definition 3.3)."""
        codes = self.codes[record_index]
        gen_nodes = np.asarray(gen_nodes)
        mask = np.ones(gen_nodes.shape[:-1], dtype=bool)
        for j, att in enumerate(self.attrs):
            mask &= att.anc[codes[j], gen_nodes[..., j]]
        return mask

    def consistency_mask_for_codes(
        self, codes: np.ndarray, gen_nodes: np.ndarray
    ) -> np.ndarray:
        """Like :meth:`consistency_mask` but for an explicit code vector."""
        gen_nodes = np.asarray(gen_nodes)
        mask = np.ones(gen_nodes.shape[:-1], dtype=bool)
        for j, att in enumerate(self.attrs):
            mask &= att.anc[codes[j], gen_nodes[..., j]]
        return mask

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #

    def decode_record(self, nodes: Sequence[int]) -> GeneralizedRecord:
        """Turn a per-attribute node vector into a :class:`GeneralizedRecord`."""
        return GeneralizedRecord(self.schema, [int(x) for x in nodes])

    def decode_table(self, node_matrix: np.ndarray) -> GeneralizedTable:
        """Turn an ``[n, r]`` node matrix into a :class:`GeneralizedTable`."""
        node_matrix = np.asarray(node_matrix)
        if node_matrix.shape != (self.num_records, self.num_attributes):
            raise SchemaError(
                f"node matrix has shape {node_matrix.shape}, expected "
                f"{(self.num_records, self.num_attributes)}"
            )
        records = [self.decode_record(row) for row in node_matrix]
        return GeneralizedTable(self.schema, records)

    def encode_generalized(self, gtable: GeneralizedTable) -> np.ndarray:
        """Turn a :class:`GeneralizedTable` into an ``[n, r]`` node matrix."""
        if gtable.schema is not self.schema:
            raise SchemaError("generalized table uses a different schema")
        return np.array([rec.nodes for rec in gtable.records], dtype=np.int32)

    def __repr__(self) -> str:
        return (
            f"EncodedTable(n={self.num_records}, r={self.num_attributes}, "
            f"unique={self.num_unique})"
        )
