"""ARX-style generalization-hierarchy CSV import/export.

The de-facto interchange format for generalization hierarchies (used by
the ARX anonymization tool, which ships the standard Adult hierarchies)
is a delimited file with one row per domain value:

    value;level-1 label;level-2 label;...;level-n label

Values sharing a label within a level column form one permissible
subset.  This module reads that format into an
:class:`~repro.tabular.hierarchy.SubsetCollection` (so users can drop in
hierarchies they already maintain for other tools) and writes laminar
collections back out.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SchemaError
from repro.tabular.attribute import Attribute
from repro.tabular.hierarchy import SubsetCollection


def read_hierarchy_csv(
    name: str, path: str | Path, delimiter: str = ";"
) -> SubsetCollection:
    """Read an ARX-style hierarchy file into a collection.

    Parameters
    ----------
    name:
        Attribute name for the resulting domain.
    path:
        The hierarchy file; one row per value, levels left to right.
    delimiter:
        Column separator (ARX uses ``;``).

    Raises
    ------
    SchemaError
        On an empty file, duplicate values, or ragged rows.
    """
    rows: list[list[str]] = []
    with open(path, newline="") as fh:
        for line in csv.reader(fh, delimiter=delimiter):
            if line and any(cell.strip() for cell in line):
                rows.append([cell.strip() for cell in line])
    if not rows:
        raise SchemaError(f"hierarchy file {path} is empty")
    width = len(rows[0])
    if width < 1:
        raise SchemaError(f"hierarchy file {path} has no columns")
    for row in rows:
        if len(row) != width:
            raise SchemaError(
                f"hierarchy file {path} is ragged: row {row} has "
                f"{len(row)} columns, expected {width}"
            )

    values = [row[0] for row in rows]
    attribute = Attribute(name, values)

    subsets: list[list[str]] = []
    for level in range(1, width):
        groups: dict[str, list[str]] = {}
        for row in rows:
            groups.setdefault(row[level], []).append(row[0])
        subsets.extend(groups.values())
    return SubsetCollection(attribute, subsets)


def write_hierarchy_csv(
    collection: SubsetCollection, path: str | Path, delimiter: str = ";"
) -> None:
    """Write a laminar collection as an ARX-style hierarchy file.

    Levels are emitted by node depth: column ℓ holds, for every value,
    the label of its ancestor ℓ levels above the singleton (clamped at
    the root), which round-trips through :func:`read_hierarchy_csv` to
    an equivalent collection.

    Raises
    ------
    SchemaError
        If the collection is not laminar (the format cannot express
        overlapping subsets).
    """
    if not collection.is_laminar:
        raise SchemaError(
            "ARX hierarchy files cannot express non-laminar collections"
        )
    att = collection.attribute
    height = collection.height()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        for v, value in enumerate(att.values):
            node = collection.singleton_node(v)
            row = [value]
            for _ in range(height):
                node = collection.parent(node)
                row.append(collection.node_label(node))
            writer.writerow(row)
