"""Schemas, tables and generalized tables.

A :class:`Schema` bundles the public attributes with their permissible
generalization collections, plus optional *private* attributes (the
``Z_j`` of Section III — carried through anonymization untouched, and used
by the privacy/extension modules).

A :class:`Table` is the paper's public database ``D``; a
:class:`GeneralizedTable` is a generalization ``g(D)`` under local
recoding: the i-th generalized record corresponds to (and in every table
this library produces, generalizes) the i-th original record.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import AnonymityError, SchemaError
from repro.tabular.attribute import Attribute
from repro.tabular.hierarchy import SubsetCollection, suppression_only
from repro.tabular.record import GeneralizedRecord


class Schema:
    """Public attributes + their generalization collections (+ private attrs).

    Parameters
    ----------
    collections:
        One :class:`SubsetCollection` per public attribute, in column order.
    private_attributes:
        Names of private (sensitive) columns carried alongside the public
        ones.  They are never generalized; they exist for the adversary
        model, the ℓ-diversity extension and the CM measure.
    """

    __slots__ = ("_collections", "_private", "_name_to_index")

    def __init__(
        self,
        collections: Sequence[SubsetCollection],
        private_attributes: Sequence[str] = (),
    ) -> None:
        if not collections:
            raise SchemaError("a schema needs at least one public attribute")
        names = [c.attribute.name for c in collections]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        private = tuple(private_attributes)
        if set(private) & set(names):
            raise SchemaError("private attribute names collide with public ones")
        if len(set(private)) != len(private):
            raise SchemaError(f"duplicate private attribute names: {private}")
        self._collections = tuple(collections)
        self._private = private
        self._name_to_index = {name: i for i, name in enumerate(names)}

    @classmethod
    def of_attributes(
        cls,
        attributes: Sequence[Attribute],
        private_attributes: Sequence[str] = (),
    ) -> "Schema":
        """Schema with suppression-only collections for every attribute."""
        return cls([suppression_only(a) for a in attributes], private_attributes)

    @property
    def collections(self) -> tuple[SubsetCollection, ...]:
        """Per-attribute generalization collections, in column order."""
        return self._collections

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The public attributes, in column order."""
        return tuple(c.attribute for c in self._collections)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the public attributes."""
        return tuple(c.attribute.name for c in self._collections)

    @property
    def private_attributes(self) -> tuple[str, ...]:
        """Names of the private (sensitive) attributes."""
        return self._private

    @property
    def num_attributes(self) -> int:
        """Number of public attributes ``r``."""
        return len(self._collections)

    def attribute_index(self, name: str) -> int:
        """Column index of the public attribute called ``name``."""
        try:
            return self._name_to_index[name]
        except KeyError:
            raise SchemaError(f"no public attribute named {name!r}") from None

    def validate_row(self, row: Sequence[str]) -> tuple[str, ...]:
        """Check a public row against the domains; return it as a tuple."""
        if len(row) != self.num_attributes:
            raise SchemaError(
                f"row has {len(row)} values, schema has {self.num_attributes} "
                "public attributes"
            )
        out = []
        for value, coll in zip(row, self._collections):
            value = str(value)
            if value not in coll.attribute:
                raise SchemaError(
                    f"value {value!r} is not in the domain of attribute "
                    f"{coll.attribute.name!r}"
                )
            out.append(value)
        return tuple(out)

    def __repr__(self) -> str:
        pub = ", ".join(self.attribute_names)
        priv = (", private: " + ", ".join(self._private)) if self._private else ""
        return f"Schema({pub}{priv})"


class Table:
    """The public database ``D = {R_1, ..., R_n}`` (eq. 1), with optional
    private columns ``D'`` (eq. 2) riding along.

    Rows are tuples of value strings.  The table is immutable after
    construction.
    """

    __slots__ = ("_schema", "_rows", "_private_rows")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Sequence[str]],
        private_rows: Iterable[Sequence[str]] | None = None,
    ) -> None:
        self._schema = schema
        self._rows: tuple[tuple[str, ...], ...] = tuple(
            schema.validate_row(row) for row in rows
        )
        if schema.private_attributes:
            if private_rows is None:
                raise SchemaError(
                    "schema declares private attributes but no private rows given"
                )
            priv = tuple(tuple(str(v) for v in row) for row in private_rows)
            if len(priv) != len(self._rows):
                raise SchemaError(
                    f"{len(self._rows)} public rows but {len(priv)} private rows"
                )
            width = len(schema.private_attributes)
            for row in priv:
                if len(row) != width:
                    raise SchemaError(
                        f"private row has {len(row)} values, expected {width}"
                    )
            self._private_rows = priv
        else:
            if private_rows is not None and tuple(private_rows):
                raise SchemaError(
                    "private rows given but the schema declares no private attributes"
                )
            self._private_rows = ()

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def rows(self) -> tuple[tuple[str, ...], ...]:
        """All public rows."""
        return self._rows

    @property
    def private_rows(self) -> tuple[tuple[str, ...], ...]:
        """All private rows (empty when the schema has no private attrs)."""
        return self._private_rows

    @property
    def num_records(self) -> int:
        """Number of records ``n``."""
        return len(self._rows)

    def row(self, i: int) -> tuple[str, ...]:
        """The i-th public record."""
        return self._rows[i]

    def private_row(self, i: int) -> tuple[str, ...]:
        """The i-th private record."""
        return self._private_rows[i]

    def column(self, name: str) -> tuple[str, ...]:
        """All values of one public column."""
        j = self._schema.attribute_index(name)
        return tuple(row[j] for row in self._rows)

    def subset(self, indices: Sequence[int]) -> "Table":
        """A new table holding the selected records (in the given order)."""
        rows = [self._rows[i] for i in indices]
        priv = [self._private_rows[i] for i in indices] if self._private_rows else None
        return Table(self._schema, rows, priv)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[str, ...]]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return (
            f"Table({self.num_records} records × "
            f"{self._schema.num_attributes} public attributes)"
        )


class GeneralizedTable:
    """A generalization ``g(D) = {R̄_1, ..., R̄_n}`` of a table.

    The i-th generalized record is the local recoding of the i-th original
    record; :meth:`check_generalizes` verifies that correspondence, which
    Algorithms 5 and 6 rely on.
    """

    __slots__ = ("_schema", "_records")

    def __init__(self, schema: Schema, records: Sequence[GeneralizedRecord]) -> None:
        for rec in records:
            if rec.schema is not schema:
                raise SchemaError(
                    "generalized record built against a different schema"
                )
        self._schema = schema
        self._records = tuple(records)

    @property
    def schema(self) -> Schema:
        """The schema the records refer to."""
        return self._schema

    @property
    def records(self) -> tuple[GeneralizedRecord, ...]:
        """All generalized records."""
        return self._records

    @property
    def num_records(self) -> int:
        """Number of generalized records."""
        return len(self._records)

    def record(self, i: int) -> GeneralizedRecord:
        """The i-th generalized record."""
        return self._records[i]

    def check_generalizes(self, table: Table) -> None:
        """Raise unless record i generalizes row i for every i.

        Raises
        ------
        AnonymityError
            On length mismatch or any non-generalizing position.
        """
        if table.schema is not self._schema:
            raise AnonymityError("table and generalization use different schemas")
        if table.num_records != self.num_records:
            raise AnonymityError(
                f"table has {table.num_records} records, generalization has "
                f"{self.num_records}"
            )
        for i, (row, rec) in enumerate(zip(table.rows, self._records)):
            if not rec.generalizes(row):
                raise AnonymityError(
                    f"generalized record {i} does not generalize original record {i}"
                )

    def labels(self) -> list[tuple[str, ...]]:
        """Human-readable rows (one label per attribute per record)."""
        return [rec.labels() for rec in self._records]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[GeneralizedRecord]:
        return iter(self._records)

    def __repr__(self) -> str:
        return (
            f"GeneralizedTable({self.num_records} records × "
            f"{self._schema.num_attributes} attributes)"
        )
