"""Tabular substrate: attributes, hierarchies, tables and their encoding.

This package implements Section III of the paper — attribute domains,
permissible generalization collections (Definition 3.1), tables and local
recoding generalizations (Definition 3.2), consistency (Definition 3.3) —
plus the numpy encoding layer that makes the O(n²) algorithms practical.
"""

from repro.tabular.attribute import Attribute, integer_attribute
from repro.tabular.encoding import EncodedAttribute, EncodedTable
from repro.tabular.hierarchy import (
    IntervalCollection,
    SubsetCollection,
    all_intervals,
    from_groups,
    interval_hierarchy,
    suppression_only,
)
from repro.tabular.hierarchy_csv import read_hierarchy_csv, write_hierarchy_csv
from repro.tabular.io import (
    read_generalized_csv,
    read_schema_json,
    read_table_csv,
    schema_from_dict,
    schema_to_dict,
    write_generalized_csv,
    write_schema_json,
    write_table_csv,
)
from repro.tabular.record import GeneralizedRecord, record_as_generalized
from repro.tabular.table import GeneralizedTable, Schema, Table

__all__ = [
    "Attribute",
    "integer_attribute",
    "SubsetCollection",
    "suppression_only",
    "from_groups",
    "interval_hierarchy",
    "IntervalCollection",
    "all_intervals",
    "read_hierarchy_csv",
    "write_hierarchy_csv",
    "GeneralizedRecord",
    "record_as_generalized",
    "Schema",
    "Table",
    "GeneralizedTable",
    "EncodedAttribute",
    "EncodedTable",
    "schema_to_dict",
    "schema_from_dict",
    "write_schema_json",
    "read_schema_json",
    "write_table_csv",
    "read_table_csv",
    "write_generalized_csv",
    "read_generalized_csv",
]
