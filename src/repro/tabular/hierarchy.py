"""Permissible generalization collections ``A_j ⊆ P(A_j)``.

Definition 3.1 of the paper lets each attribute come with a collection of
subsets of its domain; a generalization replaces a value with one of those
subsets that contains it.  This module implements such collections
(:class:`SubsetCollection`) together with the *closure* operation used
throughout Section V: the minimal permissible subset containing a given set
of values.

Every collection in the paper (and every collection built by the helper
constructors here) is **laminar** — any two permissible subsets are either
disjoint or nested — which makes it a tree ("generalization hierarchy") and
makes closures unique least-common-ancestor computations.  Arbitrary
collections are supported too: the closure is then the minimum-size
permissible superset, tie-broken deterministically (smallest canonical node
index), and :meth:`SubsetCollection.is_laminar` reports which regime the
collection is in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ClosureError, SchemaError
from repro.tabular.attribute import Attribute

if TYPE_CHECKING:  # numpy stays a lazy import for the fast-path builders
    import numpy as np


def _mask_of(indices: Iterable[int]) -> int:
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


class SubsetCollection:
    """A collection of permissible generalized subsets for one attribute.

    The collection always contains all singletons and the full domain; the
    constructor adds them if missing (the paper's collections all include
    them, and without the full set closures would not exist).

    Nodes are stored in a canonical order: sorted by (subset size, sorted
    value indices).  Hence the first ``m`` nodes are exactly the singletons
    in domain order, and the last node is the full domain.  All algorithms
    refer to subsets by these canonical *node indices*.

    Parameters
    ----------
    attribute:
        The attribute the collection generalizes.
    subsets:
        Iterable of subsets (iterables of domain values).  Singletons and
        the full set may be included or omitted; duplicates are merged.
    """

    __slots__ = (
        "_attribute",
        "_nodes",
        "_masks",
        "_sizes",
        "_mask_to_node",
        "_singleton_node",
        "_full_node",
        "_laminar",
        "_parent",
    )

    def __init__(self, attribute: Attribute, subsets: Iterable[Iterable[str]] = ()) -> None:
        self._attribute = attribute
        m = attribute.size
        index_sets: set[frozenset[int]] = set()
        for subset in subsets:
            idx = frozenset(attribute.index_of(v) for v in subset)
            if not idx:
                raise SchemaError(
                    f"attribute {attribute.name!r}: the empty set is not a "
                    "valid generalized subset"
                )
            index_sets.add(idx)
        for i in range(m):
            index_sets.add(frozenset([i]))
        index_sets.add(frozenset(range(m)))

        nodes = sorted(index_sets, key=lambda s: (len(s), sorted(s)))
        self._nodes: tuple[frozenset[int], ...] = tuple(nodes)
        self._masks: tuple[int, ...] = tuple(_mask_of(s) for s in nodes)
        self._sizes: tuple[int, ...] = tuple(len(s) for s in nodes)
        self._mask_to_node = {mask: i for i, mask in enumerate(self._masks)}
        self._singleton_node: tuple[int, ...] = tuple(
            self._mask_to_node[1 << v] for v in range(m)
        )
        self._full_node: int = len(nodes) - 1
        self._laminar = self._check_laminar()
        self._parent = self._compute_parents() if self._laminar else None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def attribute(self) -> Attribute:
        """The attribute this collection belongs to."""
        return self._attribute

    @property
    def num_nodes(self) -> int:
        """Number of permissible subsets (including singletons and full set)."""
        return len(self._nodes)

    @property
    def full_node(self) -> int:
        """Node index of the full domain (total suppression)."""
        return self._full_node

    def node_values(self, node: int) -> frozenset[str]:
        """The subset of domain values represented by ``node``."""
        values = self._attribute.values
        return frozenset(values[i] for i in self._nodes[node])

    def node_indices(self, node: int) -> frozenset[int]:
        """The subset of value *indices* represented by ``node``."""
        return self._nodes[node]

    def node_size(self, node: int) -> int:
        """Cardinality ``|B|`` of the subset at ``node``."""
        return self._sizes[node]

    def singleton_node(self, value_index: int) -> int:
        """Node index of the singleton ``{value}`` for a value index."""
        return self._singleton_node[value_index]

    def node_of_values(self, values: Iterable[str]) -> int:
        """Node index of an *exactly matching* permissible subset.

        Raises
        ------
        ClosureError
            If the given set of values is not itself permissible (use
            :meth:`closure_of_values` to find its closure instead).
        """
        mask = _mask_of(self._attribute.index_of(v) for v in values)
        try:
            return self._mask_to_node[mask]
        except KeyError:
            raise ClosureError(
                f"attribute {self._attribute.name!r}: set is not a "
                "permissible generalized subset"
            ) from None

    def contains_value(self, node: int, value_index: int) -> bool:
        """Whether the value with index ``value_index`` lies in ``node``."""
        return bool(self._masks[node] >> value_index & 1)

    # ------------------------------------------------------------------ #
    # closures
    # ------------------------------------------------------------------ #

    def closure_of_mask(self, mask: int) -> int:
        """Minimal permissible superset of the value set encoded by ``mask``.

        Nodes are scanned in canonical (size-then-lex) order, so the result
        is the minimum-size superset with deterministic tie-breaking.  For
        laminar collections the minimal superset is unique, so no ambiguity
        arises.
        """
        if mask == 0:
            raise ClosureError("closure of the empty value set is undefined")
        for node, node_mask in enumerate(self._masks):
            if node_mask & mask == mask:
                return node
        raise ClosureError(
            f"attribute {self._attribute.name!r}: no permissible superset "
            "found (collection is missing the full set?)"
        )

    def closure_of_values(self, values: Iterable[str]) -> int:
        """Closure (minimal permissible superset) of a set of values."""
        return self.closure_of_mask(
            _mask_of(self._attribute.index_of(v) for v in values)
        )

    def closure_of_value_indices(self, indices: Iterable[int]) -> int:
        """Closure of a set of value indices."""
        return self.closure_of_mask(_mask_of(indices))

    def join(self, node_a: int, node_b: int) -> int:
        """Closure of the union of two permissible subsets.

        For laminar collections this is the least common ancestor in the
        hierarchy tree, and the operation is associative — so iterated
        joins compute exact cluster closures.  For non-laminar collections
        iterated joins may over-generalize (they remain *sound*: the result
        always contains the union), which is documented in DESIGN.md.
        """
        if node_a == node_b:
            return node_a
        return self.closure_of_mask(self._masks[node_a] | self._masks[node_b])

    # ------------------------------------------------------------------ #
    # laminar structure
    # ------------------------------------------------------------------ #

    def _check_laminar(self) -> bool:
        masks = self._masks
        for i in range(len(masks)):
            for j in range(i + 1, len(masks)):
                inter = masks[i] & masks[j]
                if inter and inter != masks[i] and inter != masks[j]:
                    return False
        return True

    def _compute_parents(self) -> tuple[int, ...]:
        # Parent of a node = the smallest strictly-containing node.  Nodes
        # are in size order, so the first strict superset found while
        # scanning forward is the parent.  The root (full set) points to
        # itself.
        parents = []
        for i, mask in enumerate(self._masks):
            parent = i
            for j in range(i + 1, len(self._masks)):
                other = self._masks[j]
                if other != mask and other & mask == mask:
                    parent = j
                    break
            parents.append(parent)
        return tuple(parents)

    @property
    def is_laminar(self) -> bool:
        """Whether the collection forms a tree (hierarchy)."""
        return self._laminar

    @property
    def exact_joins(self) -> bool:
        """Whether iterated :meth:`join` folds compute exact closures.

        True when the join is associative and ``closure(S) = fold(join,
        singletons of S)`` — the case for laminar collections (joins are
        LCAs) and for :class:`IntervalCollection` (joins are spanning
        intervals).  Hot paths such as the agglomerative shrink step use
        this to replace per-subset closure scans with join-table
        lookups; when False they fall back to exact closure computation.
        """
        return self._laminar

    def parent(self, node: int) -> int:
        """Parent node in the hierarchy tree (root's parent is itself).

        Raises
        ------
        ClosureError
            If the collection is not laminar.
        """
        if self._parent is None:
            raise ClosureError("parent structure is only defined for laminar collections")
        return self._parent[node]

    def depth(self, node: int) -> int:
        """Distance from ``node`` to the root in the hierarchy tree."""
        if self._parent is None:
            raise ClosureError("depth is only defined for laminar collections")
        d = 0
        while self._parent[node] != node:
            node = self._parent[node]
            d += 1
        return d

    def height(self) -> int:
        """Height of the hierarchy tree (max depth over nodes)."""
        return max(self.depth(n) for n in range(self.num_nodes))

    # ------------------------------------------------------------------ #
    # display
    # ------------------------------------------------------------------ #

    def node_label(self, node: int) -> str:
        """A compact human-readable label for a node.

        Singletons render as the bare value; contiguous integer ranges as
        ``lo-hi``; other subsets as ``{v1|v2|...}``; the full set as ``*``.
        """
        if node == self._full_node and self.num_nodes > 1:
            return "*"
        indices = sorted(self._nodes[node])
        values = [self._attribute.values[i] for i in indices]
        if len(values) == 1:
            return values[0]
        try:
            ints = [int(v) for v in values]
        except ValueError:
            ints = []
        if ints and ints == list(range(ints[0], ints[0] + len(ints))):
            return f"{ints[0]}-{ints[-1]}"
        return "{" + "|".join(values) + "}"

    def __repr__(self) -> str:
        kind = "hierarchy" if self._laminar else "collection"
        return (
            f"SubsetCollection({self._attribute.name!r}, {self.num_nodes} nodes, "
            f"{kind})"
        )


# ---------------------------------------------------------------------- #
# convenience constructors
# ---------------------------------------------------------------------- #


def suppression_only(attribute: Attribute) -> SubsetCollection:
    """Collection with singletons and the full set only (Meyerson–Williams
    suppression model: keep a value or erase it entirely)."""
    return SubsetCollection(attribute, ())


def from_groups(
    attribute: Attribute, *levels: Sequence[Sequence[str]]
) -> SubsetCollection:
    """Build a collection from one or more levels of value groups.

    Each *level* is a sequence of groups (sequences of values).  Groups do
    not have to partition the domain and levels do not have to nest — but
    when they do, the result is a laminar hierarchy, which is what all the
    paper's collections are.

    Example
    -------
    >>> att = Attribute("edu", ["hs", "ba", "ma", "phd"])
    >>> coll = from_groups(att, [["hs"], ["ba"], ["ma", "phd"]])
    >>> coll.is_laminar
    True
    """
    subsets: list[Sequence[str]] = []
    for level in levels:
        for group in level:
            subsets.append(list(group))
    return SubsetCollection(attribute, subsets)


class IntervalCollection(SubsetCollection):
    """Every contiguous value range of an ordered attribute.

    Fixed banding (:func:`interval_hierarchy`) forces cluster closures
    onto pre-cut boundaries; with the full interval collection a cluster
    of ages {31, 33, 34} publishes exactly ``31-34``.  The collection is
    not laminar (intervals overlap), but closures remain unique — the
    minimal permissible superset of any value set is its exact span —
    and the join of two intervals is their spanning interval, which is
    associative, so every algorithm runs unchanged with exact closures.

    The node count is quadratic (m·(m+1)/2 subsets), so this class
    bypasses the generic constructor's O(N²) laminarity scan and
    supplies the encoder's fast join-table path; ``max_values`` guards
    the quadratic tables.

    The attribute's values must be integers in strictly increasing
    order (as :func:`repro.tabular.attribute.integer_attribute`
    produces), so that value-index order equals numeric order.
    """

    __slots__ = ("_num_values", "_node_of_interval")

    def __init__(self, attribute: Attribute, max_values: int = 120) -> None:
        try:
            ints = [int(v) for v in attribute.values]
        except ValueError as exc:
            raise SchemaError(
                f"IntervalCollection requires integer values in "
                f"{attribute.name!r}"
            ) from exc
        if ints != sorted(ints):
            raise SchemaError(
                f"IntervalCollection requires ascending values in "
                f"{attribute.name!r}"
            )
        m = attribute.size
        if m > max_values:
            raise SchemaError(
                f"IntervalCollection on {attribute.name!r}: {m} values "
                f"exceed the max_values guard of {max_values} "
                "(the join table is quadratic in the domain size)"
            )
        # Canonical order (size, lexicographic) = (length, lo).
        self._attribute = attribute
        intervals = [
            (lo, lo + length - 1)
            for length in range(1, m + 1)
            for lo in range(0, m - length + 1)
        ]
        self._nodes = tuple(
            frozenset(range(lo, hi + 1)) for lo, hi in intervals
        )
        self._masks = tuple(
            ((1 << (hi + 1)) - (1 << lo)) for lo, hi in intervals
        )
        self._sizes = tuple(hi - lo + 1 for lo, hi in intervals)
        self._mask_to_node = {mask: i for i, mask in enumerate(self._masks)}
        self._node_of_interval = {
            interval: i for i, interval in enumerate(intervals)
        }
        self._singleton_node = tuple(
            self._node_of_interval[(v, v)] for v in range(m)
        )
        self._full_node = len(intervals) - 1
        self._num_values = m
        self._laminar = m <= 1  # overlapping intervals once m ≥ 2
        self._parent = self._compute_parents() if self._laminar else None

    @property
    def exact_joins(self) -> bool:
        """Interval joins (spanning intervals) are associative and exact."""
        return True

    def interval_of(self, node: int) -> tuple[int, int]:
        """The (lo, hi) value-index bounds of a node."""
        members = self._nodes[node]
        return min(members), max(members)

    def closure_of_mask(self, mask: int) -> int:
        """Exact span of the set bits — O(1) instead of a node scan."""
        if mask == 0:
            raise ClosureError("closure of the empty value set is undefined")
        lo = (mask & -mask).bit_length() - 1
        hi = mask.bit_length() - 1
        return self._node_of_interval[(lo, hi)]

    def join(self, node_a: int, node_b: int) -> int:
        """Spanning interval of two intervals — O(1)."""
        if node_a == node_b:
            return node_a
        lo_a, hi_a = self.interval_of(node_a)
        lo_b, hi_b = self.interval_of(node_b)
        return self._node_of_interval[(min(lo_a, lo_b), max(hi_a, hi_b))]

    def build_join_table(self) -> np.ndarray:
        """Vectorized join table for the encoder's fast path."""
        import numpy as np

        bounds = np.array(
            [self.interval_of(node) for node in range(self.num_nodes)],
            dtype=np.int32,
        )
        lo = np.minimum(bounds[:, None, 0], bounds[None, :, 0])
        hi = np.maximum(bounds[:, None, 1], bounds[None, :, 1])
        index = np.full(
            (self._num_values, self._num_values), -1, dtype=np.int32
        )
        for (a, b), node in self._node_of_interval.items():
            index[a, b] = node
        return index[lo, hi]

    def build_ancestor_table(self) -> np.ndarray:
        """Vectorized value-in-node table for the encoder's fast path."""
        import numpy as np

        bounds = np.array(
            [self.interval_of(node) for node in range(self.num_nodes)],
            dtype=np.int32,
        )
        values = np.arange(self._num_values, dtype=np.int32)
        return (bounds[None, :, 0] <= values[:, None]) & (
            values[:, None] <= bounds[None, :, 1]
        )

    def __repr__(self) -> str:
        return (
            f"IntervalCollection({self._attribute.name!r}, "
            f"{self.num_nodes} intervals)"
        )


def all_intervals(attribute: Attribute, max_values: int = 120) -> IntervalCollection:
    """Convenience constructor for :class:`IntervalCollection`."""
    return IntervalCollection(attribute, max_values=max_values)


def interval_hierarchy(
    attribute: Attribute, *widths: int
) -> SubsetCollection:
    """Banding hierarchy for an integer-valued attribute.

    The domain must consist of decimal integer strings (as produced by
    :func:`repro.tabular.attribute.integer_attribute`).  For each width
    ``w`` the domain is cut into aligned bands ``[lo, lo+w)`` starting at
    the minimum value.  Widths should increase and each wider band should
    be a union of narrower ones (i.e. each width divides the next) for the
    result to be laminar.

    Example: ``interval_hierarchy(age, 5, 10, 20)`` gives 5-year, 10-year
    and 20-year age bands plus singletons and the full range.
    """
    try:
        ints = sorted(int(v) for v in attribute.values)
    except ValueError as exc:
        raise SchemaError(
            f"interval_hierarchy requires integer values in {attribute.name!r}"
        ) from exc
    lo = ints[0]
    subsets: list[list[str]] = []
    for width in widths:
        if width <= 0:
            raise SchemaError(f"band width must be positive, got {width}")
        for start in range(lo, ints[-1] + 1, width):
            band = [str(v) for v in ints if start <= v < start + width]
            if band:
                subsets.append(band)
    return SubsetCollection(attribute, subsets)
