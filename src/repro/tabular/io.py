"""CSV and JSON round-tripping for tables, generalizations and schemas.

The CSV format for generalized tables renders each cell with the node
labels of :meth:`SubsetCollection.node_label` (``value``, ``lo-hi``,
``{a|b}`` or ``*``); :func:`read_generalized_csv` parses those labels
back, so an anonymized release written by the CLI can be re-audited
later.  Schemas serialize to JSON (attribute domains, permissible
subsets, private attribute names) so a release is self-describing.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence, TextIO

from repro.errors import SchemaError
from repro.tabular.attribute import Attribute
from repro.tabular.hierarchy import SubsetCollection
from repro.tabular.record import GeneralizedRecord
from repro.tabular.table import GeneralizedTable, Schema, Table


# ---------------------------------------------------------------------- #
# schema <-> JSON
# ---------------------------------------------------------------------- #


def schema_to_dict(schema: Schema) -> dict:
    """A JSON-serializable description of a schema."""
    attributes = []
    for coll in schema.collections:
        att = coll.attribute
        # Singletons and the full set are implicit; only store the rest.
        extra = []
        for node in range(coll.num_nodes):
            size = coll.node_size(node)
            if size == 1 or size == att.size:
                continue
            extra.append(sorted(coll.node_values(node)))
        attributes.append(
            {"name": att.name, "values": list(att.values), "subsets": extra}
        )
    return {
        "attributes": attributes,
        "private_attributes": list(schema.private_attributes),
    }


def schema_from_dict(data: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    try:
        attr_specs = data["attributes"]
    except (KeyError, TypeError) as exc:
        raise SchemaError("schema JSON is missing the 'attributes' key") from exc
    collections = []
    for spec in attr_specs:
        att = Attribute(spec["name"], spec["values"])
        collections.append(SubsetCollection(att, spec.get("subsets", ())))
    return Schema(collections, data.get("private_attributes", ()))


def write_schema_json(schema: Schema, path: str | Path) -> None:
    """Write a schema to a JSON file."""
    Path(path).write_text(json.dumps(schema_to_dict(schema), indent=2))


def read_schema_json(path: str | Path) -> Schema:
    """Read a schema from a JSON file."""
    return schema_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------- #
# plain tables <-> CSV
# ---------------------------------------------------------------------- #


def write_table_csv(table: Table, path: str | Path) -> None:
    """Write a table (public + private columns) to CSV with a header row."""
    with open(path, "w", newline="") as fh:
        _write_table(table, fh)


def _write_table(table: Table, fh: TextIO) -> None:
    writer = csv.writer(fh)
    schema = table.schema
    writer.writerow(list(schema.attribute_names) + list(schema.private_attributes))
    for i, row in enumerate(table.rows):
        priv = table.private_rows[i] if table.private_rows else ()
        writer.writerow(list(row) + list(priv))


def read_table_csv(schema: Schema, path: str | Path) -> Table:
    """Read a table written by :func:`write_table_csv`.

    The header must list the schema's public attributes (in order) followed
    by its private attributes.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        expected = list(schema.attribute_names) + list(schema.private_attributes)
        if header != expected:
            raise SchemaError(
                f"CSV header {header} does not match schema columns {expected}"
            )
        r = schema.num_attributes
        rows, private_rows = [], []
        for line in reader:
            rows.append(line[:r])
            private_rows.append(line[r:])
    priv = private_rows if schema.private_attributes else None
    return Table(schema, rows, priv)


# ---------------------------------------------------------------------- #
# generalized tables <-> CSV
# ---------------------------------------------------------------------- #


def write_generalized_csv(
    gtable: GeneralizedTable,
    path: str | Path,
    private_rows: Sequence[Sequence[str]] | None = None,
) -> None:
    """Write an anonymized release to CSV.

    Cells use the compact node labels; private columns (if given) are
    appended verbatim, which is how the paper's scenario publishes the
    sensitive attributes alongside generalized quasi-identifiers.
    """
    schema = gtable.schema
    if private_rows is not None and len(private_rows) != gtable.num_records:
        raise SchemaError(
            f"{gtable.num_records} generalized records but "
            f"{len(private_rows)} private rows"
        )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            list(schema.attribute_names)
            + (list(schema.private_attributes) if private_rows is not None else [])
        )
        for i, rec in enumerate(gtable.records):
            row = list(rec.labels())
            if private_rows is not None:
                row += list(private_rows[i])
            writer.writerow(row)


def _parse_cell(coll: SubsetCollection, cell: str) -> int:
    """Parse a node label back to its node index."""
    att = coll.attribute
    if cell == "*":
        return coll.full_node
    if cell in att:
        return coll.singleton_node(att.index_of(cell))
    if cell.startswith("{") and cell.endswith("}"):
        values = cell[1:-1].split("|")
        return coll.node_of_values(values)
    if "-" in cell:
        lo_s, _, hi_s = cell.partition("-")
        try:
            lo, hi = int(lo_s), int(hi_s)
        except ValueError:
            raise SchemaError(
                f"cannot parse generalized cell {cell!r} for attribute {att.name!r}"
            ) from None
        values = [str(v) for v in range(lo, hi + 1) if str(v) in att]
        return coll.node_of_values(values)
    raise SchemaError(
        f"cannot parse generalized cell {cell!r} for attribute {att.name!r}"
    )


def read_generalized_csv(schema: Schema, path: str | Path) -> GeneralizedTable:
    """Read an anonymized release written by :func:`write_generalized_csv`.

    Private columns, if present in the file, are ignored here — use
    :func:`read_table_csv` semantics for them if needed.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        names = list(schema.attribute_names)
        if header[: len(names)] != names:
            raise SchemaError(
                f"CSV header {header} does not start with schema columns {names}"
            )
        records = []
        for line in reader:
            nodes = [
                _parse_cell(coll, cell)
                for coll, cell in zip(schema.collections, line)
            ]
            records.append(GeneralizedRecord(schema, nodes))
    return GeneralizedTable(schema, records)
