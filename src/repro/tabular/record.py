"""Records and generalized records.

A *record* (the paper's ``R_i``) is a tuple of values, one per public
attribute.  A *generalized record* (``R̄_i``) is a tuple of permissible
subsets, referenced by their node indices in each attribute's
:class:`~repro.tabular.hierarchy.SubsetCollection`.

These classes are thin, hashable value objects used at the API boundary;
the O(n²) algorithms work on the numpy encoding instead
(:mod:`repro.tabular.encoding`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.tabular.table import Schema


class GeneralizedRecord:
    """A generalized record: one permissible subset (node) per attribute.

    Instances are immutable and hashable; two generalized records over the
    same schema are equal iff they pick the same node in every attribute.
    """

    __slots__ = ("_schema", "_nodes")

    def __init__(self, schema: "Schema", nodes: Sequence[int]) -> None:
        if len(nodes) != len(schema.collections):
            raise SchemaError(
                f"expected {len(schema.collections)} nodes, got {len(nodes)}"
            )
        for node, coll in zip(nodes, schema.collections):
            if not 0 <= node < coll.num_nodes:
                raise SchemaError(
                    f"node {node} out of range for attribute "
                    f"{coll.attribute.name!r} ({coll.num_nodes} nodes)"
                )
        self._schema = schema
        self._nodes = tuple(int(n) for n in nodes)

    @property
    def schema(self) -> "Schema":
        """The schema the record's nodes refer to."""
        return self._schema

    @property
    def nodes(self) -> tuple[int, ...]:
        """Per-attribute node indices."""
        return self._nodes

    def values(self, attribute_index: int) -> frozenset[str]:
        """The value subset this record holds in the given attribute."""
        coll = self._schema.collections[attribute_index]
        return coll.node_values(self._nodes[attribute_index])

    def generalizes(self, record: Sequence[str]) -> bool:
        """Consistency check (Definition 3.3): does this generalized record
        generalize the plain record ``record``?"""
        collections = self._schema.collections
        if len(record) != len(collections):
            raise SchemaError(
                f"record has {len(record)} values, schema has {len(collections)}"
            )
        for value, node, coll in zip(record, self._nodes, collections):
            if not coll.contains_value(node, coll.attribute.index_of(value)):
                return False
        return True

    def generalizes_record(self, other: "GeneralizedRecord") -> bool:
        """Whether every subset of ``self`` contains the matching subset of
        ``other`` (i.e. ``self`` is at least as general as ``other``)."""
        for coll, mine, theirs in zip(
            self._schema.collections, self._nodes, other._nodes
        ):
            if not coll.node_indices(theirs) <= coll.node_indices(mine):
                return False
        return True

    def join(self, other: "GeneralizedRecord") -> "GeneralizedRecord":
        """The minimal generalized record generalizing both operands —
        the paper's ``R̄_i + R̄_j`` operator (Section V-C)."""
        if other._schema is not self._schema:
            raise SchemaError(
                "cannot join generalized records from different schemas"
            )
        nodes = [
            coll.join(a, b)
            for coll, a, b in zip(self._schema.collections, self._nodes, other._nodes)
        ]
        return GeneralizedRecord(self._schema, nodes)

    def labels(self) -> tuple[str, ...]:
        """Human-readable labels, one per attribute."""
        return tuple(
            coll.node_label(node)
            for coll, node in zip(self._schema.collections, self._nodes)
        )

    def __iter__(self) -> Iterator[int]:
        return iter(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRecord):
            return NotImplemented
        return self._schema is other._schema and self._nodes == other._nodes

    def __hash__(self) -> int:
        return hash((id(self._schema), self._nodes))

    def __repr__(self) -> str:
        return "(" + ", ".join(self.labels()) + ")"


def record_as_generalized(schema: "Schema", record: Sequence[str]) -> GeneralizedRecord:
    """Embed a plain record as a generalized record of singletons."""
    nodes = []
    for value, coll in zip(record, schema.collections):
        nodes.append(coll.singleton_node(coll.attribute.index_of(value)))
    return GeneralizedRecord(schema, nodes)
