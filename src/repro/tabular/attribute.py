"""Attribute domains.

An :class:`Attribute` is a named, finite, ordered domain of values — the
``A_j`` of Section III of the paper.  Values are kept as strings at the API
level; the numeric encoding used by the algorithms lives in
:mod:`repro.tabular.encoding`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError


class Attribute:
    """A finite attribute domain ``A_j = {a_{j,1}, ..., a_{j,m_j}}``.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"age"`` or ``"zipcode"``.
    values:
        The domain, in a fixed order.  Order matters only for display and
        for deterministic tie-breaking; the paper treats domains as sets.

    Raises
    ------
    SchemaError
        If the domain is empty or contains duplicate values.
    """

    __slots__ = ("_name", "_values", "_index")

    def __init__(self, name: str, values: Sequence[str]) -> None:
        if not name:
            raise SchemaError("attribute name must be non-empty")
        values = tuple(str(v) for v in values)
        if not values:
            raise SchemaError(f"attribute {name!r} has an empty domain")
        index = {v: i for i, v in enumerate(values)}
        if len(index) != len(values):
            seen: set[str] = set()
            dupes = sorted({v for v in values if v in seen or seen.add(v)})
            raise SchemaError(f"attribute {name!r} has duplicate values: {dupes}")
        self._name = name
        self._values = values
        self._index = index

    @property
    def name(self) -> str:
        """The attribute's name."""
        return self._name

    @property
    def values(self) -> tuple[str, ...]:
        """The full domain, in definition order."""
        return self._values

    @property
    def size(self) -> int:
        """Number of values ``m_j`` in the domain."""
        return len(self._values)

    def index_of(self, value: str) -> int:
        """Return the integer code of ``value``.

        Raises
        ------
        SchemaError
            If ``value`` is not in the domain.
        """
        try:
            return self._index[value]
        except KeyError:
            raise SchemaError(
                f"value {value!r} is not in the domain of attribute {self._name!r}"
            ) from None

    def __contains__(self, value: object) -> bool:
        return value in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self._name == other._name and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._name, self._values))

    def __repr__(self) -> str:
        if len(self._values) <= 6:
            dom = ", ".join(self._values)
        else:
            dom = ", ".join(self._values[:3]) + f", ... ({len(self._values)} values)"
        return f"Attribute({self._name!r}: {dom})"


def integer_attribute(name: str, low: int, high: int) -> Attribute:
    """Build an attribute whose domain is the integers ``low..high`` inclusive.

    Convenience for numeric quasi-identifiers such as ``age``; the values
    are stored as their decimal string representations.
    """
    if high < low:
        raise SchemaError(f"integer attribute {name!r}: high {high} < low {low}")
    return Attribute(name, [str(v) for v in range(low, high + 1)])


def validate_values(attribute: Attribute, values: Iterable[str]) -> None:
    """Raise :class:`SchemaError` unless every value lies in the domain."""
    for v in values:
        if v not in attribute:
            raise SchemaError(
                f"value {v!r} is not in the domain of attribute {attribute.name!r}"
            )
