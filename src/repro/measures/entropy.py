"""The entropy measure Π_E of Definition 4.3 (from Gionis & Tassa [10]).

The cost of publishing a subset ``B`` in attribute ``A_j`` is the
conditional entropy ``H(X_j | B)`` of the attribute's empirical
distribution restricted to ``B``:

    H(X_j | B) = − Σ_{b∈B} Pr(b | B) · log2 Pr(b | B),
    Pr(b | B) = count(b) / count(B).

Singletons cost 0; the full domain costs the attribute's entropy.  The
measure is data-dependent: generalizing into a subset dominated by one
frequent value is nearly free, which is exactly the property that makes
Π_E "more accurate" than structural measures (Section II).
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import LossMeasure, RecordLossMeasure
from repro.tabular.encoding import EncodedAttribute


def _conditional_entropy(counts: np.ndarray) -> float:
    """Entropy (bits) of the distribution proportional to ``counts``.

    A subset none of whose values occurs in the table has an undefined
    conditional distribution; we fall back to the uniform distribution
    over the subset (``log2 |B|``), the maximum-entropy completion.
    """
    total = counts.sum()
    if total == 0:
        return float(np.log2(len(counts))) if len(counts) > 1 else 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def node_costs_reference(
    attribute: EncodedAttribute, value_counts: np.ndarray
) -> np.ndarray:
    """Per-node Π_E costs, one linear node scan per node.

    The straightforward O(nodes · values) loop; kept as the semantic
    reference for the vectorized :meth:`EntropyMeasure.node_costs` (the
    ``entropy-node-costs`` benchmark pair and the equivalence tests
    compare the two).
    """
    coll = attribute.collection
    costs = np.empty(attribute.num_nodes, dtype=np.float64)
    for node in range(attribute.num_nodes):
        members = sorted(coll.node_indices(node))
        costs[node] = _conditional_entropy(value_counts[members])
    return costs


def entry_costs_reference(
    attribute: EncodedAttribute, value_counts: np.ndarray
) -> np.ndarray:
    """Per-(value, node) non-uniform entropy costs, nested Python loops.

    Reference implementation for the vectorized
    :meth:`NonUniformEntropyMeasure.entry_costs` (the
    ``entropy-entry-costs`` benchmark pair compares the two).
    """
    coll = attribute.collection
    m, n_nodes = attribute.num_values, attribute.num_nodes
    table = np.full((m, n_nodes), np.inf, dtype=np.float64)
    for node in range(n_nodes):
        members = sorted(coll.node_indices(node))
        total = value_counts[members].sum()
        for v in members:
            if value_counts[v] > 0 and total > 0:
                table[v, node] = -np.log2(value_counts[v] / total)
            else:
                # Value absent from the data: uniform fallback, matching
                # _conditional_entropy's convention.
                table[v, node] = np.log2(len(members)) if len(members) > 1 else 0.0
    return table


class EntropyMeasure(LossMeasure):
    """Π_E — the entropy information-loss measure (eq. 3)."""

    name = "entropy"

    # Data-dependent: the conditional entropy of a subset can *drop*
    # when a dominant value joins it, and is bounded by log2(domain)
    # rather than 1 — so neither soundness flag holds (REP005 requires
    # the claims to be stated, not inherited).
    monotone = False
    bounded_unit = False

    def node_costs(
        self, attribute: EncodedAttribute, value_counts: np.ndarray
    ) -> np.ndarray:
        # Vectorized over the whole (value, node) membership table: one
        # masked [m, nodes] matrix instead of a Python loop with a node
        # scan per node (see node_costs_reference for the loop form).
        anc = attribute.anc
        counts = np.where(anc, value_counts[:, np.newaxis], 0).astype(np.float64)
        totals = counts.sum(axis=0)
        p = counts / np.where(totals > 0.0, totals, 1.0)
        # log2 via a guard value of 1.0 so the zero entries contribute
        # exact zeros (p * log2(1) == 0) without divide-by-zero warnings.
        plogp = p * np.log2(np.where(p > 0.0, p, 1.0))
        costs = -plogp.sum(axis=0)
        empty = totals == 0.0
        if empty.any():
            sizes = attribute.sizes.astype(np.float64)
            costs[empty] = np.where(
                sizes[empty] > 1.0, np.log2(np.maximum(sizes[empty], 1.0)), 0.0
            )
        # -0.0 from the negated sum of exact zeros → normalize to +0.0.
        return costs + 0.0


class NonUniformEntropyMeasure(RecordLossMeasure):
    """The non-uniform entropy measure of [10] — entry-level, eval-only.

    The cost of publishing subset ``B`` for a record whose true value is
    ``v ∈ B`` is ``−log2 Pr(X_j = v | X_j ∈ B)``: the number of bits an
    observer still lacks to pin down the exact value.  Unlike Π_E this
    charges rare values more than frequent ones, so it cannot be expressed
    as a function of the closure alone and is used only to *score*
    finished generalizations.
    """

    name = "nonuniform-entropy"

    def entry_costs(
        self, attribute: EncodedAttribute, value_counts: np.ndarray
    ) -> np.ndarray:
        # Vectorized form of entry_costs_reference: the membership table
        # ``anc`` gives every (value, node) pair at once, and the float
        # sums/divisions are exact integer arithmetic below 2^53, so the
        # result is bit-identical to the nested-loop reference.
        anc = attribute.anc
        counts = np.where(anc, value_counts[:, np.newaxis], 0).astype(np.float64)
        totals = counts.sum(axis=0)
        valid = anc & (value_counts[:, np.newaxis] > 0) & (totals[np.newaxis, :] > 0.0)
        ratio = counts / np.where(totals > 0.0, totals, 1.0)
        table = np.full(anc.shape, np.inf, dtype=np.float64)
        table[valid] = -np.log2(ratio[valid])
        # Value absent from the data (or empty node): uniform fallback,
        # matching _conditional_entropy's convention.
        sizes = attribute.sizes.astype(np.float64)
        fallback_cost = np.where(
            sizes > 1.0, np.log2(np.maximum(sizes, 1.0)), 0.0
        )
        fallback = anc & ~valid
        return np.where(fallback, fallback_cost[np.newaxis, :], table)
