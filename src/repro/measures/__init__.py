"""Information-loss measures (Section IV of the paper, plus related work).

* :class:`EntropyMeasure` — Π_E, eq. (3), the paper's primary measure.
* :class:`LMMeasure` — Π_LM, eq. (4).
* :class:`TreeMeasure` — the hierarchy-level measure of Aggarwal et al.
* :class:`NonUniformEntropyMeasure` — entry-level measure of [10]
  (evaluation only).
* :class:`DiscernibilityMeasure` / :class:`ClassificationMeasure` —
  DM [6] and CM [11], clustering-level (evaluation only).

A :class:`CostModel` binds a node-decomposable measure to an encoded
table; it is the object all core algorithms consume.
"""

from repro.measures.base import (
    ClusteringMeasure,
    CostModel,
    LossMeasure,
    RecordLossMeasure,
    evaluate_record_measure,
)
from repro.measures.classification import ClassificationMeasure
from repro.measures.discernibility import DiscernibilityMeasure
from repro.measures.entropy import EntropyMeasure, NonUniformEntropyMeasure
from repro.measures.lm import LMMeasure
from repro.measures.registry import get_measure, measure_names
from repro.measures.suppression import SuppressionMeasure
from repro.measures.tree import TreeMeasure

__all__ = [
    "LossMeasure",
    "RecordLossMeasure",
    "ClusteringMeasure",
    "CostModel",
    "evaluate_record_measure",
    "EntropyMeasure",
    "NonUniformEntropyMeasure",
    "LMMeasure",
    "TreeMeasure",
    "SuppressionMeasure",
    "DiscernibilityMeasure",
    "ClassificationMeasure",
    "get_measure",
    "measure_names",
]
