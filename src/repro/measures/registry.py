"""Measure registry: look up loss measures by name.

The experiment harness and CLI refer to measures by short string names
("entropy"/"em", "lm", "tree"); this module resolves them.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.measures.base import LossMeasure
from repro.measures.entropy import EntropyMeasure
from repro.measures.lm import LMMeasure
from repro.measures.suppression import SuppressionMeasure
from repro.measures.tree import TreeMeasure

_MEASURES: dict[str, type[LossMeasure]] = {
    "entropy": EntropyMeasure,
    "em": EntropyMeasure,
    "lm": LMMeasure,
    "tree": TreeMeasure,
    "mw": SuppressionMeasure,
    "suppression": SuppressionMeasure,
}


def get_measure(name: str) -> LossMeasure:
    """Instantiate the node-decomposable loss measure called ``name``.

    Accepted names: ``entropy`` (alias ``em``), ``lm``, ``tree``,
    ``mw`` (alias ``suppression``).

    Raises
    ------
    ExperimentError
        For unknown names, listing the known ones.
    """
    try:
        cls = _MEASURES[name.lower()]
    except KeyError:
        known = sorted(set(_MEASURES))
        raise ExperimentError(
            f"unknown measure {name!r}; known measures: {known}"
        ) from None
    return cls()


def measure_names() -> list[str]:
    """Canonical measure names (without aliases)."""
    return ["entropy", "lm", "tree", "mw"]
