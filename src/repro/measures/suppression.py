"""The Meyerson–Williams generalization-count measure.

The paper's related work (§II, §IV) starts from Meyerson & Williams
[16], whose model allows only suppression and whose cost "simply
counted the number of suppressed entries".  As a node-decomposable
measure over arbitrary collections this becomes: an entry costs 1 as
soon as it is generalized at all, 0 if published exactly.  On
suppression-only collections (singletons + full set) it *is* the MW
suppression count, normalized by the n·r entries; on richer collections
it counts generalized entries — the bluntest instrument in the measure
family and a useful stress test for the algorithms (its node costs are
0/1-valued, so distance functions see many exact ties).
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import LossMeasure
from repro.tabular.encoding import EncodedAttribute


class SuppressionMeasure(LossMeasure):
    """Fraction of table entries that were generalized at all.

    Equals the Meyerson–Williams suppressed-entry count (divided by
    ``n·r``) whenever the collections are suppression-only.
    """

    name = "mw"
    monotone = True
    bounded_unit = True

    def node_costs(
        self, attribute: EncodedAttribute, value_counts: np.ndarray
    ) -> np.ndarray:
        return (attribute.sizes > 1).astype(np.float64)
