"""The tree measure of Aggarwal et al. [2, 3].

Generalizing an entry to a node of the hierarchy tree is charged in
proportion to how many levels were climbed: singletons cost 0, the root
(total suppression) costs 1, and an internal node at depth ``d`` (from
the root) in a tree of height ``h`` costs ``(h − d) / h``.

Only defined for laminar collections (which all the paper's collections
are); for non-laminar ones the registry will refuse it and the LM measure
is the structural fallback.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemaError
from repro.measures.base import LossMeasure
from repro.tabular.encoding import EncodedAttribute


class TreeMeasure(LossMeasure):
    """The hierarchy-level tree measure used by the forest algorithm's
    original analysis [2, 3]."""

    name = "tree"
    monotone = True
    bounded_unit = True

    def node_costs(
        self, attribute: EncodedAttribute, value_counts: np.ndarray
    ) -> np.ndarray:
        coll = attribute.collection
        if not coll.is_laminar:
            raise SchemaError(
                f"the tree measure requires a laminar hierarchy; attribute "
                f"{coll.attribute.name!r} has a non-laminar collection"
            )
        height = coll.height()
        costs = np.empty(attribute.num_nodes, dtype=np.float64)
        for node in range(attribute.num_nodes):
            if coll.node_size(node) == 1:
                costs[node] = 0.0
            elif height == 0:
                costs[node] = 0.0
            else:
                costs[node] = (height - coll.depth(node)) / height
        return costs
