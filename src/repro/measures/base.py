"""Information-loss measure interfaces and the cost model.

The paper evaluates anonymizations with measures of the form

    Π(D, g(D)) = (1/n) Σ_i c(R̄_i),    c(R̄) = (1/r) Σ_j cost_j(R̄(j))

(eq. 3, 4, 7): the per-record cost is the mean, over attributes, of a cost
that depends only on the chosen generalized subset.  A
:class:`LossMeasure` therefore boils down to one vector per attribute —
the cost of each permissible subset ("node") — and a :class:`CostModel`
binds those vectors to an encoded table so that record, cluster and table
costs become numpy lookups.

Two further interfaces cover the related-work measures that do not fit
the node-cost mold: :class:`RecordLossMeasure` (per-entry cost that also
depends on the original value, e.g. non-uniform entropy [10]) and
:class:`ClusteringMeasure` (cost of a clustering as a whole, e.g. DM [6]
and CM [11]).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import SchemaError
from repro.tabular.encoding import EncodedAttribute, EncodedTable


class LossMeasure(ABC):
    """A node-decomposable information-loss measure.

    Subclasses implement :meth:`node_costs`; everything else (record,
    cluster, table costs; distance functions; all of Section V) is generic.
    """

    #: Short identifier used by the registry and in experiment reports.
    name: str = "abstract"

    #: Whether node costs are monotone under subset containment
    #: (B ⊆ B' implies cost(B) ≤ cost(B')).  True for the structural
    #: measures (LM, tree, MW); false for the data-dependent entropy
    #: measure, whose cost can *drop* when a dominant value joins a
    #: subset.  The verification harness checks the claim when set.
    monotone: bool = False

    #: Whether node costs always lie in [0, 1].  True for the structural
    #: measures; false for entropy, which is bounded by log2 of the
    #: domain size instead.  Checked by the verification harness.
    bounded_unit: bool = False

    @abstractmethod
    def node_costs(
        self, attribute: EncodedAttribute, value_counts: np.ndarray
    ) -> np.ndarray:
        """Per-node cost vector for one attribute.

        Parameters
        ----------
        attribute:
            The encoded attribute (node sizes, domain size, ...).
        value_counts:
            Empirical count of each domain value in the table — the
            distribution ``Pr(X_j = a)`` of Definition 4.3.

        Returns
        -------
        ``float64[num_nodes]`` with ``cost[singleton] == 0`` expected of
        any sane measure (no generalization, no loss).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RecordLossMeasure(ABC):
    """An entry-level measure: cost depends on (original value, node).

    Evaluation-only — these measures cannot drive the clustering
    algorithms (their cluster cost is not a function of the closure
    alone), but :func:`evaluate_record_measure` scores any finished
    generalization with them.
    """

    name: str = "abstract-record"

    @abstractmethod
    def entry_costs(
        self, attribute: EncodedAttribute, value_counts: np.ndarray
    ) -> np.ndarray:
        """``float64[num_values, num_nodes]`` cost of publishing node ``b``
        for a record whose true value is ``v``.  Entries with ``v ∉ b``
        are never read and may hold anything (conventionally ``inf``)."""


class ClusteringMeasure(ABC):
    """A measure of a clustering as a whole (DM, CM).

    Evaluation-only; see :mod:`repro.measures.discernibility` and
    :mod:`repro.measures.classification`.
    """

    name: str = "abstract-clustering"

    @abstractmethod
    def clustering_cost(
        self, enc: EncodedTable, clusters: Sequence[Sequence[int]]
    ) -> float:
        """Cost of a partition of the records into clusters."""


class CostModel:
    """A :class:`LossMeasure` bound to an :class:`EncodedTable`.

    Precomputes the per-attribute node-cost vectors once; all cost queries
    after that are numpy fancy-indexing.  This object is what every
    algorithm in :mod:`repro.core` consumes.

    Parameters
    ----------
    enc, measure:
        The table and the loss measure.
    weights:
        Optional per-attribute importance weights.  The paper's measures
        weigh attributes uniformly (the ``1/r`` in eqs. 3–4); passing
        weights reweighs them (normalized to sum to 1), so e.g. a
         5-identifying ``age`` can count five times a binary ``sex``.
        The weights are folded into the node-cost vectors, so every
        algorithm transparently optimizes the weighted objective.
    """

    __slots__ = ("enc", "measure", "node_costs", "weights")

    def __init__(
        self,
        enc: EncodedTable,
        measure: LossMeasure,
        weights: Sequence[float] | None = None,
    ) -> None:
        self.enc = enc
        self.measure = measure
        r = enc.num_attributes
        if weights is None:
            scale = np.full(r, 1.0, dtype=np.float64)
        else:
            scale = np.asarray(weights, dtype=np.float64)
            if scale.shape != (r,):
                raise SchemaError(
                    f"{scale.size} weights for {r} attributes"
                )
            if (scale < 0).any() or scale.sum() <= 0:
                raise SchemaError(
                    "attribute weights must be non-negative with positive sum"
                )
            # Normalize so Π keeps the per-entry-average interpretation.
            scale = scale * (r / scale.sum())
        self.weights = scale
        costs = []
        for j, (att, counts) in enumerate(zip(enc.attrs, enc.value_counts)):
            vec = np.asarray(
                measure.node_costs(att, counts), dtype=np.float64
            )
            if vec.shape != (att.num_nodes,):
                raise SchemaError(
                    f"measure {measure.name!r} returned shape {vec.shape} for an "
                    f"attribute with {att.num_nodes} nodes"
                )
            costs.append(vec * scale[j])
        self.node_costs: tuple[np.ndarray, ...] = tuple(costs)

    # ------------------------------------------------------------------ #
    # cost queries
    # ------------------------------------------------------------------ #

    def record_cost(self, nodes: np.ndarray) -> np.ndarray | float:
        """c(R̄) for one node vector ``[r]`` or many ``[*, r]``.

        The cost is the mean of per-attribute node costs, matching the
        ``1/r`` normalization in eqs. (3) and (4).
        """
        nodes = np.asarray(nodes)
        r = len(self.node_costs)
        if nodes.ndim == 1:
            return float(
                sum(self.node_costs[j][nodes[j]] for j in range(r)) / r
            )
        total = np.zeros(nodes.shape[:-1], dtype=np.float64)
        for j in range(r):
            total += self.node_costs[j][nodes[..., j]]
        return total / r

    def table_cost(self, node_matrix: np.ndarray) -> float:
        """Π(D, g(D)) of a full ``[n, r]`` node matrix (eq. 3 / 4 form)."""
        node_matrix = np.asarray(node_matrix)
        if node_matrix.shape[0] != self.enc.num_records:
            raise SchemaError(
                f"node matrix has {node_matrix.shape[0]} rows, table has "
                f"{self.enc.num_records} records"
            )
        costs = self.record_cost(node_matrix)
        return float(np.mean(costs))

    def cluster_cost(self, record_indices: Sequence[int]) -> float:
        """d(S) = c(closure(S)) for a set of record indices (eq. 7)."""
        nodes = self.enc.closure_of_records(record_indices)
        return float(self.record_cost(nodes))

    def clustering_cost(self, clusters: Sequence[Sequence[int]]) -> float:
        """Π of the generalization induced by a clustering:
        Σ_S |S|·d(S) / n  (eq. 7)."""
        n = self.enc.num_records
        total = 0.0
        covered = 0
        for cluster in clusters:
            total += len(cluster) * self.cluster_cost(cluster)
            covered += len(cluster)
        if covered != n:
            raise SchemaError(
                f"clustering covers {covered} records, table has {n}"
            )
        return total / n


def evaluate_record_measure(
    enc: EncodedTable, measure: RecordLossMeasure, node_matrix: np.ndarray
) -> float:
    """Score a finished generalization with an entry-level measure.

    Returns the mean entry cost over all n·r entries, the direct analogue
    of eqs. (3)/(4) for value-dependent costs.
    """
    node_matrix = np.asarray(node_matrix)
    n, r = node_matrix.shape
    if n != enc.num_records or r != enc.num_attributes:
        raise SchemaError(
            f"node matrix has shape {node_matrix.shape}, expected "
            f"{(enc.num_records, enc.num_attributes)}"
        )
    total = 0.0
    for j, (att, counts) in enumerate(zip(enc.attrs, enc.value_counts)):
        table = np.asarray(measure.entry_costs(att, counts), dtype=np.float64)
        total += float(table[enc.codes[:, j], node_matrix[:, j]].sum())
    return total / (n * r)
