"""The CM (classification) measure of Iyengar [11].

Each record is charged 1 if its class label (a designated private
attribute) differs from the majority label of the cluster it is published
in; the cost is the fraction of penalized records.  CM measures how much
an anonymization hurts a downstream classifier trained on the release —
the paper cites it among the historical cost metrics, and the CMC dataset
(whose class is the contraceptive-method choice) is its natural home.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.errors import SchemaError
from repro.measures.base import ClusteringMeasure
from repro.tabular.encoding import EncodedTable


class ClassificationMeasure(ClusteringMeasure):
    """CM — fraction of records outvoted on their class label within
    their cluster.

    Parameters
    ----------
    class_attribute:
        Name of the private attribute holding the class label.  Defaults
        to the schema's first private attribute.
    """

    name = "cm"

    def __init__(self, class_attribute: str | None = None) -> None:
        self._class_attribute = class_attribute

    def _labels(self, enc: EncodedTable) -> list[str]:
        schema = enc.schema
        if not schema.private_attributes:
            raise SchemaError(
                "the CM measure needs a private class attribute, but the "
                "schema declares none"
            )
        name = self._class_attribute or schema.private_attributes[0]
        try:
            col = schema.private_attributes.index(name)
        except ValueError:
            raise SchemaError(
                f"no private attribute named {name!r} "
                f"(have {schema.private_attributes})"
            ) from None
        return [row[col] for row in enc.table.private_rows]

    def clustering_cost(
        self, enc: EncodedTable, clusters: Sequence[Sequence[int]]
    ) -> float:
        labels = self._labels(enc)
        n = enc.num_records
        covered = sum(len(c) for c in clusters)
        if covered != n:
            raise SchemaError(
                f"clustering covers {covered} records, table has {n}"
            )
        penalty = 0
        for cluster in clusters:
            counts = Counter(labels[i] for i in cluster)
            majority = counts.most_common(1)[0][1]
            penalty += len(cluster) - majority
        return penalty / n
