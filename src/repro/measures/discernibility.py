"""The DM (discernibility) measure of Bayardo & Agrawal [6].

Each record is charged the size of the equivalence class (cluster) it is
published in, so a clustering costs ``Σ_S |S|²``.  DM cares only about
class sizes, never about how much the values were generalized — the paper
cites it as a historical cost metric, and we expose it (normalized by
``n²`` so results are comparable across table sizes) for the ablation
benches.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchemaError
from repro.measures.base import ClusteringMeasure
from repro.tabular.encoding import EncodedTable


class DiscernibilityMeasure(ClusteringMeasure):
    """DM — sum of squared cluster sizes, normalized to [1/n, 1]."""

    name = "dm"

    def clustering_cost(
        self, enc: EncodedTable, clusters: Sequence[Sequence[int]]
    ) -> float:
        n = enc.num_records
        covered = sum(len(c) for c in clusters)
        if covered != n:
            raise SchemaError(
                f"clustering covers {covered} records, table has {n}"
            )
        return sum(len(c) ** 2 for c in clusters) / (n * n)
