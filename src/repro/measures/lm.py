"""The LM (loss metric) measure of Iyengar [11] / Nergiz–Clifton [17].

Each entry is charged ``(|B| − 1) / (|A_j| − 1)`` — 0 for an unmodified
value, 1 for total suppression, linear in between (eq. 4).  Purely
structural: it looks only at subset sizes, never at the data
distribution, and the paper calls it "the most accurate measure from
among" the structural family.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import LossMeasure
from repro.tabular.encoding import EncodedAttribute


class LMMeasure(LossMeasure):
    """Π_LM — the loss-metric measure (eq. 4)."""

    name = "lm"
    monotone = True
    bounded_unit = True

    def node_costs(
        self, attribute: EncodedAttribute, value_counts: np.ndarray
    ) -> np.ndarray:
        m = attribute.num_values
        sizes = attribute.sizes.astype(np.float64)
        if m == 1:
            # A one-value domain cannot be generalized; nothing is lost.
            return np.zeros(attribute.num_nodes, dtype=np.float64)
        return (sizes - 1.0) / (m - 1.0)
