"""Plain-text table formatting for reports.

Everything the library prints in tabular form goes through
:func:`format_table`, so the output lines up whether it lands in a
terminal, a log file or EXPERIMENTS.md.  This module lives at the
bottom of the import DAG (it depends on nothing) because presentation
helpers are needed below the experiment layer too — dataset
descriptions and utility summaries format tables as well, and importing
:mod:`repro.experiments` from those layers would be a layering
back-edge (see ``repro.analysis.layers``).
"""

from __future__ import annotations

from typing import Sequence


def format_value(value: object, precision: int = 2) -> str:
    """Render one cell: floats rounded, everything else str()'d."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    indent: str = "",
) -> str:
    """Render an aligned text table with a header rule.

    The first column is left-aligned (labels), the rest right-aligned
    (numbers) — the layout of the paper's Table I.
    """
    cells = [[format_value(v, precision) for v in row] for row in rows]
    all_rows = [list(headers)] + cells
    widths = [
        max(len(row[c]) for row in all_rows) for c in range(len(headers))
    ]

    def render(row: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(row):
            if c == 0:
                parts.append(cell.ljust(widths[c]))
            else:
                parts.append(cell.rjust(widths[c]))
        return indent + "  ".join(parts).rstrip()

    out = [render(list(headers))]
    out.append(indent + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    out.extend(render(row) for row in cells)
    return "\n".join(out)


def format_kv_block(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    """A titled key/value block for run metadata."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title, "-" * len(title)]
    lines.extend(f"{k.ljust(width)} : {format_value(v, 4)}" for k, v in pairs)
    return "\n".join(lines)
