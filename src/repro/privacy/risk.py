"""Re-identification risk metrics on top of the adversary models.

The disclosure-control literature summarizes linkage attacks with
scalar risks; this module computes the standard ones from the
candidate sets produced by :class:`~repro.privacy.adversary.Adversary1`
and :class:`~repro.privacy.adversary.Adversary2`:

* **prosecutor risk** — the attacker targets a *specific* person known
  to be in the table; their re-identification probability is
  ``1 / |candidates|``.  Reported as max (worst record) and mean.
* **journalist risk** — the attacker targets whoever is easiest; equal
  to the prosecutor maximum under our models (the worst record's risk).
* **marketer risk** — the attacker links *everyone* and profits per
  correct match; the expected fraction of correct links is the mean of
  ``1 / |candidates|``.

A k-type guarantee at level k caps all three at ``1/k``, which is
exactly the quantitative content of the paper's anonymity notions —
(1,k) caps them for adversary 1, global (1,k) for adversary 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.privacy.adversary import Adversary1, Adversary2, LinkageResult
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class RiskProfile:
    """Scalar re-identification risks for one adversary."""

    adversary: str
    prosecutor_max: float  #: worst single record's risk, = journalist risk
    prosecutor_mean: float  #: average targeted risk
    marketer: float  #: expected fraction of correct mass links
    records_at_max: int  #: how many records attain the worst risk

    @property
    def journalist(self) -> float:
        """Journalist risk (the easiest target's risk)."""
        return self.prosecutor_max

    def satisfies(self, k: int) -> bool:
        """Whether every record's risk is capped at 1/k."""
        return self.prosecutor_max <= 1.0 / k + 1e-12

    def format_line(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.adversary}: prosecutor max {self.prosecutor_max:.3f} "
            f"({self.records_at_max} record(s)), mean "
            f"{self.prosecutor_mean:.3f}, marketer {self.marketer:.3f}"
        )


def risk_from_linkage(result: LinkageResult) -> RiskProfile:
    """Risks implied by one adversary's candidate sets."""
    counts = result.link_counts().astype(np.float64)
    if counts.size == 0:
        return RiskProfile(result.adversary, 0.0, 0.0, 0.0, 0)
    risks = 1.0 / counts
    max_risk = float(risks.max())
    return RiskProfile(
        adversary=result.adversary,
        prosecutor_max=max_risk,
        prosecutor_mean=float(risks.mean()),
        marketer=float(risks.mean()),
        records_at_max=int((risks >= max_risk - 1e-12).sum()),
    )


def release_risks(
    enc: EncodedTable, node_matrix: np.ndarray
) -> tuple[RiskProfile, RiskProfile]:
    """(adversary-1 risks, adversary-2 risks) of a release.

    Adversary 2's risks are always ≥ adversary 1's: pruning neighbours
    down to matches can only shrink candidate sets.
    """
    adv1 = risk_from_linkage(Adversary1().attack(enc, node_matrix))
    adv2 = risk_from_linkage(Adversary2().attack(enc, node_matrix))
    return adv1, adv2
