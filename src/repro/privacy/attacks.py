"""Constructive demonstrations of the Section IV-A attacks.

Two attacks justify the paper's notion hierarchy:

* :func:`suppressed_tail_generalization` builds the (1,k) counterexample
  — publish n−k records untouched and fully suppress the rest.  The
  result is (1,k)-anonymous with near-zero information loss, yet
  adversary 1's *reverse* linkage re-identifies every untouched record.

* :func:`matching_attack` runs adversary 2's match-pruning attack
  against any generalization — on (k,k) tables it can shrink some
  record's candidate set below k, which is exactly what motivates
  Definition 4.6 and Algorithm 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnonymityError
from repro.privacy.adversary import Adversary1, Adversary2
from repro.tabular.encoding import EncodedTable


def suppressed_tail_generalization(enc: EncodedTable, k: int) -> np.ndarray:
    """The Section IV-A (1,k) counterexample as a node matrix.

    Records ``0..n−k−1`` are published unchanged; records ``n−k..n−1``
    are fully suppressed (every attribute generalized to its full
    domain).  Every original record is then consistent with itself (or a
    suppressed record) plus the k suppressed records — (1,k) holds — but
    the information loss is tiny and the untouched records are exposed.
    """
    n = enc.num_records
    if not 1 <= k <= n:
        raise AnonymityError(f"k={k} must be in 1..{n}")
    nodes = enc.singleton_nodes.copy()
    full = np.array([att.full_node for att in enc.attrs], dtype=np.int32)
    nodes[n - k :] = full
    return nodes


@dataclass(frozen=True)
class ReverseLinkageFinding:
    """Records re-identified by adversary 1's reverse linkage."""

    generalized_index: int  #: index of the published record
    original_index: int  #: the unique individual it belongs to


def reverse_linkage_attack(
    enc: EncodedTable, node_matrix: np.ndarray
) -> list[ReverseLinkageFinding]:
    """Find published records consistent with exactly one individual.

    Each finding is a full re-identification: the published record —
    including its private attributes — can only belong to that one
    individual.  Non-empty output certifies the table is *not*
    (2,1)-anonymous.
    """
    reverse = Adversary1().reverse_attack(enc, node_matrix)
    findings = []
    for j, originals in enumerate(reverse):
        if len(originals) == 1:
            (i,) = originals
            findings.append(ReverseLinkageFinding(j, i))
    return findings


@dataclass(frozen=True)
class MatchingAttackReport:
    """Outcome of adversary 2's match-pruning attack."""

    k: int
    #: records whose candidate set was pruned below k, with the surviving
    #: candidate (match) sets
    victims: dict[int, frozenset[int]]
    #: number of neighbours each victim had before pruning (≥ k on any
    #: (1,k)-anonymous input — the pruning is what does the damage)
    neighbour_counts: dict[int, int]

    @property
    def succeeded(self) -> bool:
        """Whether the attack beat the k-linkage guarantee for anyone."""
        return bool(self.victims)


def matching_attack(
    enc: EncodedTable, node_matrix: np.ndarray, k: int
) -> MatchingAttackReport:
    """Run adversary 2 against a generalization and collect victims.

    On a (k,k)-anonymization the attack may or may not succeed (that is
    the paper's point — (k,k) does not *guarantee* safety here); on a
    global (1,k)-anonymization it provably never does.
    """
    result = Adversary2().attack(enc, node_matrix)
    forward = Adversary1().attack(enc, node_matrix)
    victims: dict[int, frozenset[int]] = {}
    neighbour_counts: dict[int, int] = {}
    for i, matches in enumerate(result.candidates):
        if len(matches) < k:
            victims[i] = matches
            neighbour_counts[i] = len(forward.candidates[i])
    return MatchingAttackReport(k=k, victims=victims, neighbour_counts=neighbour_counts)
