"""Adversary 3 — auxiliary private knowledge (§IV-A, last paragraph).

The paper mentions, and defers to its full version, "an even stronger
adversary — one that also has auxiliary knowledge such as the private
data of some of the individuals in the database".  This module supplies
a concrete model of her:

She has everything adversary 2 has (all public data, the exact database
population, hence the consistency graph), *plus* the true sensitive
value of some individuals.  Since releases publish the sensitive column
verbatim next to the generalized quasi-identifiers, every known
individual u can only correspond to published records carrying u's
sensitive value — so she deletes all other edges at u and recomputes
matches on the pruned graph.  Crucially the pruning *propagates*: fixing
the known individuals' possibilities shrinks the perfect-matching
structure and can cut candidate sets of individuals she knows nothing
about.

The identity correspondence always survives the pruning (each record's
own published row carries its own sensitive value), so the pruned graph
retains a perfect matching and Definition 4.6's match machinery applies
unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import AnonymityError, SchemaError
from repro.matching.allowed import allowed_edges
from repro.matching.bipartite import ConsistencyGraph
from repro.privacy.adversary import LinkageResult
from repro.tabular.encoding import EncodedTable


class Adversary3:
    """Adversary 2 plus known sensitive values for some individuals.

    Parameters
    ----------
    known_records:
        Indices of the individuals whose sensitive value the adversary
        already knows (the values themselves are read off the table's
        private rows — the adversary's knowledge is correct by
        assumption).
    sensitive_attribute:
        Which private column she knows; defaults to the first.
    """

    name = "adversary-3"

    def __init__(
        self,
        known_records: Iterable[int],
        sensitive_attribute: str | None = None,
    ) -> None:
        self.known_records = frozenset(int(i) for i in known_records)
        self.sensitive_attribute = sensitive_attribute

    def _sensitive(self, enc: EncodedTable) -> Sequence[str]:
        schema = enc.schema
        if not schema.private_attributes:
            raise SchemaError(
                "adversary 3 needs a private attribute, but the schema "
                "declares none"
            )
        name = self.sensitive_attribute or schema.private_attributes[0]
        try:
            col = schema.private_attributes.index(name)
        except ValueError:
            raise SchemaError(
                f"no private attribute named {name!r} "
                f"(have {schema.private_attributes})"
            ) from None
        return [row[col] for row in enc.table.private_rows]

    def attack(self, enc: EncodedTable, node_matrix: np.ndarray) -> LinkageResult:
        """Match-based candidates on the auxiliary-pruned graph."""
        n = enc.num_records
        for i in self.known_records:
            if not 0 <= i < n:
                raise AnonymityError(
                    f"known record index {i} out of range 0..{n - 1}"
                )
        sensitive = self._sensitive(enc)
        graph = ConsistencyGraph(enc, node_matrix)
        adjacency = []
        for u in range(n):
            neighbours = graph.adjacency[u]
            if u in self.known_records:
                value = sensitive[u]
                neighbours = [
                    int(j) for j in neighbours if sensitive[int(j)] == value
                ]
            else:
                neighbours = [int(j) for j in neighbours]
            adjacency.append(neighbours)
        allowed = allowed_edges(adjacency, n)
        return LinkageResult(
            self.name, tuple(frozenset(int(v) for v in s) for s in allowed)
        )


def auxiliary_damage(
    enc: EncodedTable,
    node_matrix: np.ndarray,
    known_records: Iterable[int],
    sensitive_attribute: str | None = None,
) -> dict[int, tuple[int, int]]:
    """How much auxiliary knowledge hurts the *unknown* individuals.

    Returns, for every record the adversary does **not** know, the pair
    (matches under adversary 2, matches under adversary 3) whenever the
    two differ — the collateral damage of other people's data leaking.
    """
    from repro.privacy.adversary import Adversary2

    known = frozenset(int(i) for i in known_records)
    before = Adversary2().attack(enc, node_matrix)
    after = Adversary3(known, sensitive_attribute).attack(enc, node_matrix)
    damage = {}
    for i in range(enc.num_records):
        if i in known:
            continue
        b, a = len(before.candidates[i]), len(after.candidates[i])
        if a != b:
            damage[i] = (b, a)
    return damage
