"""Privacy audit: one call that grades a release against every notion.

Intended use: a data owner about to publish ``g(D)`` runs

    audit = audit_release(table, gtable, k=10)
    print(audit.format_report())

and reads off the anonymity level actually achieved under each of the
five notions and each adversary, plus any concrete re-identifications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.notions import anonymity_profile, group_sizes
from repro.privacy.adversary import Adversary1, Adversary2, LinkageResult
from repro.privacy.attacks import ReverseLinkageFinding, reverse_linkage_attack
from repro.tabular.encoding import EncodedTable
from repro.tabular.table import GeneralizedTable, Table


@dataclass(frozen=True)
class PrivacyAudit:
    """Full privacy grading of one release."""

    k: int  #: the level the release claims / aims at
    n: int  #: number of records
    k_anonymity_level: int  #: largest k' for which the release is k'-anonymous
    one_k_level: int  #: largest k' with (1,k') — adversary 1 forward linkage
    k_one_level: int  #: largest k' with (k',1) — adversary 1 reverse linkage
    global_level: int  #: largest k' with global (1,k') — adversary 2
    adversary1: LinkageResult
    adversary2: LinkageResult
    reidentifications: tuple[ReverseLinkageFinding, ...]

    @property
    def kk_level(self) -> int:
        """Largest k' for which the release is (k',k')-anonymous."""
        return min(self.one_k_level, self.k_one_level)

    def safe_against_adversary1(self) -> bool:
        """Both linkage directions of adversary 1 are ≥ k."""
        return self.kk_level >= self.k

    def safe_against_adversary2(self) -> bool:
        """Match-based linkage of adversary 2 is ≥ k."""
        return self.global_level >= self.k

    def format_report(self) -> str:
        """Human-readable multi-line audit report."""
        lines = [
            f"Privacy audit (target k = {self.k}, n = {self.n})",
            "-" * 46,
            f"k-anonymity level          : {self.k_anonymity_level}",
            f"(1,k)  level (fwd linkage) : {self.one_k_level}",
            f"(k,1)  level (rev linkage) : {self.k_one_level}",
            f"(k,k)  level               : {self.kk_level}",
            f"global (1,k) level         : {self.global_level}",
            "",
            f"adversary 1 (all public data) : "
            + ("SAFE" if self.safe_against_adversary1() else "BREACHED"),
            f"adversary 2 (knows population): "
            + ("SAFE" if self.safe_against_adversary2() else "BREACHED"),
        ]
        if self.reidentifications:
            lines.append("")
            lines.append(
                f"{len(self.reidentifications)} full re-identification(s) "
                "by reverse linkage, e.g. published record "
                f"{self.reidentifications[0].generalized_index} -> individual "
                f"{self.reidentifications[0].original_index}"
            )
        return "\n".join(lines)


def audit_release(
    table: Table,
    generalized: GeneralizedTable,
    k: int,
    encoded: EncodedTable | None = None,
) -> PrivacyAudit:
    """Audit a release against both adversaries and all five notions.

    The generalization is first validated (record i must generalize
    row i) — auditing a non-generalization would be meaningless.
    """
    generalized.check_generalizes(table)
    enc = encoded if encoded is not None else EncodedTable(table)
    node_matrix = enc.encode_generalized(generalized)
    return audit_nodes(enc, node_matrix, k)


def audit_nodes(enc: EncodedTable, node_matrix: np.ndarray, k: int) -> PrivacyAudit:
    """Like :func:`audit_release` but on an encoded node matrix."""
    profile = anonymity_profile(enc, node_matrix, with_matches=True)
    adv1 = Adversary1().attack(enc, node_matrix)
    adv2 = Adversary2().attack(enc, node_matrix)
    reidentified = tuple(reverse_linkage_attack(enc, node_matrix))
    return PrivacyAudit(
        k=k,
        n=enc.num_records,
        k_anonymity_level=int(group_sizes(node_matrix).min()),
        one_k_level=profile.min_left_links,
        k_one_level=profile.min_right_links,
        global_level=profile.min_matches,
        adversary1=adv1,
        adversary2=adv2,
        reidentifications=reidentified,
    )
