"""The two adversary models of Section IV-A.

*Adversary 1* knows the public data of **all** individuals in the
population and the identity of some individuals in the database.  Her
power is forward linkage — given an individual's public record, which
generalized records could be theirs? — and reverse linkage — given a
published generalized record, which individuals' public data is
consistent with it?

*Adversary 2* additionally knows **exactly which subset** of the
population is in the database.  She can build the full consistency graph
V_{D, g(D)} and prune neighbours down to *matches* (edges extending to a
perfect matching, Definition 4.6), which defeats plain (k,k)-anonymity.

The paper's conclusions, verifiable with these classes: (k,k) protects
against adversary 1 exactly like k-anonymity; only global (1,k) (and
k-anonymity itself) protect against adversary 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.allowed import allowed_edges
from repro.matching.bipartite import ConsistencyGraph
from repro.tabular.encoding import EncodedTable


@dataclass(frozen=True)
class LinkageResult:
    """Outcome of one adversary's linkage attempt on every record.

    ``candidates[i]`` is the set of generalized-record indices the
    adversary cannot distinguish as individual i's published record; the
    smaller the set, the stronger the linkage.  ``|candidates[i]| == 1``
    means full re-identification of the record (and hence of its private
    attributes, published alongside).
    """

    adversary: str  #: "adversary-1" or "adversary-2"
    candidates: tuple[frozenset[int], ...]

    def link_counts(self) -> np.ndarray:
        """Candidate-set size per record."""
        return np.array([len(c) for c in self.candidates], dtype=np.int64)

    def min_links(self) -> int:
        """The worst (smallest) candidate-set size."""
        return int(self.link_counts().min())

    def reidentified(self) -> list[int]:
        """Records the adversary pins to a single generalized record."""
        return [i for i, c in enumerate(self.candidates) if len(c) == 1]

    def breaches(self, k: int) -> list[int]:
        """Records linked to fewer than k generalized records — the
        privacy guarantee the k-type notions promise is exactly that
        this list is empty."""
        return [i for i, c in enumerate(self.candidates) if len(c) < k]


class Adversary1:
    """Knows all public data; links by consistency alone."""

    name = "adversary-1"

    def attack(self, enc: EncodedTable, node_matrix: np.ndarray) -> LinkageResult:
        """For every individual, the consistent generalized records.

        A (1,k)-anonymization guarantees every candidate set has ≥ k
        members against this adversary.
        """
        graph = ConsistencyGraph(enc, node_matrix)
        candidates = tuple(
            frozenset(int(v) for v in neigh) for neigh in graph.adjacency
        )
        return LinkageResult(self.name, candidates)

    def reverse_attack(
        self, enc: EncodedTable, node_matrix: np.ndarray
    ) -> list[frozenset[int]]:
        """For every *generalized* record, the consistent individuals.

        This is the attack that breaks (1,k)-only tables (the suppressed-
        tail example of Section IV-A): a published record consistent with
        a single individual's public data reveals that individual's row —
        precisely what (k,1)-anonymity rules out.
        """
        graph = ConsistencyGraph(enc, node_matrix)
        n = enc.num_records
        reverse: list[set[int]] = [set() for _ in range(n)]
        for i, neigh in enumerate(graph.adjacency):
            for j in neigh:
                reverse[int(j)].add(i)
        return [frozenset(s) for s in reverse]


class Adversary2:
    """Knows the exact database population; links via matchings."""

    name = "adversary-2"

    def attack(self, enc: EncodedTable, node_matrix: np.ndarray) -> LinkageResult:
        """For every individual, the *matches* (Definition 4.6).

        Candidate sets of size < k on a (k,k)-anonymized table are the
        Section IV-A attack; a global (1,k)-anonymization guarantees
        every candidate set has ≥ k members even here.
        """
        graph = ConsistencyGraph(enc, node_matrix)
        allowed = allowed_edges(graph.adjacency_lists(), graph.num_records)
        candidates = tuple(frozenset(int(v) for v in s) for s in allowed)
        return LinkageResult(self.name, candidates)
