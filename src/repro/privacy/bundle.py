"""Release bundles: a self-describing on-disk format for anonymized data.

A data owner who publishes an anonymization needs to ship more than a
CSV: the schema (domains + permissible subsets), the claimed guarantee,
the measure and loss, and enough provenance to re-audit.  A *release
bundle* is a directory:

    release/
      release.csv      the generalized table (+ private columns if any)
      schema.json      domains, hierarchies, private attribute names
      manifest.json    notion, k, measure, cost, algorithm, risk summary

:func:`save_release` writes one from an
:class:`~repro.core.api.AnonymizationResult`; :func:`load_release`
reads it back and re-verifies the claimed notion against the (optional)
original table, so consumers do not have to trust the manifest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.api import AnonymizationResult
from repro.errors import AnonymityError, SchemaError
from repro.privacy.risk import release_risks
from repro.tabular.encoding import EncodedTable
from repro.tabular.io import (
    read_generalized_csv,
    read_schema_json,
    write_generalized_csv,
    write_schema_json,
)
from repro.tabular.table import GeneralizedTable, Schema, Table

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ReleaseBundle:
    """A loaded release: the generalization plus its manifest."""

    schema: Schema
    generalized: GeneralizedTable
    manifest: dict

    @property
    def notion(self) -> str:
        """The anonymity notion the release claims."""
        return self.manifest["notion"]

    @property
    def k(self) -> int:
        """The claimed anonymity level."""
        return int(self.manifest["k"])

    def verify_against(self, table: Table) -> bool:
        """Re-check the claimed notion against the original table.

        The bundle's schema was reloaded from JSON, so it is a distinct
        (if structurally equal) object from ``table.schema``; the
        generalization is re-targeted onto the caller's schema by value
        sets before checking.
        """
        from repro.core.notions import satisfies

        retargeted = _retarget(self.generalized, table.schema)
        retargeted.check_generalizes(table)
        enc = EncodedTable(table)
        nodes = enc.encode_generalized(retargeted)
        return satisfies(enc, nodes, self.notion, self.k)


def save_release(
    result: AnonymizationResult,
    directory: str | Path,
    include_private: bool = True,
    with_risks: bool = True,
) -> Path:
    """Write a release bundle; returns the directory path.

    Parameters
    ----------
    result:
        The anonymization to publish.
    directory:
        Target directory (created if missing; must be empty of bundle
        files or they are overwritten).
    include_private:
        Also publish the private columns next to the generalized
        quasi-identifiers (the paper's release model).
    with_risks:
        Compute and embed the adversary-1/2 risk summaries (costs one
        consistency-graph + matching pass).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    table = result.table
    private_rows = (
        table.private_rows
        if include_private and table.schema.private_attributes
        else None
    )
    write_generalized_csv(
        result.generalized, directory / "release.csv", private_rows
    )
    write_schema_json(table.schema, directory / "schema.json")

    manifest: dict = {
        "manifest_version": MANIFEST_VERSION,
        "notion": result.notion,
        "k": result.k,
        "measure": result.measure,
        "cost": result.cost,
        "algorithm": result.algorithm,
        "num_records": table.num_records,
        "elapsed_seconds": result.elapsed_seconds,
        "stats": {key: _jsonable(v) for key, v in result.stats.items()},
    }
    if with_risks:
        adv1, adv2 = release_risks(result.encoded, result.node_matrix)
        manifest["risks"] = {
            "adversary1": {
                "prosecutor_max": adv1.prosecutor_max,
                "prosecutor_mean": adv1.prosecutor_mean,
                "marketer": adv1.marketer,
            },
            "adversary2": {
                "prosecutor_max": adv2.prosecutor_max,
                "prosecutor_mean": adv2.prosecutor_mean,
                "marketer": adv2.marketer,
            },
        }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_release(directory: str | Path) -> ReleaseBundle:
    """Read a release bundle written by :func:`save_release`.

    Raises
    ------
    SchemaError
        If a bundle file is missing or malformed.
    AnonymityError
        If the manifest version is unsupported.
    """
    directory = Path(directory)
    for required in ("release.csv", "schema.json", "manifest.json"):
        if not (directory / required).exists():
            raise SchemaError(f"release bundle is missing {required}")
    manifest = json.loads((directory / "manifest.json").read_text())
    version = manifest.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise AnonymityError(
            f"unsupported release manifest version {version!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    schema = read_schema_json(directory / "schema.json")
    generalized = read_generalized_csv(schema, directory / "release.csv")
    return ReleaseBundle(schema=schema, generalized=generalized, manifest=manifest)


def _retarget(gtable: GeneralizedTable, schema: Schema) -> GeneralizedTable:
    """Rebuild a generalized table against a structurally equal schema."""
    from repro.tabular.record import GeneralizedRecord

    if len(schema.collections) != len(gtable.schema.collections):
        raise SchemaError(
            "release schema and table schema have different attribute counts"
        )
    records = []
    for rec in gtable.records:
        nodes = []
        for j, coll in enumerate(schema.collections):
            nodes.append(coll.node_of_values(rec.values(j)))
        records.append(GeneralizedRecord(schema, nodes))
    return GeneralizedTable(schema, records)


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)
