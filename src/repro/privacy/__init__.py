"""Adversary models, attacks, risk metrics, audits and release bundles
(Section IV-A of the paper plus the standard disclosure-control risks)."""

from repro.privacy.adversary import Adversary1, Adversary2, LinkageResult
from repro.privacy.attacks import (
    MatchingAttackReport,
    ReverseLinkageFinding,
    matching_attack,
    reverse_linkage_attack,
    suppressed_tail_generalization,
)
from repro.privacy.audit import PrivacyAudit, audit_nodes, audit_release
from repro.privacy.auxiliary import Adversary3, auxiliary_damage
from repro.privacy.bundle import ReleaseBundle, load_release, save_release
from repro.privacy.risk import RiskProfile, release_risks, risk_from_linkage

__all__ = [
    "Adversary1",
    "Adversary2",
    "Adversary3",
    "auxiliary_damage",
    "LinkageResult",
    "suppressed_tail_generalization",
    "reverse_linkage_attack",
    "ReverseLinkageFinding",
    "matching_attack",
    "MatchingAttackReport",
    "PrivacyAudit",
    "audit_release",
    "audit_nodes",
    "RiskProfile",
    "risk_from_linkage",
    "release_risks",
    "ReleaseBundle",
    "save_release",
    "load_release",
]
