"""repro — a reproduction of "k-Anonymization Revisited" (ICDE 2008).

The library implements the paper's relaxed k-type anonymity notions —
(1,k), (k,1), (k,k) and global (1,k) — together with classical
k-anonymity, the agglomerative anonymization algorithms of Section V,
the forest baseline of Aggarwal et al., the entropy/LM information-loss
measures, the evaluation datasets, and the full experimental harness
that regenerates the paper's Table I and Figures 1–3.

Quickstart::

    from repro import anonymize
    from repro.datasets import load

    table = load("adult", n=1000, seed=7)
    result = anonymize(table, k=10, notion="kk", measure="entropy")
    print(result.cost)                 # information loss, bits/entry
    print(result.generalized.labels()[:3])

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.core.api import AnonymizationResult, anonymize
from repro.errors import (
    AnonymityError,
    ClosureError,
    DatasetError,
    ExperimentError,
    MatchingError,
    ReproError,
    SchemaError,
)
from repro.measures import CostModel, get_measure
from repro.tabular import (
    Attribute,
    EncodedTable,
    GeneralizedRecord,
    GeneralizedTable,
    Schema,
    SubsetCollection,
    Table,
)

__version__ = "1.0.0"

__all__ = [
    "anonymize",
    "AnonymizationResult",
    "Attribute",
    "SubsetCollection",
    "Schema",
    "Table",
    "GeneralizedRecord",
    "GeneralizedTable",
    "EncodedTable",
    "CostModel",
    "get_measure",
    "ReproError",
    "SchemaError",
    "ClosureError",
    "AnonymityError",
    "MatchingError",
    "DatasetError",
    "ExperimentError",
    "__version__",
]
