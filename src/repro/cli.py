"""Command-line interface: ``repro-anon`` (or ``python -m repro``).

Subcommands
-----------
* ``datasets`` — list the built-in datasets and their paper sizes.
* ``anonymize`` — anonymize a built-in dataset or a CSV file and write
  the release (plus its self-describing schema JSON).
* ``audit`` — re-audit a written release against both adversaries.
* ``utility`` — COUNT-query utility comparison of k / forest / (k,k)
  releases on a built-in dataset.
* ``experiment`` — run one of the paper's experiments
  (``table1``, ``fig1``, ``fig2``, ``fig3``, ``ablations``,
  ``global1k``, ``scaling``, ``epsilon``, or ``all`` for the complete
  reproduction report) and print it.  ``--timeout SECONDS`` bounds the
  wall clock (exit code 3 on expiry), ``--journal PATH`` appends every
  finished grid cell to a crash-safe JSONL journal, ``--resume``
  preloads an existing journal so finished cells are never recomputed
  (see ``docs/robustness.md``), ``--workers N`` fans the grid cells
  over worker processes with results identical to a serial run
  (``docs/performance.md``), and ``--trace PATH`` / ``--metrics PATH``
  record a span trace and a work-unit metrics snapshot without
  changing any result (``docs/observability.md``).
* ``bench`` — run the pinned benchmark suite (:mod:`repro.perf`), write
  a schema-versioned ``BENCH_<stamp>.json`` report and compare against
  the latest committed baseline (``--enforce`` turns regressions into a
  non-zero exit; ``--metrics`` embeds a work-unit snapshot).
* ``trace`` — work with span traces written by ``experiment --trace``:
  ``convert`` to Chrome ``trace_event`` JSON (chrome://tracing,
  Perfetto), ``summarize`` to a per-phase time/work table.
* ``obs`` — work with observability artifacts (``docs/observability.md``):
  ``summarize`` renders any combination of a span trace, a metrics
  snapshot (v1 cumulative or v2 windowed) and a flight-recorder dump;
  ``export`` converts a snapshot JSON to the Prometheus text
  exposition; ``tail`` prints the last records of an ``OBS_*.jsonl``
  snapshot journal (or any tolerant JSONL artifact).
* ``fuzz`` — run the property-fuzzing and differential-verification
  harness (:mod:`repro.verify`) on random seeded instances; on failure
  prints a replay command that reproduces the case deterministically.
* ``lint`` — run the domain-aware static analysis
  (:mod:`repro.analysis`): the REP001–REP015 rule catalogue plus the
  import-layering DAG check, with inline suppressions and a committed
  baseline ratchet.
* ``serve`` — run the fault-hardened anonymization HTTP service
  (:mod:`repro.serve`): ``POST /anonymize`` with admission control and
  typed load shedding, per-request deadlines, a circuit breaker over
  the degradation chain, and a crash-safe result cache journal so a
  killed server restarts with zero recomputation
  (``docs/serving.md``).  ``--live-telemetry`` adds sliding-window
  metrics (``/metricz?window=N``), SLO burn-rate monitors on
  ``/healthz`` and a flight recorder on ``/debugz``.

Examples
--------
::

    repro-anon anonymize --dataset adult --n 500 --k 10 --notion kk \
        --out release.csv --schema-out schema.json
    repro-anon audit --schema schema.json --table original.csv \
        --release release.csv --k 10
    repro-anon experiment table1
    repro-anon fuzz --seed 42 --budget-seconds 30
    repro-anon lint --baseline lint-baseline.json
    repro-anon lint src/repro --select REP002,LAY001 --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.api import anonymize
from repro.core.backend import backend_names
from repro.datasets.registry import dataset_names, default_size, load
from repro.errors import DeadlineExceeded, ReproError
from repro.tabular.encoding import EncodedTable
from repro.tabular.io import (
    read_generalized_csv,
    read_schema_json,
    read_table_csv,
    write_generalized_csv,
    write_schema_json,
    write_table_csv,
)


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anon",
        description="k-Anonymization Revisited (ICDE 2008) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets_cmd = sub.add_parser("datasets", help="list built-in datasets")
    datasets_cmd.add_argument(
        "--verbose", action="store_true",
        help="describe every attribute, hierarchy and value distribution",
    )

    anon = sub.add_parser("anonymize", help="anonymize a dataset or CSV")
    anon.add_argument("--dataset", choices=dataset_names(), help="built-in dataset")
    anon.add_argument("--input", help="CSV file (requires --schema)")
    anon.add_argument("--schema", help="schema JSON for --input")
    anon.add_argument("--n", type=int, help="records to sample (built-in datasets)")
    anon.add_argument("--seed", type=int, default=0, help="sampling seed")
    anon.add_argument("--k", type=int, required=True, help="anonymity parameter")
    anon.add_argument(
        "--notion",
        default="kk",
        choices=["k", "1k", "k1", "kk", "global-1k"],
        help="anonymity notion (default kk)",
    )
    anon.add_argument(
        "--measure", default="entropy", help="loss measure (entropy, lm, tree)"
    )
    anon.add_argument(
        "--algorithm", default=None, help="for notion=k: agglomerative, forest, mondrian or datafly"
    )
    anon.add_argument(
        "--distance", default="d3", help="agglomerative distance (d1..d4, nc)"
    )
    anon.add_argument(
        "--modified", action="store_true", help="use the modified agglomerative"
    )
    anon.add_argument(
        "--expander",
        default="expansion",
        choices=["expansion", "nearest"],
        help="(k,1) stage (Algorithm 4 or 3)",
    )
    anon.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="execution backend (bit-equivalent; default: python or "
        "$REPRO_BACKEND)",
    )
    anon.add_argument("--out", help="output CSV for the release")
    anon.add_argument("--schema-out", help="also write the schema JSON here")
    anon.add_argument("--table-out", help="also write the original table CSV here")
    anon.add_argument(
        "--bundle-out",
        help="write a self-describing release bundle directory "
        "(release.csv + schema.json + manifest.json with risk summary)",
    )

    utility = sub.add_parser(
        "utility", help="COUNT-query utility comparison on a dataset"
    )
    utility.add_argument("--dataset", choices=dataset_names(), default="adult")
    utility.add_argument("--n", type=int, default=400)
    utility.add_argument("--k", type=int, default=10)
    utility.add_argument("--queries", type=int, default=150)
    utility.add_argument("--seed", type=int, default=0)

    audit = sub.add_parser("audit", help="audit a written release")
    audit.add_argument("--schema", required=True, help="schema JSON")
    audit.add_argument("--table", required=True, help="original table CSV")
    audit.add_argument("--release", required=True, help="generalized release CSV")
    audit.add_argument("--k", type=int, required=True, help="claimed k")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument(
        "name",
        choices=[
            "table1", "fig1", "fig2", "fig3", "ablations",
            "global1k", "scaling", "epsilon", "all",
        ],
    )
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument(
        "--out", help="for 'all': also write the report to this file"
    )
    exp.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; on expiry the run stops with exit "
        "code 3 (finished cells stay journaled with --journal)",
    )
    exp.add_argument(
        "--journal",
        help="crash-safe JSONL journal recording every finished grid cell",
    )
    exp.add_argument(
        "--resume",
        action="store_true",
        help="preload the --journal file from a previous (killed or "
        "timed-out) run; finished cells are not recomputed",
    )
    exp.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="execution backend for every grid cell (bit-equivalent; "
        "default: python or $REPRO_BACKEND)",
    )
    exp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the grid cells (default 1 = serial); "
        "results and journal order are identical to a serial run",
    )
    exp.add_argument(
        "--trace",
        metavar="PATH",
        help="record a span trace (JSONL) of the run; convert with "
        "'repro-anon trace convert' for chrome://tracing / Perfetto",
    )
    exp.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON snapshot of work-unit counters/histograms "
        "(written even when the run hits --timeout)",
    )
    exp.add_argument(
        "--obs-journal",
        metavar="PATH",
        help="append the run's metrics snapshot as one record to an "
        "OBS_*.jsonl snapshot journal (implies metrics collection)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="convert or summarize span traces written by "
        "'experiment --trace'",
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    convert_cmd = trace_sub.add_parser(
        "convert", help="convert a JSONL trace to Chrome trace_event JSON"
    )
    convert_cmd.add_argument("trace", help="span trace JSONL file")
    convert_cmd.add_argument(
        "--out", required=True, help="output Chrome trace_event JSON path"
    )
    summarize_cmd = trace_sub.add_parser(
        "summarize", help="print a per-phase time/work table"
    )
    summarize_cmd.add_argument(
        "trace", nargs="?", help="span trace JSONL file"
    )
    summarize_cmd.add_argument(
        "--metrics", help="metrics snapshot JSON to include in the summary"
    )

    bench_cmd = sub.add_parser(
        "bench",
        help="run the pinned benchmark suite (repro.perf) and compare "
        "against the latest BENCH_*.json baseline",
    )
    bench_cmd.add_argument(
        "--quick",
        action="store_true",
        help="small n-grid and fewer repeats (the CI smoke mode)",
    )
    bench_cmd.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="timing repetitions per case (default: 2 quick / 5 full)",
    )
    bench_cmd.add_argument(
        "--filter",
        dest="name_filter",
        default="",
        metavar="SUBSTRING",
        help="only run cases whose name contains SUBSTRING",
    )
    bench_cmd.add_argument(
        "--out",
        help="write the schema-versioned JSON report to this path "
        "(e.g. BENCH_$(date -u +%%Y-%%m-%%d).json)",
    )
    bench_cmd.add_argument(
        "--baseline",
        help="baseline BENCH_*.json to compare against "
        "(default: the newest BENCH_*.json in the current directory)",
    )
    bench_cmd.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the baseline comparison entirely",
    )
    bench_cmd.add_argument(
        "--enforce",
        action="store_true",
        help="exit non-zero on regressions (default: warn only; pair "
        "speedup regressions always fail under --enforce)",
    )
    bench_cmd.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative slowdown tolerated before flagging (default 0.5)",
    )
    bench_cmd.add_argument(
        "--list", action="store_true", help="list case names and exit"
    )
    bench_cmd.add_argument(
        "--metrics",
        action="store_true",
        help="collect work-unit metrics during the suite and embed the "
        "snapshot in the report (schema repro.perf.bench/2)",
    )
    bench_cmd.add_argument(
        "--obs-journal",
        metavar="PATH",
        help="append the run (stamp, case medians, metrics snapshot) "
        "as one record to an OBS_*.jsonl snapshot journal",
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="summarize, export or tail observability artifacts "
        "(traces, metrics snapshots, flight dumps, OBS journals)",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_summarize = obs_sub.add_parser(
        "summarize",
        help="render traces / metrics snapshots / flight dumps as one "
        "report",
    )
    obs_summarize.add_argument(
        "--trace", metavar="PATH", help="span trace JSONL file"
    )
    obs_summarize.add_argument(
        "--metrics",
        metavar="PATH",
        help="metrics snapshot JSON (v1 cumulative or v2 windowed)",
    )
    obs_summarize.add_argument(
        "--flight",
        metavar="PATH",
        help="flight-recorder dump JSON (from /debugz or a breach dump)",
    )
    obs_export = obs_sub.add_parser(
        "export",
        help="convert a metrics snapshot JSON to Prometheus text "
        "exposition",
    )
    obs_export.add_argument("snapshot", help="metrics snapshot JSON file")
    obs_export.add_argument(
        "--out", help="write the text exposition here (default: stdout)"
    )
    obs_tail = obs_sub.add_parser(
        "tail",
        help="print the last records of an OBS_*.jsonl snapshot journal",
    )
    obs_tail.add_argument("journal", help="OBS_*.jsonl journal path")
    obs_tail.add_argument(
        "-n",
        "--records",
        type=_nonnegative_int,
        default=10,
        help="records to show (default 10)",
    )
    obs_tail.add_argument(
        "--raw",
        action="store_true",
        help="print full JSON records instead of one summary line each",
    )

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="run the property-fuzzing / differential-verification harness",
    )
    fuzz_cmd.add_argument(
        "--seed",
        type=_nonnegative_int,
        default=0,
        help="master seed (default 0)",
    )
    fuzz_cmd.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="wall-clock budget; defaults to 10s when --max-cases is absent",
    )
    fuzz_cmd.add_argument(
        "--max-cases", type=int, default=None, help="hard cap on cases"
    )
    fuzz_cmd.add_argument(
        "--max-failures",
        type=int,
        default=3,
        help="stop after this many failing cases (default 3)",
    )
    fuzz_cmd.add_argument(
        "--verbose", action="store_true", help="print a line per case"
    )
    fuzz_cmd.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="primary execution backend for every case (backend-aware "
        "algorithms are cross-checked against the other backend "
        "regardless; default: python or $REPRO_BACKEND)",
    )

    lint_cmd = sub.add_parser(
        "lint",
        help="run the domain-aware static analysis (repro.analysis)",
    )
    lint_cmd.add_argument(
        "paths",
        nargs="*",
        help="package directories or files to scan "
        "(default: the installed repro package)",
    )
    lint_cmd.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json", "github"],
        help="report format (default text; 'github' emits CI "
        "::error annotations)",
    )
    lint_cmd.add_argument(
        "--baseline",
        help="baseline JSON of reviewed findings "
        "(default: ./lint-baseline.json when it exists)",
    )
    lint_cmd.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all rules)",
    )
    lint_cmd.add_argument(
        "--no-layers",
        action="store_true",
        help="skip the import-layering DAG check",
    )
    lint_cmd.add_argument(
        "--prune-baseline",
        action="store_true",
        help="remove stale baseline entries instead of failing on them",
    )
    lint_cmd.add_argument(
        "--callgraph",
        metavar="PATH",
        help="also write the scanned tree's call graph (entry points, "
        "reachability) as deterministic JSON to PATH",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="run the fault-hardened anonymization HTTP service "
        "(repro.serve)",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8077,
        help="bind port (default 8077; 0 binds an ephemeral port, "
        "printed on startup)",
    )
    serve_cmd.add_argument(
        "--cache-journal",
        metavar="PATH",
        help="crash-safe JSONL journal for the result cache; an "
        "existing journal is replayed on startup so a restarted "
        "server serves cached results with zero recomputation",
    )
    serve_cmd.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="concurrent executions before requests queue (default 4)",
    )
    serve_cmd.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="bounded wait-queue depth; beyond it requests are shed "
        "with a typed 429 (default 16)",
    )
    serve_cmd.add_argument(
        "--default-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request budget when the request sets none (default 30)",
    )
    serve_cmd.add_argument(
        "--rung-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-rung cap inside the degradation chain (default: none)",
    )
    serve_cmd.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive backend failures that trip the circuit "
        "breaker (default 5)",
    )
    serve_cmd.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="breaker cooldown before a half-open probe (default 30)",
    )
    serve_cmd.add_argument(
        "--trace",
        metavar="PATH",
        help="record per-request span traces (JSONL); convert with "
        "'repro-anon trace convert'",
    )
    serve_cmd.add_argument(
        "--live-telemetry",
        action="store_true",
        help="enable sliding-window telemetry: /metricz?window=N, SLO "
        "burn-rate monitors on /healthz, flight recorder on /debugz",
    )
    serve_cmd.add_argument(
        "--slo-advisory",
        action="store_true",
        help="let SLO breaches advise the admission gate and circuit "
        "breaker (tighter shedding under confirmed burn; implies "
        "--live-telemetry)",
    )
    serve_cmd.add_argument(
        "--flight-journal",
        metavar="PATH",
        help="write an atomic flight-recorder dump here on the first "
        "SLO breach edge (implies --live-telemetry)",
    )
    serve_cmd.add_argument(
        "--window-bucket",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="window-bucket resolution for live telemetry (default 1)",
    )
    serve_cmd.add_argument(
        "--window-horizon",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="how far back /metricz?window may reach (default 300)",
    )
    return parser


def _load_input(args: argparse.Namespace):
    if args.dataset and args.input:
        raise ReproError("give either --dataset or --input, not both")
    if args.dataset:
        n = args.n if args.n is not None else default_size(args.dataset)
        return load(args.dataset, n=n, seed=args.seed, private=False)
    if args.input:
        if not args.schema:
            raise ReproError("--input requires --schema")
        schema = read_schema_json(args.schema)
        return read_table_csv(schema, args.input)
    raise ReproError("give --dataset or --input")


def _cmd_datasets(verbose: bool = False) -> int:
    if verbose:
        from repro.datasets.describe import describe_dataset

        for name in dataset_names():
            print(describe_dataset(name))
            print()
        return 0
    for name in dataset_names():
        print(f"{name:8s} paper size n = {default_size(name)}")
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    if not args.out and not args.bundle_out:
        raise ReproError("give --out and/or --bundle-out")
    table = _load_input(args)
    result = anonymize(
        table,
        k=args.k,
        notion=args.notion,
        measure=args.measure,
        algorithm=args.algorithm,
        distance=args.distance,
        modified=args.modified,
        expander=args.expander,
        backend=args.backend,
    )
    if args.out:
        write_generalized_csv(result.generalized, args.out)
        print(
            f"wrote {args.out}: n={table.num_records}, notion={result.notion}, "
            f"k={args.k}, algorithm={result.algorithm}"
        )
    if args.schema_out:
        write_schema_json(table.schema, args.schema_out)
    if args.table_out:
        write_table_csv(table, args.table_out)
    if args.bundle_out:
        from repro.privacy.bundle import save_release

        directory = save_release(result, args.bundle_out)
        print(f"wrote release bundle {directory}")
    print(
        f"information loss Π_{result.measure} = {result.cost:.4f} "
        f"({result.elapsed_seconds:.2f}s)"
    )
    return 0


def _cmd_utility(args: argparse.Namespace) -> int:
    from repro.utility import compare_releases

    table = load(args.dataset, n=args.n, seed=args.seed)
    enc = EncodedTable(table)
    releases = {}
    for label, notion, kwargs in (
        ("k-anonymity", "k", {}),
        ("forest", "k", {"algorithm": "forest"}),
        ("(k,k)-anonymity", "kk", {}),
    ):
        result = anonymize(table, k=args.k, notion=notion, encoded=enc, **kwargs)
        releases[label] = result.node_matrix
    comparison = compare_releases(
        enc, releases, num_queries=args.queries, arity=2, seed=args.seed
    )
    print(
        f"{args.dataset}, n={args.n}, k={args.k}: query-answering utility"
    )
    print(comparison.format())
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.privacy.audit import audit_release

    schema = read_schema_json(args.schema)
    table = read_table_csv(schema, args.table)
    release = read_generalized_csv(schema, args.release)
    audit = audit_release(table, release, k=args.k)
    print(audit.format_report())
    return 0 if audit.safe_against_adversary1() else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify.harness import fuzz

    def progress(index: int, case_seed: int, violations) -> None:
        status = "FAIL" if violations else "ok"
        print(f"case {index} (seed {case_seed}): {status}")

    report = fuzz(
        seed=args.seed,
        budget_seconds=args.budget_seconds,
        max_cases=args.max_cases,
        max_failures=args.max_failures,
        on_case=progress if args.verbose else None,
        backend=args.backend,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import Baseline, build_tree_callgraph, run_lint

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        # This module lives inside the package being linted.
        paths = [Path(__file__).resolve().parent]
    baseline = args.baseline
    if baseline is None and Path("lint-baseline.json").is_file():
        baseline = "lint-baseline.json"
    select = (
        # An explicit-but-empty --select is an error (caught by the
        # engine), not a silent run-everything.
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select is not None
        else None
    )
    reports = run_lint(
        paths,
        select=select,
        baseline_path=baseline,
        check_layers=not args.no_layers,
    )
    if args.prune_baseline:
        if baseline is None:
            raise ReproError(
                "--prune-baseline requires a baseline (give --baseline or "
                "commit lint-baseline.json)"
            )
        stale = reports[-1].stale_baseline
        if stale:
            removed = Baseline.load(baseline).prune(stale)
            print(
                f"pruned {removed} stale "
                f"entr{'y' if removed == 1 else 'ies'} from {baseline}",
                file=sys.stderr,
            )
            for report in reports:
                report.stale_baseline = []
    if args.callgraph:
        root = next((p for p in paths if p.is_dir()), None)
        if root is None:
            raise ReproError(
                "--callgraph needs a package directory among the scanned "
                "paths"
            )
        graph = build_tree_callgraph(root)
        Path(args.callgraph).write_text(graph.to_json_text())
        print(f"call graph written to {args.callgraph}", file=sys.stderr)
    if args.output_format == "json":
        payload: object = (
            reports[0].to_json()
            if len(reports) == 1
            else [r.to_json() for r in reports]
        )
        print(json.dumps(payload, indent=2))
    elif args.output_format == "github":
        for report in reports:
            annotations = report.format_github()
            if annotations:
                print(annotations)
    else:
        for report in reports:
            print(report.format_text())
    return 0 if all(report.ok for report in reports) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf import (
        compare_reports,
        default_cases,
        find_baseline,
        load_report,
        run_bench,
    )
    from repro.perf.compare import DEFAULT_THRESHOLD, has_regressions

    if args.list:
        for case in default_cases(quick=args.quick):
            tag = f" [{case.pair}/{case.role}]" if case.pair else ""
            print(f"{case.name}  ({case.group}, n={case.n}){tag}")
        return 0

    def progress(entry: dict) -> None:
        print(
            f"  {entry['name']:32s} median {entry['median'] * 1000:9.2f} ms "
            f"({len(entry['seconds'])} runs)"
        )

    report = run_bench(
        quick=args.quick,
        repeat=args.repeat,
        name_filter=args.name_filter,
        on_case=progress,
        collect_metrics=bool(args.metrics or args.obs_journal),
    )
    for pair in report.pairs:
        print(f"  speedup {pair['name']:28s} {pair['speedup']:.2f}x")
    if args.metrics and report.metrics is not None:
        counters = report.metrics.get("counters", {})
        print(f"  metrics snapshot embedded ({len(counters)} counters)")
    if args.out:
        # A directory means "name the file for me": BENCH_<stamp>.json.
        out = Path(args.out)
        if out.is_dir():
            out = out / f"BENCH_{report.stamp}.json"
        report.write(out)
        print(f"report written to {out}")
    if args.obs_journal:
        report.obs_record(args.obs_journal)
        print(f"obs record appended to {args.obs_journal}")

    if args.no_compare:
        return 0
    baseline_path = args.baseline or find_baseline(Path.cwd())
    if baseline_path is None:
        print("no BENCH_*.json baseline found; comparison skipped")
        return 0
    baseline = load_report(baseline_path)
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    findings = compare_reports(report, baseline, threshold=threshold)
    print(f"compared against {baseline_path} ({len(findings)} findings)")
    for finding in findings:
        print(f"  {finding}")
    if args.enforce and has_regressions(findings):
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import json
    from contextlib import ExitStack

    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.runner import ExperimentRunner
    from repro.obs import MetricsRegistry, Tracer, metrics_scope, trace_scope
    from repro.runtime import Deadline, Journal, atomic_write_text, limit_scope

    if args.resume and not args.journal:
        raise ReproError("--resume requires --journal PATH")
    journal = None
    if args.journal:
        journal = Journal(args.journal)
        if journal.exists() and not args.resume:
            raise ReproError(
                f"journal {args.journal!r} already exists; pass --resume "
                "to continue it, or remove the file to start over"
            )
    from repro.core.backend import resolve_backend

    config = ExperimentConfig(seed=args.seed, backend=resolve_backend(args.backend))
    runner = ExperimentRunner(config, journal=journal, resume=args.resume)
    if args.resume:
        print(f"resumed {runner.resumed_cells} finished cells from {args.journal}")
    limits = [Deadline.after(args.timeout)] if args.timeout is not None else []
    registry = (
        MetricsRegistry() if (args.metrics or args.obs_journal) else None
    )
    try:
        with ExitStack() as scopes:
            if args.trace:
                scopes.enter_context(trace_scope(Tracer(args.trace)))
            if registry is not None:
                scopes.enter_context(metrics_scope(registry))
            with limit_scope(*limits):
                if args.workers > 1:
                    from repro.perf import plan_experiment, run_parallel

                    plan = plan_experiment(args.name, config)
                    if plan:
                        stats = run_parallel(
                            runner, plan, workers=args.workers
                        )
                        print(f"parallel prefetch: {stats}")
                code = _dispatch_experiment(args, runner)
    finally:
        # Write the snapshot even when a deadline aborts the run: the
        # partial counters say where the time went before the cutoff.
        if registry is not None and args.metrics:
            atomic_write_text(
                args.metrics,
                json.dumps(registry.snapshot(), indent=2, sort_keys=True)
                + "\n",
            )
        if registry is not None and args.obs_journal:
            from repro.obs import append_obs_record
            from repro.perf.bench import default_stamp

            append_obs_record(
                args.obs_journal,
                kind="experiment",
                stamp=default_stamp(),
                snapshot=registry.snapshot(),
                extra={"experiment": args.name, "seed": args.seed},
            )
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics snapshot written to {args.metrics}")
    if args.obs_journal:
        print(f"obs record appended to {args.obs_journal}")
    if journal is not None:
        print(
            f"journal {args.journal}: {runner.computed_cells} cells computed, "
            f"{runner.resumed_cells} resumed"
        )
    return code


def _dispatch_experiment(args: argparse.Namespace, runner) -> int:
    name = args.name
    if name == "all":
        from repro.experiments.full_report import generate_full_report

        report = generate_full_report(runner)
        print(report)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(report)
            print(f"report written to {args.out}")
        return 0
    if name == "table1":
        from repro.experiments.table1 import compute_table1

        result = compute_table1(runner)
        print(result.format())
        print()
        print(result.improvement_summary())
        violations = result.shape_violations()
        if violations:
            print("\nSHAPE VIOLATIONS:")
            print("\n".join(violations))
            return 1
    elif name in ("fig2", "fig3"):
        from repro.experiments.figures import compute_figure

        fig = compute_figure(runner, name)
        print(fig.chart())
        print()
        print(fig.numbers())
    elif name == "fig1":
        from repro.core.relations import (
            check_figure1,
            enumerate_census,
            proposition_45_example,
        )

        table, _ = proposition_45_example()
        census = enumerate_census(EncodedTable(table), k=2)
        print(f"enumerated {census.total} generalizations of the "
              "Proposition 4.5 table (k=2)")
        for key, count in sorted(census.counts.items(), key=lambda kv: -kv[1]):
            label = "+".join(sorted(key)) if key else "(none)"
            print(f"  {label:30s} {count}")
        problems = check_figure1(census)
        print("Figure 1 inclusions:", "OK" if not problems else problems)
    elif name == "ablations":
        from repro.experiments.ablations import (
            coupling_ablation,
            distance_ablation,
            join_target_ablation,
            modified_ablation,
        )

        for dataset in runner.config.datasets:
            for measure in runner.config.measures:
                print(f"== {dataset} / {measure} ==")
                print(distance_ablation(runner, dataset, measure).format())
                print(coupling_ablation(runner, dataset, measure).format())
                print(modified_ablation(runner, dataset, measure).format())
                print(join_target_ablation(runner, dataset, measure).format())
                print()
    elif name == "global1k":
        from repro.experiments.global1k import (
            format_conversion,
            global_conversion_experiment,
        )

        points = []
        for dataset in runner.config.datasets:
            points.extend(
                global_conversion_experiment(runner, dataset, "entropy")
            )
        print(format_conversion(points))
    elif name == "scaling":
        from repro.experiments.scaling import scaling_sweep

        print(scaling_sweep().format())
    elif name == "epsilon":
        from repro.extensions.epsilon_kk import epsilon_sweep

        for dataset in runner.config.datasets:
            model = runner.model(dataset, "entropy")
            sweep = epsilon_sweep(model, k=10)
            eps = sweep.smallest_sufficient_epsilon()
            print(f"{dataset}: smallest sufficient ε = {eps}")
            for p in sweep.points:
                print(
                    f"  ε={p.epsilon:<4} k'={p.k_prime:<3} Π={p.cost:.4f} "
                    f"min matches={p.min_matches} deficient={p.deficient_records}"
                )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import Tracer
    from repro.runtime import Journal
    from repro.serve import (
        AnonymizationService,
        ResultCache,
        ServiceConfig,
        serve_http,
    )

    live = bool(
        args.live_telemetry or args.slo_advisory or args.flight_journal
    )
    config = ServiceConfig(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_timeout=args.default_timeout,
        rung_timeout=args.rung_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        live_telemetry=live,
        slo_advisory=args.slo_advisory,
        flight_journal=args.flight_journal,
        window_bucket_seconds=args.window_bucket,
        window_horizon_seconds=args.window_horizon,
    )
    cache = ResultCache(
        Journal(args.cache_journal) if args.cache_journal else None,
        retry=config.retry,
    )
    tracer = Tracer(args.trace) if args.trace else None
    service = AnonymizationService(config, cache, tracer=tracer)
    recovered = service.recover()
    if args.cache_journal:
        print(
            f"cache journal {args.cache_journal}: "
            f"recovered {recovered} cached results"
        )
    server = serve_http(service, host=args.host, port=args.port)
    if live:
        print(
            "live telemetry on: /metricz?window=N, /debugz"
            + (", SLO advisory" if args.slo_advisory else "")
        )
    # The smoke harness parses this line to learn the bound port.
    print(f"serving on http://{args.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import load_trace, write_chrome_trace

    if args.trace_command == "convert":
        events = load_trace(args.trace)
        write_chrome_trace(events, args.out)
        print(f"{len(events)} spans converted to {args.out}")
        return 0
    # summarize
    from repro.obs.summarize import summarize

    events = load_trace(args.trace) if args.trace else []
    snapshot = None
    if args.metrics:
        try:
            snapshot = json.loads(Path(args.metrics).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"cannot read metrics snapshot {args.metrics}: {exc}"
            ) from exc
    if not events and snapshot is None:
        raise ReproError("give a trace file and/or --metrics SNAPSHOT")
    print(summarize(events, snapshot))
    return 0


def _read_json(path: str, what: str) -> dict:
    import json
    from pathlib import Path

    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read {what} {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"{what} {path} is not a JSON object")
    return payload


def _cmd_obs(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import load_obs_journal, load_trace, render_prometheus
    from repro.obs.summarize import summarize

    if args.obs_command == "summarize":
        events = load_trace(args.trace) if args.trace else []
        snapshot = (
            _read_json(args.metrics, "metrics snapshot")
            if args.metrics
            else None
        )
        flight = (
            _read_json(args.flight, "flight dump") if args.flight else None
        )
        if not events and snapshot is None and flight is None:
            raise ReproError(
                "give at least one of --trace, --metrics, --flight"
            )
        print(summarize(events, snapshot, flight))
        return 0
    if args.obs_command == "export":
        text = render_prometheus(_read_json(args.snapshot, "snapshot"))
        if args.out:
            Path(args.out).write_text(text)
            print(f"exposition written to {args.out}", file=sys.stderr)
        else:
            print(text, end="")
        return 0
    # tail
    try:
        records = load_obs_journal(args.journal)
    except OSError as exc:
        raise ReproError(f"cannot read journal {args.journal}: {exc}") from exc
    shown = records[-args.records:] if args.records else []
    print(
        f"{args.journal}: {len(records)} records"
        + (f", showing last {len(shown)}" if shown else "")
    )
    for record in shown:
        if args.raw:
            print(json.dumps(record, sort_keys=True))
            continue
        snapshot = record.get("snapshot", {})
        counters = snapshot.get("counters", {}) if isinstance(snapshot, dict) else {}
        extras = [
            f"{key}={record[key]}"
            for key in sorted(record)
            if key not in ("schema", "kind", "stamp", "snapshot")
            and not isinstance(record[key], (dict, list))
        ]
        line = (
            f"  {record.get('kind', '?'):12s} stamp={record.get('stamp', '?')} "
            f"counters={len(counters)}"
        )
        if extras:
            line += " " + " ".join(extras)
        print(line)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets(verbose=args.verbose)
        if args.command == "anonymize":
            return _cmd_anonymize(args)
        if args.command == "utility":
            return _cmd_utility(args)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "obs":
            return _cmd_obs(args)
        return _cmd_experiment(args)
    except DeadlineExceeded as exc:
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        journal = getattr(args, "journal", None)
        if journal:
            print(
                f"finished cells are journaled; rerun with "
                f"--journal {journal} --resume to continue",
                file=sys.stderr,
            )
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
