"""Datafly — a full-domain (global-recoding) baseline.

Section II of the paper contrasts its *local recoding* model with the
full-domain generalization of LeFevre et al. and the global recoding of
Bayardo–Agrawal, noting those "are not directly comparable ... since we
consider the model of local recoding, in order to optimize the utility".
To make that utility argument measurable, this module implements the
classic full-domain heuristic — Sweeney's Datafly (2002) — on top of the
same hierarchies:

1. While more than k records live in undersized equivalence classes,
   generalize the attribute with the most distinct surviving values by
   one hierarchy level, *for every record at once* (full domain).
2. Suppress the ≤ k records that still sit in undersized classes.

The recoding ablation bench then quantifies how much utility local
recoding buys over this global baseline on identical inputs.

Only defined for laminar hierarchies (level = one parent step in the
tree), which all the built-in datasets use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnonymityError, SchemaError
from repro.measures.base import CostModel
from repro.runtime import checkpoint
from repro.tabular.encoding import EncodedTable


def _parent_table(enc: EncodedTable) -> list[np.ndarray]:
    """Per attribute, the parent node of every node (root maps to itself)."""
    parents = []
    # repro: allow[REP011] one pass per hierarchy level while building the parent table
    for att in enc.attrs:
        coll = att.collection
        if not coll.is_laminar:
            raise SchemaError(
                f"Datafly requires laminar hierarchies; attribute "
                f"{coll.attribute.name!r} has a non-laminar collection"
            )
        parents.append(
            np.array(
                [coll.parent(node) for node in range(coll.num_nodes)],
                dtype=np.int32,
            )
        )
    return parents


@dataclass(frozen=True)
class DataflyResult:
    """Outcome of one Datafly run."""

    node_matrix: np.ndarray  #: the full-domain generalization, ``[n, r]``
    generalization_steps: tuple[str, ...]  #: attribute generalized per step
    suppressed: tuple[int, ...]  #: records fully suppressed at the end

    @property
    def num_steps(self) -> int:
        """How many full-domain generalization steps were taken."""
        return len(self.generalization_steps)


def datafly(model: CostModel, k: int) -> DataflyResult:
    """Run the Datafly heuristic; the result is k-anonymous.

    Raises
    ------
    AnonymityError
        If k exceeds the table size.
    SchemaError
        If some attribute's collection is not laminar.
    """
    enc = model.enc
    n, r = enc.num_records, enc.num_attributes
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    parents = _parent_table(enc)

    nodes = enc.singleton_nodes.copy()
    steps: list[str] = []
    while True:
        checkpoint("core.datafly.step")
        _, inverse, counts = np.unique(
            nodes, axis=0, return_inverse=True, return_counts=True
        )
        small = counts[inverse] < k
        if int(small.sum()) <= k:
            break
        # Most distinct current values among records in undersized classes
        # (Sweeney's tie-break: the attribute with the widest spread).
        distinct = [
            len(np.unique(nodes[:, j])) for j in range(r)
        ]
        # Never pick an attribute already fully generalized.
        candidates = [
            j for j in range(r)
            if not (nodes[:, j] == enc.attrs[j].full_node).all()
        ]
        if not candidates:
            break  # everything is suppressed already; classes must merge
        j = max(candidates, key=lambda jj: (distinct[jj], -jj))
        nodes[:, j] = parents[j][nodes[:, j]]
        steps.append(enc.schema.attribute_names[j])

    # Suppress the residual undersized records entirely, then repair:
    # suppression moves records into the all-full class, which may leave
    # *their* former classmates undersized, and the all-full class itself
    # may end up smaller than k.  Iterate to a fixpoint: (a) suppress
    # every record in an undersized non-full class; (b) if only the full
    # class is undersized, top it up with surplus records from classes
    # that stay ≥ k (taking a whole class if no surplus exists).
    full = np.array([att.full_node for att in enc.attrs], dtype=np.int32)
    suppressed: set[int] = set()
    while True:
        checkpoint("core.datafly.step")
        _, inverse, counts = np.unique(
            nodes, axis=0, return_inverse=True, return_counts=True
        )
        is_full = (nodes == full).all(axis=1)
        undersized = counts[inverse] < k
        broken = np.flatnonzero(undersized & ~is_full)
        if broken.size:
            nodes[broken] = full
            suppressed.update(int(i) for i in broken)
            continue
        full_count = int(is_full.sum())
        if full_count == 0 or full_count >= k:
            break
        need = k - full_count
        donors: list[int] = []
        # Surplus records from classes that keep ≥ k members, largest
        # class first; whole smallest class as a last resort.
        class_members: dict[int, list[int]] = {}
        for i in range(n):
            if not is_full[i]:
                class_members.setdefault(int(inverse[i]), []).append(i)
        for members in sorted(class_members.values(), key=len, reverse=True):
            surplus = len(members) - k
            take = min(max(surplus, 0), need - len(donors))
            donors.extend(members[:take])
            if len(donors) >= need:
                break
        if len(donors) < need:
            smallest = min(class_members.values(), key=len)
            donors.extend(smallest)
        nodes[donors] = full
        suppressed.update(int(i) for i in donors)
    return DataflyResult(
        node_matrix=nodes,
        generalization_steps=tuple(steps),
        suppressed=tuple(sorted(suppressed)),
    )
