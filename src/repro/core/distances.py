"""The cluster distance functions of Section V-A.2.

All four distances (and the Nergiz–Clifton asymmetric variant mentioned
at the end of that section) are functions of five quantities only:

    |A|, d(A), |B|, d(B), d(A ∪ B)

where ``d`` is the generalization cost of a cluster under the active
measure (eq. 7).  Implementations are numpy-vectorized over the "B" side
so the agglomerative engine can score one cluster against all others in
a single call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ExperimentError

ArrayLike = "np.ndarray | float"


class ClusterDistance(ABC):
    """A distance between clusters, in terms of sizes and costs.

    ``evaluate`` broadcasts: the ``a``-side arguments are scalars (the
    cluster being merged), the ``b``-side and ``cost_union`` may be numpy
    arrays scoring many candidate partners at once.
    """

    #: Registry name, e.g. ``"d3"``.
    name: str = "abstract"
    #: Paper equation number, for reports.
    equation: str = ""
    #: Whether ``evaluate`` is non-decreasing in ``cost_union`` for
    #: fixed sizes/costs, *as floating-point code* (every operation
    #: applied to ``cost_union`` is a round-to-nearest-monotone map:
    #: multiply/divide by a positive constant, subtract a constant).
    #: The columnar backend's candidate pruning is only certified for
    #: distances that declare this; unknown subclasses default to
    #: ``False`` and fall back to the full bucket scan.
    monotone_in_union: bool = False

    @abstractmethod
    def evaluate(
        self,
        size_a,
        cost_a,
        size_b,
        cost_b,
        cost_union,
    ):
        """Distance value(s); smaller means "merge these first"."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class WeightedDelta(ClusterDistance):
    """Distance function 1 (eq. 8):
    ``|A∪B|·d(A∪B) − |A|·d(A) − |B|·d(B)``.

    The exact increase in the clustering objective Σ|S|·d(S) caused by
    the merge; favours unifying small clusters, giving balanced growth.
    """

    name = "d1"
    equation = "(8)"
    monotone_in_union = True  # (|A|+|B|)·cu: positive multiplier

    def evaluate(self, size_a, cost_a, size_b, cost_b, cost_union):
        return (size_a + size_b) * cost_union - size_a * cost_a - size_b * cost_b


class PlainDelta(ClusterDistance):
    """Distance function 2 (eq. 9): ``d(A∪B) − d(A) − d(B)``.

    May be negative (not a metric); produces unbalanced cluster growth,
    which the paper found preferable to balanced growth.
    """

    name = "d2"
    equation = "(9)"
    monotone_in_union = True  # cu − const

    def evaluate(self, size_a, cost_a, size_b, cost_b, cost_union):
        return cost_union - cost_a - cost_b


class LogNormalizedDelta(ClusterDistance):
    """Distance function 3 (eq. 10):
    ``(d(A∪B) − d(A) − d(B)) / log(|A∪B|)``.

    The division prioritizes adding records to *larger* clusters, pushing
    the unbalanced-growth idea one step further; one of the two
    consistently-best choices in the paper's experiments.
    """

    name = "d3"
    equation = "(10)"
    monotone_in_union = True  # (cu − const) / log₂(|A|+|B|), log ≥ 1

    def evaluate(self, size_a, cost_a, size_b, cost_b, cost_union):
        return (cost_union - cost_a - cost_b) / np.log2(size_a + size_b)


class RatioDistance(ClusterDistance):
    """Distance function 4 (eq. 11): ``d(A∪B) / (d(A) + d(B) + ε)``.

    The factor by which the merge inflates the summed costs; ε (paper
    value 0.1) handles singleton pairs whose costs are both zero.  The
    other consistently-best choice in the paper's experiments.
    """

    name = "d4"
    equation = "(11)"
    monotone_in_union = True  # cu / (d(A)+d(B)+ε), denominator > 0

    def __init__(self, epsilon: float = 0.1) -> None:
        if epsilon <= 0:
            raise ExperimentError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon

    def evaluate(self, size_a, cost_a, size_b, cost_b, cost_union):
        return cost_union / (cost_a + cost_b + self.epsilon)

    def __repr__(self) -> str:
        return f"RatioDistance(epsilon={self.epsilon})"


class NergizCliftonDelta(ClusterDistance):
    """The asymmetric variant ``d(A∪B) − d(B)`` of Nergiz & Clifton [17],
    noted at the end of Section V-A.2.  Included for the distance-function
    ablation."""

    name = "nc"
    equation = "[17]"
    monotone_in_union = True  # cu − d(B)

    def evaluate(self, size_a, cost_a, size_b, cost_b, cost_union):
        return cost_union - cost_b


_DISTANCES: dict[str, type[ClusterDistance]] = {
    "d1": WeightedDelta,
    "d2": PlainDelta,
    "d3": LogNormalizedDelta,
    "d4": RatioDistance,
    "nc": NergizCliftonDelta,
}


def get_distance(name: str) -> ClusterDistance:
    """Instantiate the distance function called ``name`` (d1..d4, nc)."""
    try:
        cls = _DISTANCES[name.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown distance {name!r}; known distances: {sorted(_DISTANCES)}"
        ) from None
    return cls()


def distance_names() -> list[str]:
    """All registered distance names, paper order first."""
    return ["d1", "d2", "d3", "d4", "nc"]
