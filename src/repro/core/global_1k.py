"""(k,k) → global (1,k) conversion, Algorithm 6 (Section V-C).

A (k,k)-anonymization guarantees every original record R_i has at least
k *neighbours* in the consistency graph, but possibly fewer than k
*matches* — neighbours whose edge extends to a perfect matching
(Definition 4.6).  The second adversary of Section IV-A exploits exactly
that gap.  Algorithm 6 closes it: while some R_i has fewer than k
matches, pick the non-match neighbour R̄_jh minimizing

    d_h = c(R_jh + R̄_i) − c(R̄_i)

(where R_jh is the *original* record with index j_h) and replace R̄_i by
R_jh + R̄_i.  The new edge (R_jh, R̄_i) lets the identity matching be
rerouted — R_i → R̄_jh, R_jh → R̄_i — so R̄_jh is upgraded from a
neighbour of R_i to a match of R_i.  Generalizing only ever *adds*
edges, and added edges never revoke allowed status (the set of perfect
matchings grows), so the procedure is monotone and terminates.

Instead of re-running Hopcroft–Karp per edge (the paper's O(√n·m²)
accounting), match sets are recomputed once per pass via the
O(n+m) allowed-edge structure theorem (:mod:`repro.matching.allowed`);
each deficient record receives one fix per pass, mirroring the paper's
observation that "one such step was sufficient [...] in almost all of
our experiments".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnonymityError
from repro.matching.allowed import allowed_edges
from repro.matching.bipartite import ConsistencyGraph
from repro.measures.base import CostModel
from repro.runtime import checkpoint


@dataclass
class GlobalConversionStats:
    """Diagnostics of one Algorithm 6 run (used by the G1 experiment)."""

    passes: int = 0  #: how many recompute-fix passes ran
    fixes: int = 0  #: total fix steps applied
    initial_deficient: int = 0  #: records with < k matches before any fix
    deficiency_histogram: dict[int, int] = field(default_factory=dict)
    #: initial (k − matches) histogram over deficient records


def global_one_k_anonymize(
    model: CostModel,
    node_matrix: np.ndarray,
    k: int,
    max_passes: int | None = None,
) -> tuple[np.ndarray, GlobalConversionStats]:
    """Run Algorithm 6; returns (new node matrix, diagnostics).

    Parameters
    ----------
    model:
        Cost model defining c(·).
    node_matrix:
        A (k,k)-anonymization of the model's table, record i generalizing
        row i.  (Checked: a record with < k neighbours is rejected, since
        then no fix candidate Q \\ P need exist.)
    k:
        The anonymity parameter.
    max_passes:
        Safety bound on fix passes; defaults to k + 1, which suffices
        because every pass adds at least one match to every deficient
        record.

    Raises
    ------
    AnonymityError
        If the input is not a (1,k)-anonymization, a record does not
        generalize its row, or the pass bound is exhausted (indicates a
        bug, not a data property).
    """
    enc = model.enc
    n = enc.num_records
    nodes = np.array(node_matrix, dtype=np.int32, copy=True)
    if nodes.shape != (n, enc.num_attributes):
        raise AnonymityError(
            f"node matrix has shape {nodes.shape}, expected "
            f"{(n, enc.num_attributes)}"
        )
    # repro: allow[REP011] O(n) precondition validation before the checkpointed conversion passes
    for i in range(n):
        if not bool(enc.consistency_mask(i, nodes[i])):
            raise AnonymityError(
                f"generalized record {i} does not generalize original record {i}"
            )
    if max_passes is None:
        max_passes = k + 1

    stats = GlobalConversionStats()
    for _ in range(max_passes):
        checkpoint("core.global_1k.pass")
        graph = ConsistencyGraph(enc, nodes)
        adjacency = graph.adjacency_lists()
        degrees = graph.left_degrees()
        if int(degrees.min()) < k:
            raise AnonymityError(
                "input is not a (1,k)-anonymization: record "
                f"{int(degrees.argmin())} has only {int(degrees.min())} "
                f"neighbours (< k={k})"
            )
        allowed = allowed_edges(adjacency, n)
        deficient = [i for i in range(n) if len(allowed[i]) < k]
        if not deficient:
            break
        if stats.passes == 0:
            stats.initial_deficient = len(deficient)
            for i in deficient:
                gap = k - len(allowed[i])
                stats.deficiency_histogram[gap] = (
                    stats.deficiency_histogram.get(gap, 0) + 1
                )
        stats.passes += 1
        for i in deficient:
            neighbours = adjacency[i]
            candidates = [j for j in neighbours if j not in allowed[i]]
            if not candidates:  # pragma: no cover - excluded by the degree check
                raise AnonymityError(
                    f"record {i}: no non-match neighbours to upgrade"
                )
            cand = np.asarray(candidates, dtype=np.int64)
            # d_h = c(R_jh + R̄_i) − c(R̄_i), R_jh the original record j_h.
            union = enc.join_rows(enc.singleton_nodes[cand], nodes[i])
            cost_new = np.asarray(model.record_cost(union), dtype=np.float64)
            h = int(cost_new.argmin())  # c(R̄_i) is constant; min d_h = min c
            nodes[i] = union[h]
            stats.fixes += 1
    else:
        raise AnonymityError(
            f"Algorithm 6 did not converge within {max_passes} passes"
        )
    return nodes, stats
