"""Greedy k-member clustering (Byun et al.), a third clustering comparator.

Section II notes that clustering-based anonymization (Aggarwal et
al. [1]) is an alternative route to the same goal and that the paper's
"anonymity notions are independent of the underlying clustering
method".  The k-member algorithm is the classic greedy representative
of that family and a natural foil for the agglomerative engine:

1. start a cluster from the record *furthest* (by pairwise closure
   cost) from the previously completed cluster's seed;
2. grow it one record at a time, always adding the record whose
   addition increases the cluster's cost least (the same increment rule
   as Algorithm 4, but partitioning instead of overlapping);
3. when the cluster reaches k records, close it and repeat; leftover
   records (< k) join their individually cheapest clusters.

Every cluster has exactly k records (bar the leftover top-ups), so the
output is k-anonymous.  Complexity O(n²/k · n) worst case, vectorized
over unique rows like everything else.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.runtime import checkpoint


def kmember_clustering(model: CostModel, k: int) -> Clustering:
    """Greedy k-member partitioning; every cluster has ≥ k records.

    Raises
    ------
    AnonymityError
        If k exceeds the table size or the table is empty.
    """
    enc = model.enc
    n = enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    if k <= 1:
        return Clustering(n, [[i] for i in range(n)])

    unassigned = np.ones(n, dtype=bool)
    singletons = enc.singleton_nodes
    clusters: list[list[int]] = []
    # The "previous seed" starts as the first record, per the original
    # algorithm's arbitrary initialization (deterministic here).
    anchor_nodes = singletons[0]

    while int(unassigned.sum()) >= k:
        checkpoint("core.kmember.cluster")
        candidates = np.flatnonzero(unassigned)
        # Seed: the unassigned record furthest from the previous anchor.
        pair_costs = np.asarray(
            model.record_cost(
                enc.join_rows(singletons[candidates], anchor_nodes)
            ),
            dtype=np.float64,
        )
        seed = int(candidates[int(pair_costs.argmax())])
        members = [seed]
        unassigned[seed] = False
        cur = singletons[seed].copy()
        cur_cost = float(model.record_cost(cur))
        while len(members) < k:
            candidates = np.flatnonzero(unassigned)
            union = enc.join_rows(singletons[candidates], cur)
            costs = np.asarray(model.record_cost(union), dtype=np.float64)
            pick = int(costs.argmin())
            chosen = int(candidates[pick])
            members.append(chosen)
            unassigned[chosen] = False
            cur = union[pick]
            cur_cost = float(costs[pick])
        clusters.append(members)
        anchor_nodes = cur

    # Leftovers (< k): each joins the cluster whose cost grows least.
    leftover = [int(i) for i in np.flatnonzero(unassigned)]
    if leftover and not clusters:  # pragma: no cover - excluded by k ≤ n
        raise AnonymityError("internal error: no cluster to absorb leftovers")
    if leftover:
        closure_nodes = np.array(
            [enc.closure_of_records(c) for c in clusters], dtype=np.int32
        )
        closure_costs = np.asarray(
            model.record_cost(closure_nodes), dtype=np.float64
        )
        # repro: allow[REP011] distributes the < k leftover records after the checkpointed clustering loop
        for record in leftover:
            union = enc.join_rows(closure_nodes, singletons[record])
            costs = np.asarray(model.record_cost(union), dtype=np.float64)
            delta = costs - closure_costs
            target = int(delta.argmin())
            clusters[target].append(record)
            closure_nodes[target] = union[target]
            closure_costs[target] = costs[target]
    return Clustering(n, clusters)
