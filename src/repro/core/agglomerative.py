"""The agglomerative k-anonymization algorithms (Section V-A.1).

:func:`agglomerative_clustering` implements Algorithm 1 — start from
singleton clusters, repeatedly unify the two closest clusters, and move
clusters to the output once they reach size k — and, with
``modified=True``, Algorithm 2's refinement: before a ripe cluster is
finalized it is shrunk back to exactly k records, expelling the members
whose removal leaves the cheapest sub-cluster, which re-enter the pool as
singletons.

The paper's O(n²) bound is achieved by maintaining a full pairwise
distance matrix plus per-row minima: each merge recomputes one row of
distances (vectorized via the per-attribute join/cost tables) and rescans
only the rows whose cached nearest neighbour was invalidated.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.clustering import Clustering
from repro.core.distances import ClusterDistance
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.obs import count
from repro.runtime import checkpoint


class _Engine:
    """Mutable state for one run of Algorithm 1/2.

    Subclass seam: :class:`repro.core.columnar._ColumnarEngine` inherits
    the merge loop, shrink step and leftover distribution unchanged and
    overrides only the distance bookkeeping (``_init_distances``,
    ``_refresh_row``, ``_rescan_row``, ``_deactivate``, ``_pair_value``)
    with a matrix-free bucketed scheme that reproduces this engine's
    ``row_min``/``row_arg`` state — and therefore its merge sequence —
    bit for bit.
    """

    def __init__(self, model: CostModel, distance: ClusterDistance, k: int) -> None:
        self._init_slots(model, distance, k)
        self._init_distances()

    def _init_slots(
        self, model: CostModel, distance: ClusterDistance, k: int
    ) -> None:
        """Allocate the per-slot cluster state shared by all backends.

        Split from ``__init__`` so benchmarks (and the columnar
        subclass) can build an engine at an arbitrary prepared state
        without paying for the dense all-pairs initialization.
        """
        enc = model.enc
        n = enc.num_records
        self.enc = enc
        self.model = model
        self.distance = distance
        self.k = k

        # Slot arrays.  At most n clusters are ever alive at once, so n
        # slots suffice; slots freed by merges are recycled for the
        # singletons Algorithm 2 expels.
        self.nodes = enc.singleton_nodes.copy()  # [n, r] closure nodes
        self.sizes = np.ones(n, dtype=np.int64)
        self.costs = np.zeros(n, dtype=np.float64)
        self.members: list[list[int] | None] = [[i] for i in range(n)]
        self.active = np.ones(n, dtype=bool)
        self.free_slots: list[int] = []

        self.row_min = np.full(n, np.inf, dtype=np.float64)
        self.row_arg = np.zeros(n, dtype=np.int64)

        self.output: list[list[int]] = []

        # Work-unit tallies, flushed to repro.obs once per run() so the
        # hot loops only pay integer increments.
        self.stat_merges = 0
        self.stat_scanned = 0  # candidate minima examined by the argmin
        self.stat_pruned = 0  # rows whose cached minimum skipped a rescan
        self.stat_rescans = 0
        self.stat_shrink_candidates = 0
        self.stat_expelled = 0

    # ------------------------------------------------------------------ #
    # distance bookkeeping
    # ------------------------------------------------------------------ #

    def _init_distances(self) -> None:
        """All-pairs singleton distances, one broadcast per attribute."""
        enc, model = self.enc, self.model
        n = enc.num_records
        cost_union = np.zeros((n, n), dtype=np.float64)
        col = self.nodes
        # repro: allow[REP011] one-time O(u^2) matrix fill, straight after the core.agglomerative.init checkpoint
        for j, att in enumerate(enc.attrs):
            joined = att.join[col[:, None, j], col[None, :, j]]
            cost_union += model.node_costs[j][joined]
        cost_union /= enc.num_attributes
        dist = self.distance.evaluate(
            self.sizes[:, None],
            self.costs[:, None],
            self.sizes[None, :],
            self.costs[None, :],
            cost_union,
        )
        dist = np.asarray(dist, dtype=np.float64)
        np.fill_diagonal(dist, np.inf)
        self.matrix = dist
        self.row_min = dist.min(axis=1)
        self.row_arg = dist.argmin(axis=1)

    def _distances_from(self, x: int) -> np.ndarray:
        """Distance of cluster x to every slot (inf for inactive / self).

        Joins and costs are evaluated for the *active* slots only: late
        in a run most slots are retired, so the dense per-slot sweep of
        :meth:`_distances_from_dense` wastes most of its work.  Both
        produce bit-identical rows (same element-wise operations on the
        same values); the dense form is kept as the benchmark reference.
        """
        enc, model = self.enc, self.model
        act = np.flatnonzero(self.active)
        union = enc.join_rows(self.nodes[act], self.nodes[x])
        cost_union = model.record_cost(union)
        d = self.distance.evaluate(
            self.sizes[x],
            self.costs[x],
            self.sizes[act],
            self.costs[act],
            cost_union,
        )
        dist = np.full(self.active.size, np.inf, dtype=np.float64)
        dist[act] = np.asarray(d, dtype=np.float64)
        dist[x] = np.inf
        return dist

    def _distances_from_dense(self, x: int) -> np.ndarray:
        """Dense (all-slot) form of :meth:`_distances_from` — reference
        implementation for the ``agglomerative-distances`` benchmark pair."""
        enc, model = self.enc, self.model
        union = enc.join_rows(self.nodes, self.nodes[x])
        cost_union = model.record_cost(union)
        dist = self.distance.evaluate(
            self.sizes[x], self.costs[x], self.sizes, self.costs, cost_union
        )
        dist = np.asarray(dist, dtype=np.float64).copy()
        dist[~self.active] = np.inf
        dist[x] = np.inf
        return dist

    def _refresh_row(self, x: int) -> None:
        """Recompute row/column x of the matrix and repair row minima."""
        dist = self._distances_from(x)
        self.matrix[x, :] = dist
        self.matrix[:, x] = dist
        self.row_min[x] = dist.min()
        self.row_arg[x] = int(dist.argmin())
        # Other rows may now have a closer neighbour at x.
        better = dist < self.row_min
        better[x] = False
        self.row_min[better] = dist[better]
        self.row_arg[better] = x

    def _deactivate(self, x: int) -> None:
        self.active[x] = False
        self.matrix[x, :] = np.inf
        self.matrix[:, x] = np.inf
        self.row_min[x] = np.inf
        self.free_slots.append(x)

    def _rescan_row(self, x: int) -> None:
        """Recompute row x's cached minimum from the matrix."""
        row = self.matrix[x]
        self.row_min[x] = row.min()
        self.row_arg[x] = int(row.argmin())

    def _pair_value(self, x: int, y: int) -> float:
        """The currently-recorded distance of the pair ``(x, y)`` — the
        value ``_pop_closest_pair`` validates a cached minimum against."""
        return float(self.matrix[x, y])

    def _pop_closest_pair(self) -> tuple[int, int] | None:
        """The true closest active pair, via lazy staleness validation.

        ``row_min`` entries are never stale-high (every improvement is
        pushed eagerly by ``_refresh_row``), but they can be stale-low
        when the cached partner died or changed.  Instead of rescanning
        every affected row per merge, a cached minimum is validated only
        when it is about to win the global argmin — the classic lazy
        scheme that keeps the engine at the paper's O(n²).
        """
        # repro: allow[REP011] lazy-deletion heap pops between core.agglomerative.merge checkpoints, bounded by heap size
        while True:
            self.stat_scanned += 1
            x = int(np.argmin(self.row_min))
            best = self.row_min[x]
            if not np.isfinite(best):
                return None
            y = int(self.row_arg[x])
            if self.active[y] and self._pair_value(x, y) == best:
                return x, y
            self.stat_rescans += 1
            self._rescan_row(x)

    def _add_singleton(self, record: int) -> None:
        """Re-insert an expelled record as a fresh singleton cluster."""
        slot = self.free_slots.pop()
        self.nodes[slot] = self.enc.singleton_nodes[record]
        self.sizes[slot] = 1
        self.costs[slot] = 0.0
        self.members[slot] = [record]
        self.active[slot] = True
        self._refresh_row(slot)

    # ------------------------------------------------------------------ #
    # Algorithm 2: shrink a ripe cluster back to size k
    # ------------------------------------------------------------------ #

    def _shrink(self, member_list: list[int]) -> tuple[list[int], list[int]]:
        """Return (kept members of size k, expelled members).

        When every attribute's joins are exact
        (:attr:`~repro.tabular.encoding.EncodedTable.exact_joins`), all
        leave-one-out closures of one round come from prefix/suffix join
        folds — O(size) table lookups instead of the O(size²) closure
        scans of :meth:`_shrink_scan` — and the candidate distances are
        evaluated in one vectorized call.  ``np.argmax`` keeps the
        scan's first-max-wins tie-breaking, and the per-candidate float
        operations are element-wise identical, so both paths expel the
        same records.
        """
        if not self.enc.exact_joins:
            return self._shrink_scan(member_list)
        enc, model = self.enc, self.model
        kept = list(member_list)
        expelled: list[int] = []
        # repro: allow[REP011] expels one record per round, bounded by cluster size; one call per merge checkpoint
        while len(kept) > self.k:
            size = len(kept)
            self.stat_shrink_candidates += size
            closure = enc.closure_of_records(kept)
            cost_full = float(model.record_cost(closure))
            rest_nodes = enc.leave_one_out_closures(kept)
            cost_rest = np.asarray(
                model.record_cost(rest_nodes), dtype=np.float64
            )
            # dist(Ŝ, Ŝ \ {R̂_i}): the union of the two sets is Ŝ itself.
            d = np.asarray(
                self.distance.evaluate(
                    size, cost_full, size - 1, cost_rest, cost_full
                ),
                dtype=np.float64,
            )
            expelled.append(kept.pop(int(np.argmax(d))))
        return kept, expelled

    def _shrink_scan(self, member_list: list[int]) -> tuple[list[int], list[int]]:
        """Per-subset closure-scan form of :meth:`_shrink` — correct for
        any collection; reference for the ``agglomerative-shrink`` pair."""
        enc, model, distance = self.enc, self.model, self.distance
        kept = list(member_list)
        expelled: list[int] = []
        # repro: allow[REP011] scan-mode shrink, bounded by cluster size; one call per merge checkpoint
        while len(kept) > self.k:
            size = len(kept)
            self.stat_shrink_candidates += size
            closure = enc.closure_of_records(kept)
            cost_full = float(model.record_cost(closure))
            best_i, best_d = 0, -np.inf
            for i in range(size):
                rest = kept[:i] + kept[i + 1 :]
                cost_rest = model.cluster_cost(rest)
                # dist(Ŝ, Ŝ \ {R̂_i}): the union of the two sets is Ŝ itself.
                d_i = float(
                    self.distance.evaluate(
                        size, cost_full, size - 1, cost_rest, cost_full
                    )
                )
                if d_i > best_d:
                    best_i, best_d = i, d_i
            expelled.append(kept.pop(best_i))
        return kept, expelled

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, modified: bool) -> Clustering:
        k = self.k
        while True:
            alive = int(self.active.sum())
            if alive <= 1:
                break
            checkpoint("core.agglomerative.merge")
            rescans_before = self.stat_rescans
            pair = self._pop_closest_pair()
            if pair is None:
                break  # no finite pair left (cannot happen with >1 active)
            x, y = pair
            # Rows whose cached minimum survived this selection without
            # a rescan — the work the dense scheme would have redone.
            self.stat_pruned += max(
                0, alive - (self.stat_rescans - rescans_before)
            )
            self.stat_merges += 1

            merged = self.members[x] + self.members[y]  # type: ignore[operator]
            self.members[y] = None
            self._deactivate(y)

            if len(merged) >= k:
                if modified and len(merged) > k:
                    merged, expelled = self._shrink(merged)
                else:
                    expelled = []
                self.stat_expelled += len(expelled)
                self.output.append(merged)
                self.members[x] = None
                self._deactivate(x)
                for record in expelled:
                    self._add_singleton(record)
            else:
                self.members[x] = merged
                self.nodes[x] = self.enc.closure_of_records(merged)
                self.sizes[x] = len(merged)
                self.costs[x] = float(self.model.record_cost(self.nodes[x]))
                self._refresh_row(x)

        # Line 10: distribute the members of the at-most-one leftover
        # cluster (size < k) to their closest output clusters.
        leftover_slots = np.flatnonzero(self.active)
        if leftover_slots.size:
            slot = int(leftover_slots[0])
            leftover = self.members[slot] or []
            self._distribute_leftover(leftover)
        self._flush_stats()
        return Clustering(self.enc.num_records, self.output)

    def _flush_stats(self) -> None:
        """Publish the run's work tallies to any active metrics scope.

        Zero tallies are skipped so snapshots only list counters the
        run actually exercised (e.g. no shrink counters on Algorithm 1).
        """
        tallies = (
            ("core.agglomerative.merges", self.stat_merges),
            ("core.agglomerative.candidates_scanned", self.stat_scanned),
            ("core.agglomerative.candidates_pruned", self.stat_pruned),
            ("core.agglomerative.row_rescans", self.stat_rescans),
            (
                "core.agglomerative.shrink_candidates",
                self.stat_shrink_candidates,
            ),
            ("core.agglomerative.records_expelled", self.stat_expelled),
        )
        for name, value in tallies:
            if value:
                count(name, value)

    def _distribute_leftover(self, leftover: list[int]) -> None:
        enc, model = self.enc, self.model
        if not leftover:
            return
        if not self.output:
            raise AnonymityError(
                "internal error: leftover records but no finished clusters"
            )
        out_nodes = np.array(
            [enc.closure_of_records(c) for c in self.output], dtype=np.int32
        )
        out_sizes = np.array([len(c) for c in self.output], dtype=np.int64)
        out_costs = np.asarray(model.record_cost(out_nodes), dtype=np.float64)
        # repro: allow[REP011] single post-merge pass distributing the < k leftover records
        for record in leftover:
            single = enc.singleton_nodes[record]
            union = enc.join_rows(out_nodes, single)
            cost_union = np.asarray(model.record_cost(union), dtype=np.float64)
            dist = self.distance.evaluate(
                1, 0.0, out_sizes, out_costs, cost_union
            )
            target = int(np.asarray(dist).argmin())
            self.output[target].append(record)
            out_nodes[target] = union[target]
            out_sizes[target] += 1
            out_costs[target] = cost_union[target]


def agglomerative_clustering(
    model: CostModel,
    k: int,
    distance: ClusterDistance,
    modified: bool = False,
    backend: str | None = None,
) -> Clustering:
    """Run Algorithm 1 (or, with ``modified=True``, Algorithm 1+2).

    Parameters
    ----------
    model:
        Cost model (measure bound to the encoded table) defining d(S).
    k:
        The anonymity parameter; clusters of size ≥ k certify k-anonymity.
    distance:
        Cluster distance driving the merge order (Section V-A.2).
    modified:
        Apply the Algorithm 2 shrink step to ripe clusters, keeping all
        final clusters at size exactly k where possible.
    backend:
        Execution backend (:data:`repro.core.backend.BACKENDS`):
        ``"python"`` runs the dense-matrix reference engine,
        ``"columnar"`` the bucketed matrix-free engine of
        :mod:`repro.core.columnar`.  Both produce bit-identical
        clusterings (same merge sequence, same tie-breaking); ``None``
        resolves via :func:`repro.core.backend.resolve_backend`.

    Returns
    -------
    A :class:`Clustering` whose every cluster has ≥ k records.

    Raises
    ------
    AnonymityError
        If ``k`` exceeds the number of records or the table is empty.
    """
    n = model.enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    if k <= 1:
        # Trivial: every record is its own cluster, nothing is generalized.
        return Clustering(n, [[i] for i in range(n)])
    # The O(n²) all-pairs matrix (resp. the O(u²) bucket fill) is one
    # vectorized sweep; checkpoint before committing to it so a spent
    # deadline fails fast.
    checkpoint("core.agglomerative.init")
    if resolve_backend(backend) == "columnar":
        from repro.core.columnar import _ColumnarEngine

        return _ColumnarEngine(model, distance, k).run(modified)
    return _Engine(model, distance, k).run(modified)
