"""Core algorithms and anonymity notions — the paper's contribution.

Sections IV and V: the five k-type anonymity notions with verifiers, the
agglomerative k-anonymization algorithms and their distance functions,
the forest baseline, the (k,1)/(1,k)/(k,k) anonymizers, the global
(1,k) converter, brute-force optima, and the :func:`anonymize` facade.
"""

from repro.core.agglomerative import agglomerative_clustering
from repro.core.api import AnonymizationResult, anonymize
from repro.core.clustering import (
    Clustering,
    clustering_cost,
    clustering_to_nodes,
    clusters_from_assignment,
)
from repro.core.distances import (
    ClusterDistance,
    LogNormalizedDelta,
    NergizCliftonDelta,
    PlainDelta,
    RatioDistance,
    WeightedDelta,
    distance_names,
    get_distance,
)
from repro.core.datafly import DataflyResult, datafly
from repro.core.forest import forest_clustering
from repro.core.mondrian import mondrian_clustering
from repro.core.scalable import blocked_agglomerative
from repro.core.global_1k import GlobalConversionStats, global_one_k_anonymize
from repro.core.k1 import k1_expansion, k1_nearest_neighbors, k1_optimal_cost
from repro.core.kk import best_kk_anonymize, kk_anonymize
from repro.core.kmember import kmember_clustering
from repro.core.notions import (
    NOTIONS,
    AnonymityProfile,
    anonymity_profile,
    group_sizes,
    is_global_one_k_anonymous,
    is_k_anonymous,
    is_k_one_anonymous,
    is_kk_anonymous,
    is_one_k_anonymous,
    left_link_counts,
    match_count_per_record,
    right_link_counts,
    satisfies,
)
from repro.core.one_k import one_k_anonymize
from repro.core.optimal import optimal_k_anonymity

__all__ = [
    "anonymize",
    "AnonymizationResult",
    "Clustering",
    "clustering_to_nodes",
    "clustering_cost",
    "clusters_from_assignment",
    "ClusterDistance",
    "WeightedDelta",
    "PlainDelta",
    "LogNormalizedDelta",
    "RatioDistance",
    "NergizCliftonDelta",
    "get_distance",
    "distance_names",
    "agglomerative_clustering",
    "forest_clustering",
    "datafly",
    "DataflyResult",
    "mondrian_clustering",
    "blocked_agglomerative",
    "kmember_clustering",
    "k1_expansion",
    "k1_nearest_neighbors",
    "k1_optimal_cost",
    "one_k_anonymize",
    "kk_anonymize",
    "best_kk_anonymize",
    "global_one_k_anonymize",
    "GlobalConversionStats",
    "optimal_k_anonymity",
    "NOTIONS",
    "AnonymityProfile",
    "anonymity_profile",
    "group_sizes",
    "is_k_anonymous",
    "is_one_k_anonymous",
    "is_k_one_anonymous",
    "is_kk_anonymous",
    "is_global_one_k_anonymous",
    "satisfies",
    "left_link_counts",
    "right_link_counts",
    "match_count_per_record",
]
