"""Exact (exponential-time) optima for tiny tables.

The k-anonymization problem is NP-hard [16], and the paper's algorithms
are heuristics or approximations.  To *test* them — approximation ratios
(Proposition 5.1), sanity of the heuristics — we need ground truth on
small inputs, which this module provides:

* :func:`optimal_k_anonymity` — best partition into blocks of size ≥ k,
  by exhaustive canonical partition enumeration (n ≲ 10).
* :func:`repro.core.k1.k1_optimal_cost` — the paper's O(n^k) exact
  (k,1) procedure lives next to the heuristics it validates.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.errors import AnonymityError
from repro.measures.base import CostModel


def optimal_k_anonymity(
    model: CostModel, k: int, max_records: int = 12
) -> tuple[float, Clustering]:
    """Optimal k-anonymization cost and clustering, by brute force.

    Enumerates set partitions in canonical order (each element either
    joins an existing block or opens a new one), pruning partitions that
    can no longer make every block ≥ k.

    Raises
    ------
    AnonymityError
        If the table is larger than ``max_records`` (the search is
        exponential) or k is infeasible.
    """
    n = model.enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if n > max_records:
        raise AnonymityError(
            f"optimal search is exponential; refusing n={n} > {max_records}"
        )
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    if k <= 1:
        identity = Clustering(n, [[i] for i in range(n)])
        return 0.0, identity

    best_cost = np.inf
    best_blocks: list[list[int]] | None = None
    blocks: list[list[int]] = []

    def weight(blocks_now: list[list[int]]) -> float:
        return sum(
            len(b) * model.cluster_cost(b) for b in blocks_now
        )

    def recurse(i: int) -> None:
        nonlocal best_cost, best_blocks
        if i == n:
            if all(len(b) >= k for b in blocks):
                cost = weight(blocks) / n
                if cost < best_cost:
                    best_cost = cost
                    best_blocks = [list(b) for b in blocks]
            return
        remaining = n - i
        # Feasibility prune: every currently-undersized block still needs
        # top-ups; remaining records must cover all deficits.
        deficit = sum(max(0, k - len(b)) for b in blocks)
        if deficit > remaining:
            return
        for block in blocks:
            block.append(i)
            recurse(i + 1)
            block.pop()
        # New block only if a fresh block of size ≥ k can still be filled.
        if remaining >= k or not blocks:
            blocks.append([i])
            recurse(i + 1)
            blocks.pop()

    recurse(0)
    if best_blocks is None:
        raise AnonymityError("no feasible k-anonymous partition found")
    return float(best_cost), Clustering(n, best_blocks)
