"""Verifiers for the five k-type anonymity notions (Section IV).

Every verifier takes the encoded table, the generalization as a node
matrix and k, and answers both the yes/no question and the quantitative
one ("how many links does the worst record have"), which the privacy
audit builds on.

Notions
-------
* k-anonymity (Def. 4.1): every generalized record is identical to ≥ k−1
  others.
* (1,k) (Def. 4.4): every original record is consistent with ≥ k
  generalized records.
* (k,1) (Def. 4.4): every generalized record is consistent with ≥ k
  original records.
* (k,k) (Def. 4.4): both of the above.
* global (1,k) (Def. 4.6): every original record has ≥ k *matches* —
  neighbours whose edge extends to a perfect matching of the consistency
  graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.allowed import allowed_edges
from repro.matching.bipartite import ConsistencyGraph
from repro.tabular.encoding import EncodedTable

#: Canonical notion names accepted by :func:`satisfies` and the high-level API.
NOTIONS = ("k", "1k", "k1", "kk", "global-1k")


def group_sizes(node_matrix: np.ndarray) -> np.ndarray:
    """Per-record size of its equivalence class of identical generalized
    records (the quantity behind Definition 4.1)."""
    node_matrix = np.asarray(node_matrix)
    _, inverse, counts = np.unique(
        node_matrix, axis=0, return_inverse=True, return_counts=True
    )
    return counts[inverse]


def is_k_anonymous(node_matrix: np.ndarray, k: int) -> bool:
    """Definition 4.1: every record's equivalence class has size ≥ k."""
    return bool(group_sizes(node_matrix).min() >= k)


def left_link_counts(enc: EncodedTable, node_matrix: np.ndarray) -> np.ndarray:
    """For every original record, its number of consistent generalized
    records (degree in the consistency graph — the (1,k) quantity)."""
    return ConsistencyGraph(enc, node_matrix).left_degrees()


def right_link_counts(enc: EncodedTable, node_matrix: np.ndarray) -> np.ndarray:
    """For every generalized record, its number of consistent original
    records (the (k,1) quantity)."""
    return ConsistencyGraph(enc, node_matrix).right_degrees()


def is_one_k_anonymous(enc: EncodedTable, node_matrix: np.ndarray, k: int) -> bool:
    """(1,k)-anonymity (Definition 4.4)."""
    return bool(left_link_counts(enc, node_matrix).min() >= k)


def is_k_one_anonymous(enc: EncodedTable, node_matrix: np.ndarray, k: int) -> bool:
    """(k,1)-anonymity (Definition 4.4)."""
    return bool(right_link_counts(enc, node_matrix).min() >= k)


def is_kk_anonymous(enc: EncodedTable, node_matrix: np.ndarray, k: int) -> bool:
    """(k,k)-anonymity (Definition 4.4)."""
    graph = ConsistencyGraph(enc, node_matrix)
    return bool(
        graph.left_degrees().min() >= k and graph.right_degrees().min() >= k
    )


def match_count_per_record(enc: EncodedTable, node_matrix: np.ndarray) -> np.ndarray:
    """Number of matches (Definition 4.6) of every original record."""
    graph = ConsistencyGraph(enc, node_matrix)
    allowed = allowed_edges(graph.adjacency_lists(), graph.num_records)
    return np.array([len(s) for s in allowed], dtype=np.int64)


def is_global_one_k_anonymous(
    enc: EncodedTable, node_matrix: np.ndarray, k: int
) -> bool:
    """Global (1,k)-anonymity (Definition 4.6)."""
    return bool(match_count_per_record(enc, node_matrix).min() >= k)


def satisfies(
    enc: EncodedTable, node_matrix: np.ndarray, notion: str, k: int
) -> bool:
    """Check any notion by name: ``k``, ``1k``, ``k1``, ``kk``, ``global-1k``."""
    notion = notion.lower()
    if notion == "k":
        return is_k_anonymous(node_matrix, k)
    if notion == "1k":
        return is_one_k_anonymous(enc, node_matrix, k)
    if notion == "k1":
        return is_k_one_anonymous(enc, node_matrix, k)
    if notion == "kk":
        return is_kk_anonymous(enc, node_matrix, k)
    if notion in ("global-1k", "g1k", "global"):
        return is_global_one_k_anonymous(enc, node_matrix, k)
    raise ValueError(f"unknown anonymity notion {notion!r}; expected one of {NOTIONS}")


@dataclass(frozen=True)
class AnonymityProfile:
    """Quantitative anonymity summary of one generalization.

    ``min_*`` fields give the worst record's counts; the generalization
    satisfies the corresponding notion at level k iff the field is ≥ k.
    """

    min_group_size: int  #: Def. 4.1 quantity (k-anonymity level)
    min_left_links: int  #: Def. 4.4 (1,k) quantity
    min_right_links: int  #: Def. 4.4 (k,1) quantity
    min_matches: int  #: Def. 4.6 global (1,k) quantity

    def k_anonymity_level(self) -> int:
        """Largest k for which the table is k-anonymous."""
        return self.min_group_size

    def kk_level(self) -> int:
        """Largest k for which the table is (k,k)-anonymous."""
        return min(self.min_left_links, self.min_right_links)

    def global_level(self) -> int:
        """Largest k for which the table is globally (1,k)-anonymous."""
        return self.min_matches


def anonymity_profile(
    enc: EncodedTable, node_matrix: np.ndarray, with_matches: bool = True
) -> AnonymityProfile:
    """Compute all anonymity levels of a generalization at once.

    ``with_matches=False`` skips the (more expensive) match computation
    and reports ``min_matches = 0``.
    """
    graph = ConsistencyGraph(enc, node_matrix)
    min_group = int(group_sizes(node_matrix).min())
    min_left = int(graph.left_degrees().min())
    min_right = int(graph.right_degrees().min())
    if with_matches:
        allowed = allowed_edges(graph.adjacency_lists(), graph.num_records)
        min_matches = min(len(s) for s in allowed)
    else:
        min_matches = 0
    return AnonymityProfile(min_group, min_left, min_right, min_matches)
