"""(k,1)-anonymization (Section V-B.1): Algorithms 3 and 4.

Both algorithms build, for every record R_i, a set S_i of k records
containing R_i, and publish R̄_i = closure(S_i).  Every generalized
record is then consistent with at least the k members of its set —
(k,1)-anonymity.  Unlike k-anonymization the sets may overlap, which is
where the extra utility comes from.

Algorithm 3 ("nearest neighbours") joins each record with the k−1
records minimizing the *pairwise* cost d({R_i, R_j}); Proposition 5.1
gives it a (k−1)-approximation guarantee.  Algorithm 4 ("expansion")
grows S_i greedily, at each step adding the record with the smallest
cost increment d(S ∪ {R_j}) − d(S); it has no guarantee but dominated
Algorithm 3 in all of the paper's experiments.

Records with identical rows behave identically, so both algorithms run
once per *unique* row and broadcast the result — the costs and closures
only depend on the multiset of values.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import resolve_backend
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.runtime import checkpoint


def _check_k(model: CostModel, k: int) -> None:
    n = model.enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")


def _pair_cost_kernel(model: CostModel, backend: str | None):
    """Cost-of-union kernel: ``f(nodes_a, node_b) -> record costs``.

    The python backend materializes the union rows and prices them
    (``join_rows`` + ``record_cost``); the columnar backend uses the
    fused join→cost gather tables of
    :class:`repro.core.columnar.FusedJoinCost`.  Both produce
    bit-identical cost vectors (same lookups, same accumulation order).
    """
    if resolve_backend(backend) == "columnar":
        from repro.core.columnar import FusedJoinCost

        fused = FusedJoinCost(model)

        def kernel(nodes_a: np.ndarray, node_b: np.ndarray) -> np.ndarray:
            return fused.pair_costs(nodes_a, node_b)

        return kernel
    enc = model.enc

    def kernel(nodes_a: np.ndarray, node_b: np.ndarray) -> np.ndarray:
        union = enc.join_rows(nodes_a, node_b)
        return np.asarray(model.record_cost(union), dtype=np.float64)

    return kernel


def k1_nearest_neighbors(
    model: CostModel, k: int, backend: str | None = None
) -> np.ndarray:
    """Algorithm 3: join each record with its k−1 nearest records.

    "Nearest" is measured by the pairwise generalization cost
    d({R_i, R_j}) (line 1 of Algorithm 3); ties break on row order, and
    duplicate rows are free nearest neighbours (pair cost 0).
    ``backend`` selects the scan kernel (:func:`_pair_cost_kernel`);
    the output is backend-independent, bit for bit.

    Returns the ``[n, r]`` node matrix of the (k,1)-anonymization.
    """
    _check_k(model, k)
    enc = model.enc
    n = enc.num_records
    if k <= 1:
        return enc.singleton_nodes.copy()

    u_nodes = enc.unique_singleton_nodes  # [u, r]
    counts = enc.unique_counts
    u = enc.num_unique
    unique_result = np.empty_like(u_nodes)
    pair_costs = _pair_cost_kernel(model, backend)

    for a in range(u):
        checkpoint("core.k1.row")
        # closure({row_a, row_b}) costs against every unique row
        pair_cost = np.asarray(pair_costs(u_nodes, u_nodes[a]), dtype=np.float64)
        order = np.argsort(pair_cost, kind="stable")

        closure = u_nodes[a].copy()
        need = k - 1
        avail_self = counts[a] - 1  # duplicate copies of row a, cost 0
        take_self = min(avail_self, need)
        need -= take_self
        for b in order:
            if need <= 0:
                break
            if b == a:
                continue
            take = min(int(counts[b]), need)
            if take > 0:
                closure = enc.join_rows(closure, u_nodes[b])
                need -= take
        if need > 0:
            raise AnonymityError(
                "internal error: fewer than k records available"
            )
        unique_result[a] = closure

    return unique_result[enc.unique_inverse]


def k1_expansion(
    model: CostModel, k: int, backend: str | None = None
) -> np.ndarray:
    """Algorithm 4: grow each record's set greedily by cheapest increment.

    At every step the candidate minimizing d(S ∪ {R_j}) − d(S) is added
    (first-index tie-break over unique rows).  Note the increment may be
    negative under the entropy measure — generalizing into a subset
    dominated by a frequent value can *reduce* conditional entropy — so
    the argmin is re-evaluated from scratch every step.  Under the
    columnar backend the scan prices candidate unions via the fused
    gather tables and materializes only the union row actually chosen;
    the chosen indices and output are bit-identical.

    Returns the ``[n, r]`` node matrix of the (k,1)-anonymization.
    """
    _check_k(model, k)
    enc = model.enc
    if k <= 1:
        return enc.singleton_nodes.copy()

    u_nodes = enc.unique_singleton_nodes
    counts = enc.unique_counts
    u = enc.num_unique
    unique_result = np.empty_like(u_nodes)
    columnar = resolve_backend(backend) == "columnar"
    pair_costs = _pair_cost_kernel(model, backend)

    for a in range(u):
        checkpoint("core.k1.row")
        remaining = counts.copy()
        remaining[a] -= 1
        cur = u_nodes[a].copy()
        cur_cost = float(model.record_cost(cur))
        size = 1
        while size < k:
            checkpoint("core.k1.grow")
            if columnar:
                cost_union = pair_costs(u_nodes, cur)  # [u]
                union = None
            else:
                union = enc.join_rows(u_nodes, cur)  # [u, r]
                cost_union = np.asarray(
                    model.record_cost(union), dtype=np.float64
                )
            delta = cost_union - cur_cost
            delta[remaining <= 0] = np.inf
            b = int(delta.argmin())
            if not np.isfinite(delta[b]):
                raise AnonymityError(
                    "internal error: fewer than k records available"
                )
            if union is None:
                cur = enc.join_rows(u_nodes[b][None, :], cur)[0]
            else:
                cur = union[b]
            cur_cost = float(cost_union[b])
            remaining[b] -= 1
            size += 1
        unique_result[a] = cur

    return unique_result[enc.unique_inverse]


def k1_optimal_cost(model: CostModel, k: int) -> float:
    """Cost of the *optimal* (k,1)-anonymization, by brute force.

    Implements the O(n^k) exact procedure sketched at the start of
    Section V-B.1: for every record, the best (k−1)-subset of companions.
    Exponential — only for the tiny tables the tests use to validate
    Proposition 5.1's approximation bound.
    """
    from itertools import combinations

    _check_k(model, k)
    enc = model.enc
    n = enc.num_records
    total = 0.0
    for i in range(n):
        others = [j for j in range(n) if j != i]
        best = np.inf
        for companions in combinations(others, k - 1):
            cost = model.cluster_cost((i, *companions))
            if cost < best:
                best = cost
        total += best
    return total / n
