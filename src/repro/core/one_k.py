"""The (1,k)-anonymizer, Algorithm 5 (Section V-B.2).

Given *any* generalization g(D) whose i-th record generalizes the i-th
original record, Algorithm 5 further generalizes records of g(D) until
every original record is consistent with at least k generalized records.
Applied to a (k,1)-anonymization it yields a (k,k)-anonymization — the
coupling lives in :mod:`repro.core.kk`.

For each original record R_i with only ℓ < k consistent generalized
records, the k−ℓ generalized records R̄_j minimizing
``c(R̄_i + R̄_j) − c(R̄_j)`` are replaced by R̄_i + R̄_j (the minimal
generalized record covering both).  Since R̄_i generalizes R_i, the
replacement is consistent with R_i; and since replacement only *adds*
values, every consistency established earlier survives — in particular
(k,1)-anonymity of the input is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.k1 import _pair_cost_kernel
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.runtime import checkpoint


def one_k_anonymize(
    model: CostModel,
    node_matrix: np.ndarray,
    k: int,
    join_with: str = "generalized",
    backend: str | None = None,
) -> np.ndarray:
    """Run Algorithm 5; returns a new node matrix, input left untouched.

    Parameters
    ----------
    model:
        Cost model defining c(·).
    node_matrix:
        The input generalization g(D), ``[n, r]`` node indices.  Record i
        must generalize original record i (checked).
    k:
        Target number of consistent generalized records per original.
    join_with:
        ``"generalized"`` (the paper's Algorithm 5: deficient records are
        joined with R̄_i) or ``"original"`` (join with the singleton
        record R_i instead — a per-record never-wider variant this
        library adds for the ablation study; it also fixes consistency
        with R_i and also preserves (k,1), and is usually — though not
        always, because candidate selection interacts across records —
        slightly cheaper overall).
    backend:
        ``"columnar"`` prices candidate unions through the fused
        join→cost tables and materializes union rows only for the
        ``k − ℓ`` records actually replaced; output is bit-identical
        to the python backend.

    Raises
    ------
    AnonymityError
        If k exceeds n, or record i does not generalize row i.
    """
    if join_with not in ("generalized", "original"):
        raise AnonymityError(
            f"join_with must be 'generalized' or 'original', got {join_with!r}"
        )
    enc = model.enc
    n = enc.num_records
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    nodes = np.array(node_matrix, dtype=np.int32, copy=True)
    if nodes.shape != (n, enc.num_attributes):
        raise AnonymityError(
            f"node matrix has shape {nodes.shape}, expected "
            f"{(n, enc.num_attributes)}"
        )

    # Precondition of the algorithm ("It is assumed that for all i,
    # R̄_i is a generalization of R_i").
    # repro: allow[REP011] O(n) precondition validation before the checkpointed main loop
    for i in range(n):
        if not bool(enc.consistency_mask(i, nodes[i])):
            raise AnonymityError(
                f"generalized record {i} does not generalize original record {i}"
            )

    columnar = resolve_backend(backend) == "columnar"
    pair_costs = _pair_cost_kernel(model, backend)

    for i in range(n):
        checkpoint("core.one_k.record")
        consistent = enc.consistency_mask(i, nodes)
        ell = int(consistent.sum())
        if ell >= k:
            continue
        candidates = np.flatnonzero(~consistent)
        anchor = nodes[i] if join_with == "generalized" else enc.singleton_nodes[i]
        if columnar:
            union = None
            cost_new = pair_costs(nodes[candidates], anchor)
        else:
            union = enc.join_rows(nodes[candidates], anchor)
            cost_new = np.asarray(model.record_cost(union), dtype=np.float64)
        cost_old = np.asarray(
            model.record_cost(nodes[candidates]), dtype=np.float64
        )
        delta = cost_new - cost_old
        order = np.argsort(delta, kind="stable")[: k - ell]
        chosen = candidates[order]
        if union is None:
            nodes[chosen] = enc.join_rows(nodes[chosen], anchor)
        else:
            nodes[chosen] = union[order]
    return nodes
