"""Blocked agglomerative anonymization — the §VII scalability item.

The paper's conclusions ask for "more scalable algorithms".  The
agglomerative engine is O(n²) with an O(n²) memory footprint (the
pairwise matrix), which binds at n in the tens of thousands.  This
module implements the natural blocking scheme:

1. *Pre-partition* the records into blocks of bounded size with the
   (cheap, O(n log n)) Mondrian median splitter — which groups records
   that are already close in the quasi-identifier space;
2. run the full Algorithm 1/2 machinery *within* each block.

Each block is anonymized independently, so the result is k-anonymous
(every within-block cluster has ≥ k records), total time drops to
O(n·B) for block size B, and the distance matrix shrinks to B².  The
price is merges that can no longer cross block boundaries; the
`bench_scalable.py` benchmark quantifies the quality loss (typically a
few percent) against the wall-clock gain.
"""

from __future__ import annotations

import numpy as np

from repro.core.agglomerative import agglomerative_clustering
from repro.core.clustering import Clustering
from repro.core.distances import ClusterDistance
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.runtime import checkpoint
from repro.tabular.encoding import EncodedTable
from repro.tabular.table import Table


def _partition_blocks(
    enc: EncodedTable, block_size: int, k: int
) -> list[np.ndarray]:
    """Mondrian-style median splits until blocks fit ``block_size``.

    Splits keep both sides ≥ max(k, block_size // 4) so no block ever
    drops below k records.
    """
    floor = max(k, block_size // 4)
    blocks: list[np.ndarray] = []
    queue: list[np.ndarray] = [np.arange(enc.num_records, dtype=np.int64)]
    # repro: allow[REP011] emits blocks of >= block_size//4 records, at most 4n/block_size rounds; each block hits core.scalable.block
    while queue:
        members = queue.pop()
        if len(members) <= block_size:
            blocks.append(members)
            continue
        codes = enc.codes[members]
        order = np.argsort(
            [-len(np.unique(codes[:, j])) for j in range(enc.num_attributes)],
            kind="stable",
        )
        split = None
        for j in order:
            column = codes[:, j]
            if len(np.unique(column)) < 2:
                continue
            median = np.median(column)
            left_mask = column <= median
            if left_mask.all():
                left_mask = column < median
            left, right = members[left_mask], members[~left_mask]
            if len(left) >= floor and len(right) >= floor:
                split = (left, right)
                break
        if split is None:
            blocks.append(members)  # unsplittable (near-uniform) block
        else:
            queue.extend(split)
    return blocks


def blocked_agglomerative(
    model: CostModel,
    k: int,
    distance: ClusterDistance,
    block_size: int = 512,
    modified: bool = False,
    backend: str | None = None,
) -> Clustering:
    """Algorithm 1/2 inside Mondrian blocks of at most ``block_size``.

    Parameters
    ----------
    model:
        Cost model over the full table.
    k:
        Anonymity parameter.
    distance:
        Cluster distance for the within-block agglomeration.
    block_size:
        Upper bound on block size; the O(n²) engine only ever sees
        tables this large.  Must be ≥ 2k so blocks can host at least
        two clusters.
    modified:
        Forwarded to the within-block engine (Algorithm 2 shrinking).
    backend:
        Forwarded to the within-block engine; blocked results are
        backend-independent, bit for bit.

    Returns
    -------
    A :class:`Clustering` of the full table with every cluster ≥ k.
    """
    enc = model.enc
    n = enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    if block_size < 2 * k:
        raise AnonymityError(
            f"block_size={block_size} must be at least 2k={2 * k}"
        )
    if k <= 1:
        return Clustering(n, [[i] for i in range(n)])

    blocks = _partition_blocks(enc, block_size, k)
    clusters: list[list[int]] = []
    for members in blocks:
        checkpoint("core.scalable.block")
        sub_model = _borrow_costs(model, _encode_subset(enc, members))
        sub_clustering = agglomerative_clustering(
            sub_model, k, distance, modified=modified, backend=backend
        )
        for cluster in sub_clustering.clusters:
            clusters.append([int(members[i]) for i in cluster])
    return Clustering(n, clusters)


def _encode_subset(parent: EncodedTable, members: np.ndarray) -> EncodedTable:
    """An encoded view of a subset of records, sharing the parent's
    per-attribute lookup tables (join/ancestor tables are schema-level,
    so rebuilding them per block would dominate the runtime)."""
    sub = EncodedTable.__new__(EncodedTable)
    index_list = [int(i) for i in members]
    sub.table = parent.table.subset(index_list)
    sub.schema = parent.schema
    sub.attrs = parent.attrs
    sub.codes = parent.codes[members]
    sub.singleton_nodes = parent.singleton_nodes[members]
    uniq, inverse, counts = np.unique(
        sub.codes, axis=0, return_inverse=True, return_counts=True
    )
    sub.unique_codes = uniq.astype(np.int32)
    sub.unique_inverse = inverse.astype(np.int64)
    sub.unique_counts = counts.astype(np.int64)
    sub.unique_singleton_nodes = np.empty_like(sub.unique_codes)
    # repro: allow[REP011] iterates schema attributes while building one block's sub-table
    for j, att in enumerate(sub.attrs):
        sub.unique_singleton_nodes[:, j] = att.singleton[sub.unique_codes[:, j]]
    # Keep the FULL table's distribution: eq. (3) conditions on the whole
    # database, and the borrowed cost model was built from it anyway.
    sub.value_counts = parent.value_counts
    # Closure memos are keyed by value sets, which are schema-level, so
    # the sub-table can share (and extend) the parent's cache; the flat
    # join tables are schema-level too and shared outright.
    sub._closure_cache = parent._closure_cache
    sub._join_flat = parent._join_flat
    sub._join_offsets = parent._join_offsets
    sub._join_cols = parent._join_cols
    return sub


def _borrow_costs(parent: CostModel, sub_enc: EncodedTable) -> CostModel:
    """A cost model over a sub-table that keeps the parent's node costs.

    The schema (and hence the node indexing) is shared, so the parent's
    per-node cost vectors — computed from the *full* table's value
    distribution, as eq. (3) prescribes — apply verbatim.
    """
    borrowed = CostModel.__new__(CostModel)
    borrowed.enc = sub_enc
    borrowed.measure = parent.measure
    borrowed.node_costs = parent.node_costs
    return borrowed
