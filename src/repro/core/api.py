"""High-level anonymization API.

:func:`anonymize` is the single entry point a downstream user needs: it
takes a :class:`~repro.tabular.table.Table`, the anonymity notion and k,
picks the paper's algorithm for that notion, and returns an
:class:`AnonymizationResult` bundling the generalized table, the
information loss, and diagnostics.

    >>> result = anonymize(table, k=10, notion="kk", measure="entropy")
    >>> result.cost            # Π_E(D, g(D))
    >>> result.generalized     # the GeneralizedTable to publish

Notions and the algorithms behind them:

=============  =====================================================
notion         algorithm
=============  =====================================================
``k``          agglomerative (Algorithm 1/2); or ``forest``,
               ``mondrian``, ``datafly`` comparators
``k1``         Algorithm 3 (``nearest``) or 4 (``expansion``)
``1k``         Algorithm 5 on the untouched table
``kk``         Algorithm 3/4 + Algorithm 5 (Section V-B coupling)
``global-1k``  the above + Algorithm 6 (Section V-C)
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.agglomerative import agglomerative_clustering
from repro.core.backend import resolve_backend
from repro.core.clustering import Clustering, clustering_to_nodes
from repro.core.distances import ClusterDistance, get_distance
from repro.core.forest import forest_clustering
from repro.core.global_1k import global_one_k_anonymize
from repro.core.k1 import k1_expansion, k1_nearest_neighbors
from repro.core.kk import kk_anonymize
from repro.core.notions import NOTIONS, anonymity_profile, satisfies
from repro.core.one_k import one_k_anonymize
from repro.errors import AnonymityError
from repro.measures.base import CostModel, LossMeasure
from repro.measures.registry import get_measure
from repro.runtime import Timer
from repro.tabular.encoding import EncodedTable
from repro.tabular.table import GeneralizedTable, Table


@dataclass
class AnonymizationResult:
    """Everything produced by one :func:`anonymize` call."""

    table: Table  #: the original table
    encoded: EncodedTable  #: its encoding (reusable for audits)
    node_matrix: np.ndarray  #: the generalization as ``[n, r]`` node indices
    generalized: GeneralizedTable  #: the publishable generalized table
    notion: str  #: requested anonymity notion
    k: int  #: requested anonymity parameter
    algorithm: str  #: algorithm actually used
    measure: str  #: loss measure name
    cost: float  #: Π(D, g(D)) under that measure
    elapsed_seconds: float  #: wall-clock time of the algorithm
    clustering: Clustering | None = None  #: for clustering-based notions
    stats: dict[str, Any] = field(default_factory=dict)  #: extra diagnostics
    #: Execution backend that produced the result.  Deliberately a
    #: separate field, NOT a ``stats`` entry: backends are bit-equivalent
    #: and ``stats`` feeds deterministic outputs (service bodies, journal
    #: rows) that must not vary with the execution strategy.
    backend: str = "python"

    def verify(self, with_matches: bool | None = None) -> bool:
        """Re-check that the result satisfies its requested notion."""
        return satisfies(self.encoded, self.node_matrix, self.notion, self.k)

    def profile(self, with_matches: bool = True):
        """Full :class:`~repro.core.notions.AnonymityProfile` of the result."""
        return anonymity_profile(self.encoded, self.node_matrix, with_matches)

    def summary(self) -> str:
        """A short human-readable account of the result."""
        lines = [
            f"{self.notion}-anonymization of {self.table.num_records} records "
            f"at k={self.k}",
            f"algorithm : {self.algorithm}",
            f"loss      : Π_{self.measure} = {self.cost:.4f}",
            f"elapsed   : {self.elapsed_seconds:.2f}s",
        ]
        for key, value in self.stats.items():
            lines.append(f"{key.replace('_', ' '):10s}: {value}")
        return "\n".join(lines)


def _resolve_measure(measure: str | LossMeasure) -> LossMeasure:
    if isinstance(measure, LossMeasure):
        return measure
    return get_measure(measure)


def _resolve_distance(distance: str | ClusterDistance) -> ClusterDistance:
    if isinstance(distance, ClusterDistance):
        return distance
    return get_distance(distance)


def anonymize(
    table: Table,
    k: int,
    notion: str = "k",
    measure: str | LossMeasure = "entropy",
    algorithm: str | None = None,
    distance: str | ClusterDistance = "d3",
    modified: bool = False,
    expander: str = "expansion",
    encoded: EncodedTable | None = None,
    backend: str | None = None,
) -> AnonymizationResult:
    """Anonymize ``table`` under the requested k-type notion.

    Parameters
    ----------
    table:
        The table to anonymize.
    k:
        The anonymity parameter (≥ 1, ≤ n).
    notion:
        One of ``k``, ``1k``, ``k1``, ``kk``, ``global-1k``.
    measure:
        Loss measure name (``entropy``/``em``, ``lm``, ``tree``) or a
        :class:`LossMeasure` instance.  Drives both the algorithm's
        objective and the reported cost.
    algorithm:
        For ``notion="k"`` only: ``"agglomerative"`` (default),
        ``"forest"`` (the Aggarwal et al. baseline), ``"mondrian"``
        (top-down median partitioning) or ``"datafly"`` (Sweeney's
        full-domain heuristic).
    distance:
        Cluster distance for the agglomerative algorithm (``d1``–``d4``,
        ``nc`` or an instance).  The paper's consistent best performers
        are ``d3`` and ``d4``.
    modified:
        Use Algorithm 2's shrink step (modified agglomerative).
    expander:
        (k,1) stage for ``k1``/``kk``/``global-1k``: ``"expansion"``
        (Algorithm 4) or ``"nearest"`` (Algorithm 3).
    encoded:
        Optional pre-built encoding of ``table`` to reuse across calls.
    backend:
        Execution backend, ``"python"`` or ``"columnar"``
        (:data:`repro.core.backend.BACKENDS`); ``None`` resolves via
        :func:`repro.core.backend.resolve_backend`.  Backends are
        bit-equivalent — same generalization, same cost, same
        tie-breaking — so this is purely a performance knob; the
        resolved choice is recorded on
        :attr:`AnonymizationResult.backend`.

    Returns
    -------
    :class:`AnonymizationResult`, whose generalization is guaranteed (and
    re-checkable via :meth:`AnonymizationResult.verify`) to satisfy the
    requested notion.
    """
    notion = notion.lower()
    if notion not in NOTIONS and notion not in ("g1k", "global"):
        raise AnonymityError(
            f"unknown anonymity notion {notion!r}; expected one of {NOTIONS}"
        )
    if k < 1:
        raise AnonymityError(f"k must be a positive integer, got {k}")
    enc = encoded if encoded is not None else EncodedTable(table)
    if enc.table is not table:
        raise AnonymityError("the provided encoding belongs to a different table")
    measure_obj = _resolve_measure(measure)
    model = CostModel(enc, measure_obj)
    backend = resolve_backend(backend)

    clustering: Clustering | None = None
    stats: dict[str, Any] = {}
    timer = Timer().__enter__()

    if notion == "k":
        algo = algorithm or "agglomerative"
        if algo == "agglomerative":
            dist_obj = _resolve_distance(distance)
            clustering = agglomerative_clustering(
                model, k, dist_obj, modified=modified, backend=backend
            )
            algo_name = (
                f"agglomerative[{dist_obj.name}"
                + (",modified]" if modified else "]")
            )
        elif algo == "forest":
            clustering = forest_clustering(model, k)
            algo_name = "forest"
        elif algo == "mondrian":
            from repro.core.mondrian import mondrian_clustering

            clustering = mondrian_clustering(model, k)
            algo_name = "mondrian"
        elif algo == "kmember":
            from repro.core.kmember import kmember_clustering

            clustering = kmember_clustering(model, k)
            algo_name = "kmember"
        elif algo == "datafly":
            from repro.core.datafly import datafly

            result = datafly(model, k)
            node_matrix = result.node_matrix
            stats["generalization_steps"] = result.num_steps
            stats["suppressed_records"] = len(result.suppressed)
            algo_name = "datafly"
        else:
            raise AnonymityError(
                f"unknown k-anonymization algorithm {algo!r}; expected "
                "'agglomerative', 'forest', 'mondrian', 'kmember' or "
                "'datafly'"
            )
        if clustering is not None:
            node_matrix = clustering_to_nodes(enc, clustering)
            stats["num_clusters"] = clustering.num_clusters
    elif notion == "k1":
        if expander == "expansion":
            node_matrix = k1_expansion(model, k, backend=backend)
        elif expander == "nearest":
            node_matrix = k1_nearest_neighbors(model, k, backend=backend)
        else:
            raise AnonymityError(
                f"unknown expander {expander!r}; expected 'expansion' or 'nearest'"
            )
        algo_name = f"k1[{expander}]"
    elif notion == "1k":
        node_matrix = one_k_anonymize(
            model, enc.singleton_nodes, k, backend=backend
        )
        algo_name = "alg5"
    elif notion == "kk":
        node_matrix = kk_anonymize(model, k, expander=expander, backend=backend)
        algo_name = f"kk[{expander}+alg5]"
    else:  # global (1,k)
        kk_nodes = kk_anonymize(model, k, expander=expander, backend=backend)
        node_matrix, conv = global_one_k_anonymize(model, kk_nodes, k)
        algo_name = f"global[{expander}+alg5+alg6]"
        stats["conversion_passes"] = conv.passes
        stats["conversion_fixes"] = conv.fixes
        stats["initial_deficient"] = conv.initial_deficient
        notion = "global-1k"
    elapsed = timer.elapsed()

    gtable = enc.decode_table(node_matrix)
    cost = model.table_cost(node_matrix)
    return AnonymizationResult(
        table=table,
        encoded=enc,
        node_matrix=node_matrix,
        generalized=gtable,
        notion=notion,
        k=k,
        algorithm=algo_name,
        measure=measure_obj.name,
        cost=cost,
        elapsed_seconds=elapsed,
        clustering=clustering,
        stats=stats,
        backend=backend,
    )
