"""The forest algorithm of Aggarwal et al. [2, 3] — the paper's baseline.

The paper compares its agglomerative algorithms against this "best
practical k-anonymization algorithm with a provable approximation
guarantee" (ratio 3k−3).  Construction, following the cited papers:

Phase 1 (forest building).  Start with singleton components.  While any
component has fewer than k records, attach it to another component via
its minimum-cost outgoing edge, where the cost of edge (R_i, R_j) is the
pairwise generalization cost d({R_i, R_j}).  Components are processed in
Borůvka-style rounds; the result is a forest whose every tree has ≥ k
records.

Phase 2 (tree decomposition).  Trees larger than necessary are split
into parts of size in [k, 3k−2]: children of each node are grouped
greedily bottom-up, cutting a group as soon as it reaches k records, and
a final undersized remainder is merged into the last part cut.  (Parts
need not be connected in the tree — a cluster is just a set of records;
connectivity plays no role in the closure or its cost.)

Each part becomes a cluster; records are published as their cluster's
closure, exactly like the agglomerative algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.runtime import checkpoint
from repro.structures.union_find import UnionFind


def _pairwise_unique_costs(model: CostModel) -> np.ndarray:
    """d({row_a, row_b}) for all pairs of unique rows, ``[u, u]``."""
    enc = model.enc
    u_nodes = enc.unique_singleton_nodes
    u = enc.num_unique
    cost = np.zeros((u, u), dtype=np.float64)
    # repro: allow[REP011] iterates schema attributes, not records
    for j, att in enumerate(enc.attrs):
        col = u_nodes[:, j]
        joined = att.join[col[:, None], col[None, :]]
        cost += model.node_costs[j][joined]
    return cost / enc.num_attributes


def _build_forest(model: CostModel, k: int) -> tuple[UnionFind, list[tuple[int, int]]]:
    """Phase 1: link components of size < k to their nearest neighbours."""
    enc = model.enc
    n = enc.num_records
    pair_cost = _pairwise_unique_costs(model)
    row_of = enc.unique_inverse  # record -> unique row
    records_of_row: list[list[int]] = [[] for _ in range(enc.num_unique)]
    # repro: allow[REP011] O(n) record bucketing at setup, before the checkpointed rounds
    for i in range(n):
        records_of_row[row_of[i]].append(i)

    uf = UnionFind(n)
    edges: list[tuple[int, int]] = []
    while True:
        checkpoint("core.forest.round")
        groups = uf.groups()
        small = sorted(
            (members for members in groups.values() if len(members) < k),
            key=lambda members: members[0],
        )
        if not small:
            break
        for members in small:
            checkpoint("core.forest.component")
            # ``members`` is this round's snapshot; the component may have
            # grown since via another small component's link.  A stale
            # (subset) view is still a valid source for an outgoing edge.
            root = uf.find(members[0])
            if uf.size_of(root) >= k:
                continue
            member_arr = np.asarray(members, dtype=np.int64)
            inside_rows = np.unique(row_of[member_arr])
            costs_to_all = pair_cost[inside_rows].min(axis=0)
            order = np.argsort(costs_to_all, kind="stable")
            linked = False
            for b in order:
                b = int(b)
                # A record with row b strictly outside the current component.
                target = next(
                    (rec for rec in records_of_row[b] if uf.find(rec) != root),
                    None,
                )
                if target is None:
                    continue
                a_row = int(inside_rows[int(pair_cost[inside_rows, b].argmin())])
                source = next(rec for rec in members if row_of[rec] == a_row)
                edges.append((source, target))
                uf.union(source, target)
                linked = True
                break
            if not linked:
                raise AnonymityError(
                    "internal error: no outgoing edge from a small component"
                )
    return uf, edges


def _decompose_tree(
    members: list[int], edges: list[tuple[int, int]], k: int
) -> list[list[int]]:
    """Phase 2: split one tree into parts of size in [k, 3k−2]."""
    if len(members) < 2 * k:
        return [members]
    member_set = set(members)
    adjacency: dict[int, list[int]] = {i: [] for i in members}
    # repro: allow[REP011] bounded by one component's size; one call per core.forest.component checkpoint
    for a, b in edges:
        if a in member_set and b in member_set:
            adjacency[a].append(b)
            adjacency[b].append(a)

    root = min(members)
    parent: dict[int, int] = {root: root}
    order: list[int] = [root]
    stack = [root]
    # repro: allow[REP011] bounded by one component's size; one call per core.forest.component checkpoint
    while stack:
        v = stack.pop()
        for w in adjacency[v]:
            if w not in parent:
                parent[w] = v
                order.append(w)
                stack.append(w)

    parts: list[list[int]] = []
    # carry[v]: records accumulated at v, not yet cut into a part.
    carry: dict[int, list[int]] = {v: [v] for v in members}
    # repro: allow[REP011] bounded by one component's size; one call per core.forest.component checkpoint
    for v in reversed(order):  # children before parents
        if v != root:
            p = parent[v]
            bucket = carry[p]
            bucket.extend(carry[v])
            carry[v] = []
            # Cut as soon as the parent's bucket (minus the parent itself,
            # which stays to keep the remainder attached) reaches k.
            if len(bucket) - 1 >= k:
                parts.append([x for x in bucket if x != p])
                carry[p] = [p]
        else:
            bucket = carry[root]
            if len(bucket) >= k:
                parts.append(bucket)
            elif parts:
                parts[-1].extend(bucket)
            else:  # pragma: no cover - tree has ≥ k members by phase 1
                parts.append(bucket)
    return parts


def forest_clustering(model: CostModel, k: int) -> Clustering:
    """Run the full forest algorithm; every cluster has ≥ k records."""
    n = model.enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    if k <= 1:
        return Clustering(n, [[i] for i in range(n)])
    uf, edges = _build_forest(model, k)
    clusters: list[list[int]] = []
    # repro: allow[REP011] final assembly pass over the forest's components
    for members in uf.groups().values():
        clusters.extend(_decompose_tree(sorted(members), edges, k))
    return Clustering(n, clusters)
