"""(k,k)-anonymization: the Section V-B coupling.

A (k,k)-anonymizer is either (k,1)-anonymizer (Algorithm 3 or 4)
followed by the (1,k)-anonymizer (Algorithm 5).  The first stage makes
every *generalized* record consistent with ≥ k originals; the second
makes every *original* record consistent with ≥ k generalized ones and,
because it only generalizes further, preserves the first property.
The paper found the Algorithm 4 + Algorithm 5 coupling uniformly better.
"""

from __future__ import annotations

import numpy as np

from repro.core.k1 import k1_expansion, k1_nearest_neighbors
from repro.core.one_k import one_k_anonymize
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.runtime import checkpoint

#: The two (k,1) stages selectable by name.
EXPANDERS = ("expansion", "nearest")


def kk_anonymize(
    model: CostModel,
    k: int,
    expander: str = "expansion",
    join_with: str = "generalized",
    backend: str | None = None,
) -> np.ndarray:
    """Produce a (k,k)-anonymization of the model's table.

    Parameters
    ----------
    model:
        Cost model (measure bound to the table).
    k:
        The anonymity parameter.
    expander:
        ``"expansion"`` (Algorithm 4, the paper's best) or ``"nearest"``
        (Algorithm 3, the (k−1)-approximation).
    join_with:
        Passed to Algorithm 5; see
        :func:`repro.core.one_k.one_k_anonymize`.
    backend:
        Execution backend, threaded to both stages; the output is
        backend-independent, bit for bit.

    Returns
    -------
    ``[n, r]`` node matrix satisfying (k,k)-anonymity.
    """
    checkpoint("core.kk.couple")
    if expander == "expansion":
        base = k1_expansion(model, k, backend=backend)
    elif expander == "nearest":
        base = k1_nearest_neighbors(model, k, backend=backend)
    else:
        raise AnonymityError(
            f"unknown (k,1) expander {expander!r}; expected one of {EXPANDERS}"
        )
    checkpoint("core.kk.couple")
    return one_k_anonymize(model, base, k, join_with=join_with, backend=backend)


def best_kk_anonymize(
    model: CostModel, k: int, backend: str | None = None
) -> tuple[np.ndarray, str]:
    """Run both couplings and keep the cheaper result.

    This is what Table I's "(k,k)-anon" row reports ("the result of the
    better (k,k)-anonymization").  Returns (node matrix, winning
    expander name).
    """
    best_nodes: np.ndarray | None = None
    best_cost = np.inf
    best_name = ""
    for expander in EXPANDERS:
        nodes = kk_anonymize(model, k, expander=expander, backend=backend)
        cost = model.table_cost(nodes)
        if cost < best_cost:
            best_nodes, best_cost, best_name = nodes, cost, expander
    assert best_nodes is not None
    return best_nodes, best_name
