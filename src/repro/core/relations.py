"""Empirical verification of Figure 1 — the class interrelations.

Propositions 4.5 and 4.7 assert strict inclusions and incomparabilities
among the five anonymization classes

    A^k ⊊ A^{G,(1,k)} ⊆ A^{(1,k)},
    A^k ⊊ A^{(k,k)} ⊊ A^{(1,k)}, A^{(k,1)},
    A^{(1,k)} \\ A^{(k,1)} ≠ ∅,  A^{(k,1)} \\ A^{(1,k)} ≠ ∅,
    A^{G,(1,k)} and A^{(k,k)} incomparable,

summarized by the paper's Venn diagram.  This module (a) reconstructs
the worked 3-record example from the proof of Proposition 4.5, and
(b) exhaustively enumerates *all* generalizations of small tables,
classifies each, and checks every region of the diagram — which is how
the Figure 1 "experiment" is reproduced (`benchmarks/bench_fig1_relations.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core.notions import (
    is_global_one_k_anonymous,
    is_k_anonymous,
    is_k_one_anonymous,
    is_one_k_anonymous,
)
from repro.errors import ExperimentError
from repro.tabular.attribute import Attribute
from repro.tabular.encoding import EncodedTable
from repro.tabular.hierarchy import SubsetCollection
from repro.tabular.table import Schema, Table

#: Class labels, in the order used by census keys.
CLASSES = ("k", "1k", "k1", "kk", "global-1k")


def proposition_45_example() -> tuple[Table, dict[str, list[list[str]]]]:
    """The table and four generalizations from the proof of Proposition 4.5.

    The table has two attributes with domains {1, 2} and {3, 4} and three
    records (1,3), (1,4), (2,4).  Generalized cells are written as lists
    of values; e.g. the ``(1,2)-anon`` generalization keeps record 1
    intact and suppresses the first attribute of records 2 and 3.

    Returns (table, {name: generalized rows as value-lists}).
    """
    a1 = Attribute("A1", ["1", "2"])
    a2 = Attribute("A2", ["3", "4"])
    schema = Schema([SubsetCollection(a1), SubsetCollection(a2)])
    table = Table(schema, [("1", "3"), ("1", "4"), ("2", "4")])
    generalizations = {
        "2-anon": [
            [["1", "2"], ["3", "4"]],
            [["1", "2"], ["3", "4"]],
            [["1", "2"], ["3", "4"]],
        ],
        "(1,2)-anon": [
            [["1"], ["3"]],
            [["1", "2"], ["3", "4"]],
            [["1", "2"], ["4"]],
        ],
        "(2,1)-anon": [
            [["1"], ["3", "4"]],
            [["1", "2"], ["4"]],
            [["1", "2"], ["4"]],
        ],
        "(2,2)-anon": [
            [["1"], ["3", "4"]],
            [["1", "2"], ["3", "4"]],
            [["1", "2"], ["4"]],
        ],
    }
    return table, generalizations


def kk_attack_example() -> tuple[Table, list[list[list[str]]]]:
    """A (2,2)-anonymization that is *not* globally (1,2)-anonymous.

    Six records with values 1..6 in a single attribute; the published
    subsets are {1,2}, {1,2,3}, {3,4}, {4,5,6}, {5,6}, {5,6}.  Every
    record has ≥ 2 neighbours and every published record covers ≥ 2
    originals — (2,2)-anonymity — yet record 3 (value 3) has a single
    *match*: its own record {3,4}.  Its other neighbour {1,2,3} lies in
    no perfect matching, because deleting record 3 and {1,2,3} leaves
    records 1 and 2 competing for the lone record {1,2}.  This is the
    Section IV-A adversary-2 attack in its smallest clothing, and the
    witness that A^{(k,k)} ⊄ A^{G,(1,k)} (Figure 1).

    Returns (table, generalized rows as value-lists).
    """
    values = [str(v) for v in range(1, 7)]
    att = Attribute("v", values)
    coll = SubsetCollection(
        att,
        [["1", "2"], ["1", "2", "3"], ["3", "4"], ["4", "5", "6"], ["5", "6"]],
    )
    schema = Schema([coll])
    table = Table(schema, [(v,) for v in values])
    generalized = [
        [["1", "2"]],
        [["1", "2", "3"]],
        [["3", "4"]],
        [["4", "5", "6"]],
        [["5", "6"]],
        [["5", "6"]],
    ]
    return table, generalized


def global_not_kk_example() -> tuple[Table, list[list[list[str]]], int]:
    """A global (1,3)-anonymization that is *not* (3,1)-anonymous.

    Four records with values 1..4; record 1 is published as {1,2} and the
    rest fully suppressed.  Every record has ≥ 3 matches — e.g. record 3
    can swap into any of the three suppressed slots — so global (1,3)
    holds, but the record {1,2} covers only two originals, so (3,1)
    fails.  This witnesses A^{G,(1,k)} ⊄ A^{(k,k)} in Figure 1.

    A reproduction-found subtlety: no such witness exists for k = 2.  If
    a published record had a single consistent original u, every perfect
    matching would pair them, leaving u exactly one match — so global
    (1,2) already implies (2,1).  The Figure 1 incomparability of
    A^{G,(1,k)} and A^{(k,k)} therefore only materializes at k ≥ 3.

    Returns (table, generalized rows as value-lists, k).
    """
    values = ["1", "2", "3", "4"]
    att = Attribute("v", values)
    coll = SubsetCollection(att, [["1", "2"]])
    schema = Schema([coll])
    table = Table(schema, [(v,) for v in values])
    generalized = [
        [["1", "2"]],
        [values],
        [values],
        [values],
    ]
    return table, generalized, 3


def nodes_from_value_lists(
    enc: EncodedTable, rows: list[list[list[str]]]
) -> np.ndarray:
    """Encode explicit generalized rows (lists of value-lists) to nodes."""
    out = np.empty((len(rows), enc.num_attributes), dtype=np.int32)
    for i, row in enumerate(rows):
        for j, cell in enumerate(row):
            out[i, j] = enc.attrs[j].collection.node_of_values(cell)
    return out


def classify(enc: EncodedTable, node_matrix: np.ndarray, k: int) -> frozenset[str]:
    """The subset of the five classes this generalization belongs to.

    Only *valid* generalizations (record i generalizing row i) should be
    classified; global (1,k) requires a perfect matching, which the
    identity correspondence guarantees.
    """
    out = set()
    if is_k_anonymous(node_matrix, k):
        out.add("k")
    one_k = is_one_k_anonymous(enc, node_matrix, k)
    k_one = is_k_one_anonymous(enc, node_matrix, k)
    if one_k:
        out.add("1k")
    if k_one:
        out.add("k1")
    if one_k and k_one:
        out.add("kk")
    if is_global_one_k_anonymous(enc, node_matrix, k):
        out.add("global-1k")
    return frozenset(out)


@dataclass(frozen=True)
class RelationCensus:
    """Counts of generalizations per membership pattern.

    ``counts`` maps a frozenset of class names to how many enumerated
    generalizations exhibit exactly that membership pattern.
    """

    k: int
    total: int
    counts: dict[frozenset[str], int]

    def count_in(self, cls: str) -> int:
        """How many generalizations belong to class ``cls`` (at least)."""
        return sum(c for key, c in self.counts.items() if cls in key)

    def exists(self, inside: set[str], outside: set[str]) -> bool:
        """Whether some generalization is in all of ``inside`` and none
        of ``outside``."""
        return any(
            inside <= key and not (outside & key) for key in self.counts
        )


def enumerate_census(
    enc: EncodedTable, k: int, max_generalizations: int = 2_000_000
) -> RelationCensus:
    """Exhaustively classify every valid generalization of a small table.

    Every record independently ranges over the nodes containing its
    value; the product space is the set of all local recodings.

    Raises
    ------
    ExperimentError
        If the space exceeds ``max_generalizations``.
    """
    n = enc.num_records
    options: list[list[int]] = []
    for i in range(n):
        per_record = []
        for j, att in enumerate(enc.attrs):
            v = enc.codes[i, j]
            per_record.append(
                [b for b in range(att.num_nodes) if att.anc[v, b]]
            )
        options.append([np.array(combo, dtype=np.int32)
                        for combo in product(*per_record)])
    space = 1
    for opts in options:
        space *= len(opts)
    if space > max_generalizations:
        raise ExperimentError(
            f"{space} generalizations exceed the cap of {max_generalizations}"
        )

    counts: dict[frozenset[str], int] = {}
    for combo in product(*options):
        node_matrix = np.stack(combo)
        key = classify(enc, node_matrix, k)
        counts[key] = counts.get(key, 0) + 1
    return RelationCensus(k=k, total=space, counts=counts)


def check_figure1(census: RelationCensus) -> list[str]:
    """Verify every region of Figure 1 against a census.

    Returns a list of human-readable violations (empty = Figure 1 holds
    for the enumerated table).  Inclusion facts are checked as "no
    counterexample"; non-emptiness facts as "a witness exists" —
    witnesses may legitimately be absent for very small tables, so only
    inclusion violations are hard errors for arbitrary inputs; the bench
    uses a table known to exhibit every region.
    """
    problems = []
    # Inclusions (must hold for every table).
    for key in census.counts:
        if "k" in key and key != frozenset(CLASSES):
            missing = set(CLASSES) - set(key)
            problems.append(
                f"a k-anonymization is missing from classes {sorted(missing)}"
            )
        if "kk" in key and not {"1k", "k1"} <= key:
            problems.append("a (k,k)-anonymization escapes (1,k) or (k,1)")
        if "global-1k" in key and "1k" not in key:
            problems.append("a global (1,k)-anonymization escapes (1,k)")
    return problems
