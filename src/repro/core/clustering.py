"""Clusterings of a table and their induced generalizations.

Both agglomerative algorithms (and the forest baseline) produce a
*clustering* γ = {S_1, ..., S_m} of the records; the anonymization then
replaces every record by the closure of its cluster (end of Section
V-A.1).  This module holds the clustering value object and that
translation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.tabular.encoding import EncodedTable


class Clustering:
    """A partition of the record indices ``0..n-1`` into clusters.

    Parameters
    ----------
    num_records:
        The table size n; the clusters must partition ``range(n)``.
    clusters:
        Iterable of iterables of record indices.

    Raises
    ------
    AnonymityError
        If the clusters do not form a partition of ``range(n)``.
    """

    __slots__ = ("_clusters", "_num_records", "_assignment")

    def __init__(self, num_records: int, clusters: Iterable[Iterable[int]]) -> None:
        clusters_t = tuple(tuple(int(i) for i in c) for c in clusters)
        assignment = np.full(num_records, -1, dtype=np.int64)
        for ci, cluster in enumerate(clusters_t):
            if not cluster:
                raise AnonymityError("clusterings may not contain empty clusters")
            for i in cluster:
                if not 0 <= i < num_records:
                    raise AnonymityError(
                        f"record index {i} out of range 0..{num_records - 1}"
                    )
                if assignment[i] != -1:
                    raise AnonymityError(f"record {i} appears in two clusters")
                assignment[i] = ci
        missing = int((assignment == -1).sum())
        if missing:
            raise AnonymityError(f"{missing} records are not covered by any cluster")
        self._clusters = clusters_t
        self._num_records = num_records
        self._assignment = assignment

    @property
    def clusters(self) -> tuple[tuple[int, ...], ...]:
        """The clusters, each a tuple of record indices."""
        return self._clusters

    @property
    def num_records(self) -> int:
        """Number of records partitioned."""
        return self._num_records

    @property
    def num_clusters(self) -> int:
        """Number of clusters m."""
        return len(self._clusters)

    def cluster_of(self, record: int) -> int:
        """Index of the cluster containing ``record``."""
        return int(self._assignment[record])

    def sizes(self) -> np.ndarray:
        """Cluster sizes, in cluster order."""
        return np.array([len(c) for c in self._clusters], dtype=np.int64)

    def min_cluster_size(self) -> int:
        """The smallest cluster size (≥ k certifies k-anonymity)."""
        return int(self.sizes().min())

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clusters)

    def __len__(self) -> int:
        return len(self._clusters)

    def __repr__(self) -> str:
        sizes = self.sizes()
        return (
            f"Clustering({self.num_clusters} clusters over "
            f"{self._num_records} records, sizes {sizes.min()}..{sizes.max()})"
        )


def clustering_to_nodes(enc: EncodedTable, clustering: Clustering) -> np.ndarray:
    """Node matrix of the generalization induced by a clustering.

    Every record is mapped to the closure of its cluster — the minimal
    generalized record consistent with all cluster members.
    """
    if clustering.num_records != enc.num_records:
        raise AnonymityError(
            f"clustering covers {clustering.num_records} records, table has "
            f"{enc.num_records}"
        )
    node_matrix = np.empty((enc.num_records, enc.num_attributes), dtype=np.int32)
    # repro: allow[REP011] single O(n) encode pass per finished clustering
    for cluster in clustering.clusters:
        closure = enc.closure_of_records(cluster)
        node_matrix[list(cluster)] = closure
    return node_matrix


def clustering_cost(
    model: CostModel, clustering: Clustering
) -> float:
    """Π of the generalization induced by a clustering (eq. 7)."""
    return model.clustering_cost(clustering.clusters)


def clusters_from_assignment(assignment: Sequence[int]) -> Clustering:
    """Build a clustering from a per-record cluster-id array."""
    groups: dict[int, list[int]] = {}
    for i, c in enumerate(assignment):
        groups.setdefault(int(c), []).append(i)
    ordered = [groups[key] for key in sorted(groups)]
    return Clustering(len(assignment), ordered)
