"""Backend selection for the algorithmic core.

Two execution backends implement the paper's algorithms:

``"python"``
    The seed-era engines: per-slot NumPy rows, a dense O(n²) distance
    matrix for the agglomerative family.  Always available, always the
    reference for differential testing.
``"columnar"``
    The bucketed/columnar engines of :mod:`repro.core.columnar`:
    cluster-feature bucketing over the generalization lattice, fused
    join/cost gather tables, and certified candidate pruning.  Requires
    NumPy; produces **bit-identical** outputs (same merge sequence,
    same tie-breaking) — the property the differential fuzz harness and
    :func:`repro.perf.equivalence.check_backend_equivalence` enforce.

This module is deliberately NumPy-free at import time: it is the one
place the package probes for the accelerator, so the probe itself must
work on an interpreter without NumPy.  When NumPy is absent,
:func:`resolve_backend` degrades a ``"columnar"`` request gracefully to
``"python"`` instead of failing — backend choice is a performance
preference, never a correctness knob.

The default may be steered per-process with the ``REPRO_BACKEND``
environment variable; explicit arguments always win.
"""

from __future__ import annotations

import importlib.util
import os
import sys

from repro.errors import ReproError

#: Recognized backend names, reference implementation first.
BACKENDS: tuple[str, ...] = ("python", "columnar")

#: Backend used when the caller does not choose one.
DEFAULT_BACKEND = "python"

#: Environment variable consulted when no backend is passed explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_available: bool | None = None


def columnar_available() -> bool:
    """Whether the columnar backend can run in this interpreter.

    True iff NumPy is importable.  The probe uses
    :func:`importlib.util.find_spec` so merely *asking* never imports
    NumPy; the answer is cached for the life of the process.
    """
    global _available
    if _available is None:
        if "numpy" in sys.modules:
            # repro: allow[REP010] idempotent availability cache; every process converges to the same answer
            _available = True
        else:
            try:
                # repro: allow[REP010] idempotent availability cache; every process converges to the same answer
                _available = importlib.util.find_spec("numpy") is not None
            except (ImportError, ValueError):
                # repro: allow[REP010] idempotent availability cache; every process converges to the same answer
                _available = False
    return _available


def backend_names() -> list[str]:
    """All recognized backend names (for CLI choices and docs)."""
    return list(BACKENDS)


def resolve_backend(backend: str | None) -> str:
    """Normalize a backend request to a runnable backend name.

    ``None`` consults :data:`BACKEND_ENV_VAR` and falls back to
    :data:`DEFAULT_BACKEND`.  Unknown names raise :class:`ReproError`
    (misspelling a backend should never silently change performance).
    A ``"columnar"`` request on an interpreter without NumPy resolves
    to ``"python"`` — graceful degradation, identical outputs.
    """
    if backend is None:
        # repro: allow[REP004] documented steering knob; backends are bit-equivalent so outputs never depend on it
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown backend {backend!r}; known backends: {list(BACKENDS)}"
        )
    if backend == "columnar" and not columnar_available():
        return "python"
    return backend
