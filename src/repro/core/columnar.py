"""The columnar backend: bucketed, matrix-free agglomerative engine
plus fused join/cost kernels for the (k,1)/(k,k) family.

Selected via ``backend="columnar"`` (:mod:`repro.core.backend`).  The
contract is strict **bit-equivalence**: every algorithm ported here must
reproduce the pure-Python reference *exactly* — same outputs, same
tie-breaking, same merge sequence — which the differential fuzz harness
and :func:`repro.perf.equivalence.check_backend_equivalence` enforce.

Agglomerative engine (:class:`_ColumnarEngine`)
-----------------------------------------------
The reference :class:`~repro.core.agglomerative._Engine` keeps a dense
O(n²) distance matrix.  This engine replaces it with
*generalization-lattice bucketing*: clusters whose feature summary
``(closure nodes, size, cost)`` coincides are indistinguishable to every
distance function, so one bucket-level evaluation covers all of them.
A per-merge scan costs O(B·r + n) instead of O(n·r), where B is the
number of distinct cluster features — and B collapses fast once merging
coarsens closures (≈100 buckets for thousands of clusters on the
paper's data).  No n×n matrix is ever allocated, which is what admits
the 10k/50k/100k n-grid.

Bit-equivalence argument (the invariants the tests pin):

* **Costs.**  ``CostModel.record_cost`` accumulates per-attribute costs
  in attribute order and divides once; the bucket-level evaluation uses
  the same call on representative rows, so every ``cost_union`` float
  is produced by the identical operation sequence.
* **Values.**  Distance functions are element-wise; evaluating one
  representative per bucket and broadcasting to slots yields bitwise
  the numbers the reference computes per slot.
* **Sides.**  The reference matrix is written from the perspective of
  whichever row refreshed *last* (``_refresh_row`` writes row *and*
  column with ``a``-side values) — observable for the asymmetric ``nc``
  distance and, at 1-ulp level, for the ``t−a−b`` subtraction order of
  d1–d3.  The engine reproduces it with one timestamp per slot: a
  stored pair value is recomputed from the side of the newer stamp
  (ties — both untouched since init — resolve to the row owner, which
  is the side the init broadcast wrote).
* **State machine.**  ``row_min``/``row_arg`` pushes (strict
  improvement only), lazy validation and rescans follow the reference
  line for line, so the argmin tie-breaking (lowest slot index wins)
  is identical by induction.

Candidate pruning (admissible, certified)
-----------------------------------------
For *monotone* measures (LM, tree, MW — ``LossMeasure.monotone``) the
cost of a union is bounded below by each side's cost:
``c(Ŝ_a ∪ Ŝ_b) ≥ max(c(Ŝ_a), c(Ŝ_b))`` holds in exact arithmetic
*and* in floats (round-to-nearest addition and division by a positive
constant are monotone maps, and both sides accumulate in the same
attribute order).  For distances declaring
:attr:`~repro.core.distances.ClusterDistance.monotone_in_union`, the
bound lifts through ``evaluate``: ``LB_b = evaluate(…, max(c_a, c_b))``
never exceeds the exact distance, bitwise.  A bucket is then skipped

* for **pushes** when ``LB_b ≥ max(row_min of its slots)`` — a push
  needs a strict improvement, so equality is safe to skip; and
* for the **row minimum** only while ``LB_b`` exceeds the running best
  ``v*`` — buckets with ``LB_b ≤ v*`` are evaluated until none remain,
  so every bucket that could tie the minimum is evaluated exactly and
  the first-index tie-break is preserved.

When the bound cannot certify — non-monotone measure (entropy), or a
distance that does not declare monotonicity — the engine falls back to
the full bucket scan: still O(B·r), never approximate.

Fused kernels (:class:`FusedJoinCost`)
--------------------------------------
The (k,1) algorithms spend their time in ``join_rows`` + ``record_cost``
pairs.  ``F_j[a, b] = node_costs_j[join_j[a, b]]`` fuses the two table
lookups into one gather per attribute; accumulation order matches
``record_cost``, so the resulting cost vectors are bit-identical while
skipping the materialized union matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.agglomerative import _Engine
from repro.measures.base import CostModel
from repro.obs import count
from repro.runtime import checkpoint

__all__ = ["FusedJoinCost", "union_cost_lower_bound"]


def union_cost_lower_bound(
    model: CostModel, cost_a, cost_b
) -> np.ndarray:
    """Certified float lower bound on ``record_cost`` of a join.

    ``max(cost_a, cost_b)`` — valid when the measure is monotone (each
    attribute's join node costs at least either side's node, and the
    float accumulation of ``record_cost`` is a monotone map of its
    terms).  Exposed standalone so the pruning-soundness property tests
    can compare it against brute-force exact costs.
    """
    return np.maximum(cost_a, cost_b)


class FusedJoinCost:
    """Fused per-attribute ``join → node-cost`` gather tables.

    ``pair_costs(nodes_a, node_b)`` returns exactly
    ``model.record_cost(enc.join_rows(nodes_a, node_b))`` — same floats,
    same accumulation order — via one linearized gather over every
    attribute's fused table at once instead of two gathers per
    attribute and a materialized union matrix.  The per-attribute
    accumulation stays an explicit sequential loop: ``record_cost``
    adds attribute terms left to right, and a vectorized ``sum`` would
    reassociate the additions for wide schemas.
    """

    __slots__ = ("_flat", "_scale", "_offset", "_r")

    def __init__(self, model: CostModel) -> None:
        enc = model.enc
        tables = [
            model.node_costs[j][att.join] for j, att in enumerate(enc.attrs)
        ]
        self._r = enc.num_attributes
        # Entry (a, b) of attribute j's table lives at
        # offset[j] + a * scale[j] + b of the flattened concatenation.
        self._scale = np.array([t.shape[1] for t in tables], dtype=np.int64)
        sizes = np.array([t.size for t in tables], dtype=np.int64)
        self._offset = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        self._flat = np.concatenate([t.ravel() for t in tables])

    def pair_costs(self, nodes_a: np.ndarray, node_b: np.ndarray) -> np.ndarray:
        """Union record costs of every row of ``nodes_a`` with ``node_b``."""
        lin = nodes_a * self._scale + (self._offset + node_b)
        picked = self._flat[lin]
        total = np.zeros(nodes_a.shape[0], dtype=np.float64)
        # repro: allow[REP011] bounded by the attribute count r; sequential accumulation is the bit-equivalence contract
        for j in range(self._r):
            total += picked[:, j]
        return total / self._r


class _ColumnarEngine(_Engine):
    """Bucketed matrix-free engine, bit-equivalent to :class:`_Engine`.

    Inherits the merge loop, Algorithm 2 shrink and leftover
    distribution; overrides only the distance bookkeeping.
    """

    #: When set (property tests), every pruning decision is audited
    #: against the exact values it skipped; an inadmissible bound raises.
    audit = False

    #: Minimum live-bucket count before a scan engages the pruning
    #: machinery.  Below it the bound/push-bound bookkeeping costs more
    #: than the single fused sweep it would save, so the scan evaluates
    #: every candidate bucket directly.  Outputs are bit-identical
    #: either way — the bound only ever *skips* evaluations whose value
    #: could not change the row minimum or trigger a push; it never
    #: alters a computed value.  Tests pin the machinery by setting 0.
    prune_min_buckets = 512

    # ------------------------------------------------------------------ #
    # bucket registry
    # ------------------------------------------------------------------ #

    def _reset_buckets(self) -> None:
        n, r = self.enc.num_records, self.enc.num_attributes
        self.tick = 0
        self.last_refresh = np.zeros(n, dtype=np.int64)
        self.prune_enabled = bool(
            self.model.measure.monotone and self.distance.monotone_in_union
        )
        self._fused = FusedJoinCost(self.model)
        self._bucket_ids: dict[bytes, int] = {}
        cap = 16
        self._bnodes = np.zeros((cap, r), dtype=np.int32)
        self._bsizes = np.zeros(cap, dtype=np.int64)
        self._bcosts = np.zeros(cap, dtype=np.float64)
        self._bpop = np.zeros(cap, dtype=np.int64)
        self._bkeys: list[bytes] = [b""] * cap
        self._bhigh = 0  # high-water mark of allocated bucket ids
        self._bfree: list[int] = []
        self.bucket_of = np.full(n, -1, dtype=np.int64)
        self.stat_bucket_evals = 0
        self.stat_bucket_pruned = 0

    def _bucket_key(self, slot: int) -> bytes:
        return (
            self.nodes[slot].tobytes()
            + self.sizes[slot].tobytes()
            + self.costs[slot].tobytes()
        )

    def _grow_buckets(self) -> None:
        cap = self._bnodes.shape[0]
        new = cap * 2
        for name in ("_bnodes", "_bsizes", "_bcosts", "_bpop"):
            old = getattr(self, name)
            shape = (new,) + old.shape[1:]
            grown = np.zeros(shape, dtype=old.dtype)
            grown[:cap] = old
            setattr(self, name, grown)
        self._bkeys.extend([b""] * cap)

    def _assign_bucket(self, slot: int) -> int:
        key = self._bucket_key(slot)
        bid = self._bucket_ids.get(key)
        if bid is None:
            if self._bfree:
                bid = self._bfree.pop()
            else:
                if self._bhigh == self._bnodes.shape[0]:
                    self._grow_buckets()
                bid = self._bhigh
                self._bhigh += 1
            self._bucket_ids[key] = bid
            self._bkeys[bid] = key
            self._bnodes[bid] = self.nodes[slot]
            self._bsizes[bid] = self.sizes[slot]
            self._bcosts[bid] = self.costs[slot]
        self._bpop[bid] += 1
        self.bucket_of[slot] = bid
        return bid

    def _release_bucket(self, slot: int) -> None:
        bid = int(self.bucket_of[slot])
        if bid < 0:
            return
        self._bpop[bid] -= 1
        if self._bpop[bid] == 0:
            del self._bucket_ids[self._bkeys[bid]]
            self._bkeys[bid] = b""
            self._bfree.append(bid)
        self.bucket_of[slot] = -1

    def _adopt_state(self) -> None:
        """(Re)build the bucket registry from the current slot arrays.

        Used after constructing an engine at a prepared state (bench,
        tests) instead of the full :meth:`_init_distances` sweep.
        """
        self._reset_buckets()
        for slot in np.flatnonzero(self.active):
            self._assign_bucket(int(slot))

    # ------------------------------------------------------------------ #
    # initialization: bucket-level all-pairs sweep
    # ------------------------------------------------------------------ #

    def _init_distances(self) -> None:
        """Bucket-level form of the reference all-pairs init.

        One O(u·r) evaluation per unique singleton row instead of the
        dense O(n²) matrix; ``row_min``/``row_arg`` are assembled so
        they match the reference's ``dist.min/argmin(axis=1)`` exactly,
        including the first-slot-index tie-break and the excluded
        diagonal.
        """
        enc, model = self.enc, self.model
        n = enc.num_records
        self._reset_buckets()
        members: list[list[int]] = []
        for slot in range(n):
            bid = self._assign_bucket(slot)
            if bid == len(members):
                members.append([slot])
            else:
                members[bid].append(slot)
        u = self._bhigh
        bnodes = self._bnodes[:u]
        bsizes = self._bsizes[:u]
        bcosts = self._bcosts[:u]
        first = np.array([m[0] for m in members], dtype=np.int64)
        for a in range(u):
            checkpoint("core.agglomerative.init")
            union = enc.join_rows(bnodes, bnodes[a])
            cu = np.asarray(model.record_cost(union), dtype=np.float64)
            d = np.asarray(
                self.distance.evaluate(
                    bsizes[a], bcosts[a], bsizes, bcosts, cu
                ),
                dtype=np.float64,
            )
            if len(members[a]) < 2:
                # Only member is the row owner: the diagonal, excluded.
                d[a] = np.inf
            m = d.min()
            own = members[a]
            if not np.isfinite(m):
                # All-inf row (n == 1): the reference argmin returns 0.
                self.row_min[own] = np.inf
                self.row_arg[own] = 0
                continue
            winners = np.flatnonzero(d == m)
            other = winners[winners != a]
            cand_other = int(first[other].min()) if other.size else n
            self.row_min[own] = m
            if d[a] == m:
                # Own bucket ties: its first member is the candidate for
                # everyone except that member itself, which sees the
                # second member instead.
                self.row_arg[own] = min(cand_other, own[0])
                self.row_arg[own[0]] = min(cand_other, own[1])
            else:
                self.row_arg[own] = cand_other

    # ------------------------------------------------------------------ #
    # scans: bucket-level rows with certified pruning
    # ------------------------------------------------------------------ #

    def _evaluate_buckets(
        self,
        lb: np.ndarray,
        need: np.ndarray,
        exact_of: "callable",
        prune: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate bucket groups until the row minimum is certified.

        ``need`` marks groups that must be evaluated regardless (push
        candidates).  Returns ``(values, evaluated)`` where unevaluated
        groups hold ``inf`` and are certified to exceed the minimum of
        the evaluated ones strictly.
        """
        g = lb.size
        val = np.full(g, np.inf, dtype=np.float64)
        evaluated = np.zeros(g, dtype=bool)

        def run(sel: np.ndarray) -> None:
            idx = np.flatnonzero(sel)
            if idx.size:
                val[idx] = exact_of(idx)
                evaluated[idx] = True

        if not prune:
            run(~evaluated)
        else:
            run(need)
            if not evaluated.any() and g:
                seed = np.zeros(g, dtype=bool)
                seed[int(lb.argmin())] = True
                run(seed)
            vstar = val.min() if g else np.inf
            # repro: allow[REP011] certified-bound refinement, bounded by the bucket count; one call per merge checkpoint
            while True:
                todo = ~evaluated & (lb <= vstar)
                if not todo.any():
                    break
                run(todo)
                vstar = val.min()
        self.stat_bucket_evals += int(evaluated.sum())
        self.stat_bucket_pruned += int(g - evaluated.sum())
        if self.audit:
            self._audit_prune(lb, val, evaluated, exact_of)
        return val, evaluated

    def _audit_prune(
        self,
        lb: np.ndarray,
        val: np.ndarray,
        evaluated: np.ndarray,
        exact_of: "callable",
    ) -> None:
        """Cross-check every pruning decision against the exact values.

        The bound is admissible iff no skipped group could beat (or tie)
        the retained minimum and every skipped group's exact value
        dominates its lower bound.
        """
        skipped = np.flatnonzero(~evaluated)
        if not skipped.size:
            return
        exact = exact_of(skipped)
        if (exact < lb[skipped]).any():
            raise AssertionError(
                "inadmissible pruning bound: exact distance below LB "
                f"(exact={exact!r}, lb={lb[skipped]!r})"
            )
        vstar = val[evaluated].min() if evaluated.any() else np.inf
        if (exact <= vstar).any():
            raise AssertionError(
                "pruned bucket beats or ties the retained best "
                f"(exact={exact!r}, vstar={vstar!r})"
            )

    def _scan_active(self, x: int) -> tuple[np.ndarray, np.ndarray]:
        """Candidate distances from x, compacted to the active slots.

        Returns ``(act, val)`` where ``act`` lists the active slots in
        ascending order and ``val[i]`` is the x-side distance to slot
        ``act[i]`` (``inf`` for pruned candidates and for x itself) —
        the same values the full row of :meth:`_scan_row_refresh`
        carries at those slots, without materializing the O(n) row on
        the hot path.
        """
        model = self.model
        act = np.flatnonzero(self.active)
        if not act.size:
            return act, np.empty(0, dtype=np.float64)
        # The registry already knows the live buckets and their
        # populations — an O(B) read replaces the O(n log n) sort a
        # per-scan ``np.unique`` would pay.  ``live`` is ascending by
        # bucket id, exactly the order ``np.unique`` would produce.
        pop = self._bpop[: self._bhigh]
        live = np.flatnonzero(pop > 0)
        pos = np.full(self._bhigh, -1, dtype=np.int64)
        pos[live] = np.arange(live.size)
        inverse = pos[self.bucket_of[act]]
        own_idx = int(pos[int(self.bucket_of[x])])
        rel = pop[live].copy()
        rel[own_idx] -= 1  # x never partners itself
        keep = rel > 0
        cand = live[keep]
        if not cand.size:
            return act, np.full(act.size, np.inf, dtype=np.float64)
        bn = self._bnodes[cand]
        bs = self._bsizes[cand]
        bc = self._bcosts[cand]
        size_x, cost_x = self.sizes[x], self.costs[x]
        node_x = self.nodes[x]
        fused = self._fused

        if self.prune_enabled and cand.size >= self.prune_min_buckets:

            def exact_of(idx: np.ndarray) -> np.ndarray:
                cu = fused.pair_costs(bn[idx], node_x)
                return np.asarray(
                    self.distance.evaluate(
                        size_x, cost_x, bs[idx], bc[idx], cu
                    ),
                    dtype=np.float64,
                )

            cu_lb = union_cost_lower_bound(model, bc, cost_x)
            lb = np.asarray(
                self.distance.evaluate(size_x, cost_x, bs, bc, cu_lb),
                dtype=np.float64,
            )
            push_bound = np.full(live.size, -np.inf, dtype=np.float64)
            np.maximum.at(push_bound, inverse, self.row_min[act])
            need = lb < push_bound[keep]
            val, _ = self._evaluate_buckets(lb, need, exact_of, prune=True)
        else:
            # Below prune_min_buckets (or with no certified bound) one
            # fused sweep over every candidate bucket is cheaper than
            # the bound bookkeeping; values are identical either way.
            cu = fused.pair_costs(bn, node_x)
            val = np.asarray(
                self.distance.evaluate(size_x, cost_x, bs, bc, cu),
                dtype=np.float64,
            )
            self.stat_bucket_evals += cand.size

        if keep.all():
            val_act = val[inverse]
        else:
            lookup = np.full(live.size, -1, dtype=np.int64)
            lookup[keep] = np.arange(cand.size)
            li = lookup[inverse]
            have = li >= 0
            val_act = np.full(act.size, np.inf, dtype=np.float64)
            val_act[have] = val[li[have]]
        val_act[int(np.searchsorted(act, x))] = np.inf
        return act, val_act

    def _scan_row_refresh(self, x: int) -> np.ndarray:
        """The x-side distance row the reference ``_distances_from``
        computes, assembled from bucket-level evaluations."""
        act, val = self._scan_active(x)
        dist = np.full(self.active.size, np.inf, dtype=np.float64)
        if act.size:
            dist[act] = val
        return dist

    def _scan_row_mixed(self, x: int) -> np.ndarray:
        """The stored matrix row the reference ``_rescan_row`` reads.

        Entry (x, z) was last written from the side of whichever slot
        refreshed later, so active partners are grouped by
        (bucket, newer-than-x) and each group is evaluated from its
        recorded side.
        """
        enc, model = self.enc, self.model
        n = self.active.size
        dist = np.full(n, np.inf, dtype=np.float64)
        act = np.flatnonzero(self.active)
        act = act[act != x]
        if not act.size:
            return dist
        newer = (self.last_refresh[act] > self.last_refresh[x]).astype(np.int64)
        gid = self.bucket_of[act] * 2 + newer
        groups, inverse = np.unique(gid, return_inverse=True)
        gb = groups >> 1  # bucket id per group
        gs = (groups & 1).astype(bool)  # True: partner side is newer
        bn = self._bnodes[gb]
        bs = self._bsizes[gb]
        bc = self._bcosts[gb]
        size_x, cost_x = self.sizes[x], self.costs[x]

        def side_eval(
            sel_newer: np.ndarray, bs_, bc_, cu
        ) -> np.ndarray:
            # a-side is the most recently refreshed slot of the pair.
            out = np.empty(cu.size, dtype=np.float64)
            old = ~sel_newer
            if old.any():
                out[old] = np.asarray(
                    self.distance.evaluate(
                        size_x, cost_x, bs_[old], bc_[old], cu[old]
                    ),
                    dtype=np.float64,
                )
            if sel_newer.any():
                out[sel_newer] = np.asarray(
                    self.distance.evaluate(
                        bs_[sel_newer],
                        bc_[sel_newer],
                        size_x,
                        cost_x,
                        cu[sel_newer],
                    ),
                    dtype=np.float64,
                )
            return out

        def exact_of(idx: np.ndarray) -> np.ndarray:
            union = enc.join_rows(bn[idx], self.nodes[x])
            cu = np.asarray(model.record_cost(union), dtype=np.float64)
            return side_eval(gs[idx], bs[idx], bc[idx], cu)

        use_prune = (
            self.prune_enabled and groups.size >= self.prune_min_buckets
        )
        if use_prune:
            cu_lb = union_cost_lower_bound(model, bc, cost_x)
            lb = side_eval(gs, bs, bc, np.asarray(cu_lb, dtype=np.float64))
            need = np.zeros(groups.size, dtype=bool)
        else:
            lb = np.full(groups.size, -np.inf, dtype=np.float64)
            need = np.ones(groups.size, dtype=bool)
        val, _ = self._evaluate_buckets(lb, need, exact_of, prune=use_prune)
        dist[act] = val[inverse]
        dist[x] = np.inf
        return dist

    # ------------------------------------------------------------------ #
    # reference-engine hooks
    # ------------------------------------------------------------------ #

    def _refresh_row(self, x: int) -> None:
        """Bucketed form of the reference refresh: same row minimum,
        same argmin tie-break, same strict-improvement pushes.

        Works on the active-compacted scan: the reference's full row is
        ``inf`` outside the active slots, so its min, its first-index
        argmin and its strict-improvement pushes are all reproduced
        from the compact vector (an all-``inf`` row argmins to 0 either
        way; ``val`` holds ``inf`` at x itself, so x never pushes onto
        its own row).
        """
        self.tick += 1
        self.last_refresh[x] = self.tick
        self._release_bucket(x)
        self._assign_bucket(x)
        act, val = self._scan_active(x)
        best = val.min() if act.size else np.inf
        if np.isfinite(best):
            self.row_min[x] = best
            self.row_arg[x] = int(act[int(val.argmin())])
        else:
            self.row_min[x] = best
            self.row_arg[x] = 0
        better = val < self.row_min[act]
        slots = act[better]
        self.row_min[slots] = val[better]
        self.row_arg[slots] = x

    def _deactivate(self, x: int) -> None:
        self.active[x] = False
        self._release_bucket(x)
        self.row_min[x] = np.inf
        self.free_slots.append(x)

    def _rescan_row(self, x: int) -> None:
        dist = self._scan_row_mixed(x)
        self.row_min[x] = dist.min()
        self.row_arg[x] = int(dist.argmin())

    def _pair_value(self, x: int, y: int) -> float:
        """Recompute the recorded value of pair (x, y): the side of the
        newer refresh stamp, via the same vectorized code path that
        produced it (1-element arrays, identical element-wise ops)."""
        if self.last_refresh[y] > self.last_refresh[x]:
            a, b = y, x
        else:
            a, b = x, y
        union = self.enc.join_rows(self.nodes[b][None, :], self.nodes[a])
        cu = np.asarray(self.model.record_cost(union), dtype=np.float64)
        d = np.asarray(
            self.distance.evaluate(
                self.sizes[a],
                self.costs[a],
                self.sizes[b : b + 1],
                self.costs[b : b + 1],
                cu,
            ),
            dtype=np.float64,
        )
        return float(d[0])

    def _flush_stats(self) -> None:
        super()._flush_stats()
        tallies = (
            ("core.agglomerative.bucket_evals", self.stat_bucket_evals),
            ("core.agglomerative.bucket_pruned", self.stat_bucket_pruned),
        )
        for name, value in tallies:
            if value:
                count(name, value)
