"""Mondrian-style top-down partitioning — a second local-recoding
comparator.

LeFevre et al.'s multidimensional partitioning (cited in Section II) is
the classic *top-down* counterpart of the paper's bottom-up
agglomerative algorithm: start from one cluster holding the whole table
and recursively split while both halves keep at least k records.  This
implementation adapts it to the paper's generalization model — every
cluster is published as its closure under the permissible-subset
hierarchies, so the result is directly comparable to Algorithms 1/2 and
the forest baseline under any of the library's measures.

Split choice: the attribute whose values (in domain order) spread over
the most distinct codes inside the cluster, cut at the median record;
ties fall to the lower attribute index.  Splits that cannot give both
sides ≥ k records are skipped; a cluster with no feasible split is
emitted.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.errors import AnonymityError
from repro.measures.base import CostModel
from repro.runtime import checkpoint
from repro.tabular.encoding import EncodedTable


def _best_split(
    enc: EncodedTable, members: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """The Mondrian split of one cluster, or None if none is feasible."""
    codes = enc.codes[members]
    order = np.argsort(
        [-len(np.unique(codes[:, j])) for j in range(enc.num_attributes)],
        kind="stable",
    )
    # repro: allow[REP011] iterates schema attributes per split; every split hits core.mondrian.split
    for j in order:
        column = codes[:, j]
        if len(np.unique(column)) < 2:
            continue
        median = np.median(column)
        left_mask = column <= median
        # Degenerate cut (everything ≤ median): cut strictly below instead.
        if left_mask.all():
            left_mask = column < median
        if not left_mask.any() or left_mask.all():
            continue
        left = members[left_mask]
        right = members[~left_mask]
        if len(left) >= k and len(right) >= k:
            return left, right
    return None


def mondrian_clustering(model: CostModel, k: int) -> Clustering:
    """Top-down median partitioning; every cluster has ≥ k records.

    The ``model`` argument keeps the signature uniform with the other
    clustering algorithms (the split rule itself is measure-free; the
    measure only scores the result).

    Raises
    ------
    AnonymityError
        If k exceeds the table size or the table is empty.
    """
    enc = model.enc
    n = enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    if k <= 1:
        return Clustering(n, [[i] for i in range(n)])

    finished: list[list[int]] = []
    queue: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while queue:
        checkpoint("core.mondrian.split")
        members = queue.pop()
        split = _best_split(enc, members, k)
        if split is None:
            finished.append([int(i) for i in members])
        else:
            queue.extend(split)
    return Clustering(n, finished)
