"""Slow reference implementations, for differential testing.

The production agglomerative engine (:mod:`repro.core.agglomerative`)
earns its O(n²) bound with cached closures, a pairwise distance matrix
and per-row minima — exactly the machinery where subtle staleness bugs
live.  This module re-implements Algorithm 1/2 *literally*: plain
Python lists of clusters, closures recomputed from scratch, a full pair
scan per merge, no caching anywhere.  The test suite runs both on the
same inputs and demands identical results.

One honest caveat: when two pairs are at *exactly* the same distance,
the two implementations may merge different pairs (the cached engine's
argmin semantics depend on update order), and either choice is a
correct execution of Algorithm 1.  The reference therefore reports
whether any exact tie influenced a decision; the differential tests
compare outcomes only for tie-free runs and fall back to
invariant-level checks otherwise.

Only suitable for tiny tables (the scan is O(n³) overall); never use it
outside tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clustering import Clustering
from repro.core.distances import ClusterDistance
from repro.errors import AnonymityError
from repro.measures.base import CostModel

#: Two distances closer than this are treated as an exact tie.
_TIE_EPS = 1e-12


@dataclass(frozen=True)
class ReferenceRun:
    """Outcome of one reference execution."""

    clustering: Clustering
    had_ties: bool  #: whether any merge decision involved an exact tie


def _dist(
    model: CostModel,
    distance: ClusterDistance,
    cluster_a: list[int],
    cluster_b: list[int],
) -> float:
    cost_a = model.cluster_cost(cluster_a)
    cost_b = model.cluster_cost(cluster_b)
    cost_union = model.cluster_cost(cluster_a + cluster_b)
    return float(
        distance.evaluate(
            len(cluster_a), cost_a, len(cluster_b), cost_b, cost_union
        )
    )


def reference_agglomerative(
    model: CostModel,
    k: int,
    distance: ClusterDistance,
    modified: bool = False,
) -> ReferenceRun:
    """Algorithm 1 (and 2 with ``modified=True``), transcribed literally."""
    n = model.enc.num_records
    if n == 0:
        raise AnonymityError("cannot anonymize an empty table")
    if k > n:
        raise AnonymityError(f"k={k} exceeds the number of records n={n}")
    if k <= 1:
        return ReferenceRun(
            Clustering(n, [[i] for i in range(n)]), had_ties=False
        )

    clusters: list[list[int]] = [[i] for i in range(n)]
    output: list[list[int]] = []
    had_ties = False

    while len(clusters) > 1:
        best = None  # (dist, index_a, index_b)
        for a in range(len(clusters)):
            for b in range(len(clusters)):
                if a == b:
                    continue
                d = _dist(model, distance, clusters[a], clusters[b])
                if best is None or d < best[0] - _TIE_EPS:
                    best = (d, a, b)
                elif best is not None and abs(d - best[0]) <= _TIE_EPS and (
                    (a, b) != (best[1], best[2])
                ):
                    had_ties = True
        assert best is not None
        _, a, b = best
        merged = clusters[a] + clusters[b]
        for idx in sorted((a, b), reverse=True):
            del clusters[idx]
        if len(merged) >= k:
            if modified and len(merged) > k:
                merged, expelled, shrink_ties = _shrink(
                    model, distance, merged, k
                )
                had_ties = had_ties or shrink_ties
            else:
                expelled = []
            output.append(merged)
            clusters.extend([record] for record in expelled)
        else:
            clusters.append(merged)

    if clusters:
        (leftover,) = clusters
        for record in leftover:
            best_t = None
            for t, cluster in enumerate(output):
                d = _dist(model, distance, [record], cluster)
                if best_t is None or d < best_t[0] - _TIE_EPS:
                    best_t = (d, t)
                elif best_t is not None and abs(d - best_t[0]) <= _TIE_EPS:
                    had_ties = True
            assert best_t is not None
            output[best_t[1]].append(record)
    return ReferenceRun(Clustering(n, output), had_ties=had_ties)


def _shrink(
    model: CostModel,
    distance: ClusterDistance,
    members: list[int],
    k: int,
) -> tuple[list[int], list[int], bool]:
    kept = list(members)
    expelled: list[int] = []
    had_ties = False
    while len(kept) > k:
        size = len(kept)
        cost_full = model.cluster_cost(kept)
        best_i, best_d = 0, float("-inf")
        for i in range(size):
            rest = kept[:i] + kept[i + 1 :]
            d_i = float(
                distance.evaluate(
                    size, cost_full, size - 1, model.cluster_cost(rest),
                    cost_full,
                )
            )
            if d_i > best_d + _TIE_EPS:
                best_i, best_d = i, d_i
            elif abs(d_i - best_d) <= _TIE_EPS and i != best_i:
                had_ties = True
        expelled.append(kept.pop(best_i))
    return kept, expelled, had_ties
