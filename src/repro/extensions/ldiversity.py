"""ℓ-diversity inside the agglomerative framework (paper §II / §VII).

The paper notes that "ℓ-diversity fits also in our framework, but we
have left the investigation of this topic for future research".  This
module is that investigation for the clustering-based algorithms, with
all three criteria of Machanavajjhala et al. [15]:

* **distinct** ℓ-diversity — ≥ ℓ distinct sensitive values per cluster;
* **entropy** ℓ-diversity — H(sensitive | cluster) ≥ log₂ ℓ;
* **recursive (c, ℓ)**-diversity — the most frequent value occurs fewer
  than c times the combined count of the ℓ−1 … least frequent values
  (r₁ < c · (r_ℓ + … + r_m)).

A clustering violating the chosen criterion is repaired by merging each
offending cluster into the cluster whose union costs least under the
active distance function — the same agglomerative primitive Algorithm 1
is built from.  The result satisfies both k-anonymity (cluster sizes
only grow) and the requested diversity criterion.  Note: entropy and
recursive diversity are not generally monotone under merging, so the
repair loop re-checks after every merge and is guaranteed to terminate
only because the single whole-table cluster is maximally diverse — if
even that fails the criterion, the demand is unattainable and reported
as such.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clustering import Clustering
from repro.core.distances import ClusterDistance
from repro.errors import AnonymityError, SchemaError
from repro.measures.base import CostModel
from repro.tabular.encoding import EncodedTable


def sensitive_column(enc: EncodedTable, attribute: str | None = None) -> list[str]:
    """Values of the sensitive (private) attribute, one per record."""
    schema = enc.schema
    if not schema.private_attributes:
        raise SchemaError(
            "ℓ-diversity needs a private attribute, but the schema declares none"
        )
    name = attribute or schema.private_attributes[0]
    try:
        col = schema.private_attributes.index(name)
    except ValueError:
        raise SchemaError(
            f"no private attribute named {name!r} "
            f"(have {schema.private_attributes})"
        ) from None
    return [row[col] for row in enc.table.private_rows]


def cluster_diversities(
    enc: EncodedTable, clustering: Clustering, attribute: str | None = None
) -> np.ndarray:
    """Distinct sensitive-value count of every cluster."""
    values = sensitive_column(enc, attribute)
    return np.array(
        [len({values[i] for i in cluster}) for cluster in clustering.clusters],
        dtype=np.int64,
    )


def _value_counts(values: list[str], cluster) -> np.ndarray:
    from collections import Counter

    counts = Counter(values[i] for i in cluster)
    return np.array(sorted(counts.values(), reverse=True), dtype=np.float64)


def distinct_diversity(values: list[str], cluster) -> float:
    """Number of distinct sensitive values in one cluster."""
    return float(len({values[i] for i in cluster}))


def entropy_diversity(values: list[str], cluster) -> float:
    """Effective value count 2^H of the cluster's sensitive distribution.

    Entropy ℓ-diversity [15] demands H ≥ log₂ ℓ, i.e. this quantity ≥ ℓ.
    """
    counts = _value_counts(values, cluster)
    p = counts / counts.sum()
    entropy = float(-(p * np.log2(p)).sum())
    return float(2.0 ** entropy)


def recursive_diversity_satisfied(
    values: list[str], cluster, l: int, c: float
) -> bool:
    """Recursive (c, ℓ)-diversity [15]: r₁ < c · (r_ℓ + … + r_m)."""
    counts = _value_counts(values, cluster)
    if len(counts) < l:
        return False
    tail = counts[l - 1 :].sum()
    return bool(counts[0] < c * tail)


def is_l_diverse(
    enc: EncodedTable,
    clustering: Clustering,
    l: int,
    attribute: str | None = None,
    criterion: str = "distinct",
    c: float = 1.0,
) -> bool:
    """ℓ-diversity check for a clustering under the chosen criterion.

    Parameters
    ----------
    criterion:
        ``"distinct"`` (default), ``"entropy"`` or ``"recursive"``.
    c:
        The constant of recursive (c, ℓ)-diversity; ignored otherwise.
    """
    values = sensitive_column(enc, attribute)
    if criterion == "distinct":
        return all(
            distinct_diversity(values, cluster) >= l
            for cluster in clustering.clusters
        )
    if criterion == "entropy":
        return all(
            entropy_diversity(values, cluster) >= l - 1e-9
            for cluster in clustering.clusters
        )
    if criterion == "recursive":
        return all(
            recursive_diversity_satisfied(values, cluster, l, c)
            for cluster in clustering.clusters
        )
    raise SchemaError(
        f"unknown diversity criterion {criterion!r}; expected "
        "'distinct', 'entropy' or 'recursive'"
    )


@dataclass(frozen=True)
class DiversityRepair:
    """Result of :func:`enforce_l_diversity`."""

    clustering: Clustering  #: the repaired, ℓ-diverse clustering
    merges: int  #: how many cluster merges were needed


def enforce_l_diversity(
    model: CostModel,
    clustering: Clustering,
    l: int,
    distance: ClusterDistance,
    attribute: str | None = None,
    criterion: str = "distinct",
    c: float = 1.0,
) -> DiversityRepair:
    """Merge non-diverse clusters until every cluster is ℓ-diverse.

    In every step the worst-offending cluster is merged with the cluster
    minimizing the distance function — exactly Algorithm 1's merge
    primitive, applied under a diversity trigger instead of a size
    trigger.  Supports all three [15] criteria; see :func:`is_l_diverse`.

    Raises
    ------
    AnonymityError
        If even the whole table, as a single cluster, fails the
        criterion (then no clustering can satisfy it).
    """
    enc = model.enc
    values = sensitive_column(enc, attribute)

    def satisfied(cluster) -> bool:
        if criterion == "distinct":
            return distinct_diversity(values, cluster) >= l
        if criterion == "entropy":
            return entropy_diversity(values, cluster) >= l - 1e-9
        if criterion == "recursive":
            return recursive_diversity_satisfied(values, cluster, l, c)
        raise SchemaError(
            f"unknown diversity criterion {criterion!r}; expected "
            "'distinct', 'entropy' or 'recursive'"
        )

    def score(cluster) -> float:
        # Lower = worse offender (merged first).
        if criterion == "recursive":
            counts = _value_counts(values, cluster)
            tail = counts[l - 1 :].sum() if len(counts) >= l else 0.0
            return float(tail - counts[0] / max(c, 1e-12))
        if criterion == "entropy":
            return entropy_diversity(values, cluster)
        return distinct_diversity(values, cluster)

    if not satisfied(list(range(enc.num_records))):
        raise AnonymityError(
            f"the whole table fails {criterion} ℓ-diversity at ℓ={l}; "
            "the demand is unattainable"
        )

    clusters = [list(c) for c in clustering.clusters]
    merges = 0
    while True:
        deficient = [
            ci for ci, cluster in enumerate(clusters) if not satisfied(cluster)
        ]
        if not deficient:
            break
        ci = min(deficient, key=lambda idx: (score(clusters[idx]), idx))
        nodes = np.array(
            [enc.closure_of_records(c) for c in clusters], dtype=np.int32
        )
        sizes = np.array([len(c) for c in clusters], dtype=np.int64)
        costs = np.asarray(model.record_cost(nodes), dtype=np.float64)
        union = enc.join_rows(nodes, nodes[ci])
        cost_union = np.asarray(model.record_cost(union), dtype=np.float64)
        dist = np.asarray(
            distance.evaluate(sizes[ci], costs[ci], sizes, costs, cost_union),
            dtype=np.float64,
        )
        dist[ci] = np.inf
        target = int(dist.argmin())
        lo, hi = sorted((ci, target))
        clusters[lo] = clusters[lo] + clusters[hi]
        del clusters[hi]
        merges += 1
    return DiversityRepair(
        clustering=Clustering(enc.num_records, clusters), merges=merges
    )
