"""The ((1+ε)k, (1+ε)k) conjecture of Section VII.

The paper's conclusions propose investigating whether, on real data, a
(k,k)-anonymization — or a ((1+ε)k, (1+ε)k)-anonymization for a small
ε — already satisfies global (1,k), making Algorithm 6's expensive
matching machinery unnecessary in practice.  This module runs that
experiment: for a sweep of ε values it builds (k', k')-anonymizations
with k' = ⌈(1+ε)·k⌉ and reports how close each comes to global
(1,k)-anonymity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.kk import kk_anonymize
from repro.core.notions import match_count_per_record
from repro.measures.base import CostModel


@dataclass(frozen=True)
class EpsilonPoint:
    """One ε of the sweep."""

    epsilon: float  #: the relaxation parameter
    k_prime: int  #: ⌈(1+ε)·k⌉, the level actually enforced
    cost: float  #: Π of the (k',k')-anonymization
    min_matches: int  #: worst record's match count (global level achieved)
    deficient_records: int  #: records with < k matches
    satisfies_global: bool  #: min_matches ≥ k


@dataclass(frozen=True)
class EpsilonSweep:
    """Full sweep result for one (table, measure, k)."""

    k: int
    points: tuple[EpsilonPoint, ...]

    def smallest_sufficient_epsilon(self) -> float | None:
        """The smallest swept ε whose (k',k')-anonymization is already
        globally (1,k)-anonymous, or None if none is."""
        for point in self.points:
            if point.satisfies_global:
                return point.epsilon
        return None


def epsilon_sweep(
    model: CostModel,
    k: int,
    epsilons: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.5),
    expander: str = "expansion",
) -> EpsilonSweep:
    """Run the Section VII experiment for one table and measure.

    ε = 0.0 asks the base question ("is a (k,k)-anonymization already
    global (1,k)?"); larger ε quantify how much headroom is needed.
    """
    points = []
    for eps in epsilons:
        k_prime = max(k, math.ceil((1.0 + eps) * k))
        nodes = kk_anonymize(model, k_prime, expander=expander)
        matches = match_count_per_record(model.enc, nodes)
        points.append(
            EpsilonPoint(
                epsilon=eps,
                k_prime=k_prime,
                cost=model.table_cost(nodes),
                min_matches=int(matches.min()),
                deficient_records=int((matches < k).sum()),
                satisfies_global=bool(matches.min() >= k),
            )
        )
    return EpsilonSweep(k=k, points=tuple(points))
