"""Extensions the paper marks as future work (Section VII).

* ℓ-diversity within the agglomerative framework.
* The ((1+ε)k, (1+ε)k) vs global (1,k) experiment.
"""

from repro.extensions.epsilon_kk import EpsilonPoint, EpsilonSweep, epsilon_sweep
from repro.extensions.ldiversity import (
    distinct_diversity,
    entropy_diversity,
    recursive_diversity_satisfied,
    DiversityRepair,
    cluster_diversities,
    enforce_l_diversity,
    is_l_diverse,
    sensitive_column,
)

__all__ = [
    "epsilon_sweep",
    "EpsilonSweep",
    "EpsilonPoint",
    "enforce_l_diversity",
    "DiversityRepair",
    "is_l_diverse",
    "distinct_diversity",
    "entropy_diversity",
    "recursive_diversity_satisfied",
    "cluster_diversities",
    "sensitive_column",
]
