"""The pinned benchmark suite behind ``repro-anon bench``.

Two kinds of cases:

* **algorithm cases** — the Section V algorithms (agglomerative, forest,
  (k,k), global-(1,k)) and the Hopcroft–Karp matcher, timed over an
  n-grid.  Their timings are machine-dependent: the comparator treats
  them as warnings unless explicitly enforced.
* **paired cases** — each hot-path optimization timed against its kept
  reference implementation (e.g. the vectorized entropy ``node_costs``
  vs :func:`~repro.measures.entropy.node_costs_reference`).  The
  *ratio* of the two medians is a speedup measured on the same machine
  in the same process, so it is comparable across machines and safe to
  enforce in CI.

Reports are schema-versioned JSON (:data:`BENCH_SCHEMA`) written
atomically; ``BENCH_<stamp>.json`` files committed at the repo root are
the regression baselines :mod:`repro.perf.compare` checks against.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.agglomerative import _Engine, agglomerative_clustering
from repro.core.distances import get_distance
from repro.core.forest import forest_clustering
from repro.core.global_1k import global_one_k_anonymize
from repro.core.kk import kk_anonymize
from repro.datasets.registry import load
from repro.errors import ReproError
from repro.matching.bipartite import ConsistencyGraph
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.measures.base import CostModel
from repro.measures.entropy import (
    EntropyMeasure,
    NonUniformEntropyMeasure,
    entry_costs_reference,
    node_costs_reference,
)
from repro.measures.registry import get_measure
from repro.obs import MetricsRegistry, NullRegistry, metrics_scope, span
from repro.runtime import Timer, atomic_write_text
from repro.tabular.encoding import EncodedTable

#: Version tag of the report format; bump on breaking layout changes.
#: v2 added the optional top-level ``metrics`` snapshot
#: (``repro-anon bench --metrics``); the comparator reads both.
BENCH_SCHEMA = "repro.perf.bench/2"

#: Previous schema, still accepted by :mod:`repro.perf.compare` so
#: committed v1 baselines keep working.
BENCH_SCHEMA_V1 = "repro.perf.bench/1"

#: n-grid per mode: quick keeps the whole suite under the CI smoke cap.
QUICK_SIZES = (80,)
FULL_SIZES = (150, 300)

#: Repeat counts per mode (median over repeats is the reported figure).
QUICK_REPEAT = 2
FULL_REPEAT = 5

_BENCH_SEED = 0
_BENCH_K = 5
_BENCH_DATASET = "art"
_BENCH_MEASURE = "entropy"


@dataclass(frozen=True)
class BenchCase:
    """One timed case: a setup closure producing the timed closure.

    ``setup`` runs untimed and returns the function to time, so table
    encoding / model building never pollutes an algorithm measurement.
    ``pair`` groups an optimized case with its reference: two cases
    sharing a ``pair`` name (roles ``optimized`` / ``baseline``) yield a
    speedup entry in the report.
    """

    name: str
    group: str  #: "algorithm", "matching" or "hotpath"
    n: int
    setup: Callable[[], Callable[[], object]]
    pair: str = ""  #: pair name ("" = unpaired)
    role: str = ""  #: "optimized" or "baseline" within the pair


@dataclass
class BenchReport:
    """In-memory form of one ``BENCH_<stamp>.json``."""

    stamp: str
    quick: bool
    repeat: int
    machine: dict[str, Any]
    git_sha: str
    cases: list[dict[str, Any]] = field(default_factory=list)
    pairs: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, Any] | None = None  #: suite-wide obs snapshot

    def to_json(self) -> dict[str, Any]:
        """The schema-versioned JSON payload."""
        data: dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "stamp": self.stamp,
            "quick": self.quick,
            "repeat": self.repeat,
            "machine": self.machine,
            "git_sha": self.git_sha,
            "cases": self.cases,
            "pairs": self.pairs,
        }
        if self.metrics is not None:
            data["metrics"] = self.metrics
        return data

    def case(self, name: str) -> dict[str, Any] | None:
        """One case's entry by name (None when absent)."""
        for entry in self.cases:
            if entry["name"] == name:
                return entry
        return None

    def pair(self, name: str) -> dict[str, Any] | None:
        """One pair's entry by name (None when absent)."""
        for entry in self.pairs:
            if entry["name"] == name:
                return entry
        return None

    def write(self, path: str | Path) -> None:
        """Atomically write the JSON report."""
        atomic_write_text(
            path, json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )


def default_stamp(clock: Callable[[], float] = time.time) -> str:
    """A filesystem-safe UTC stamp for ``BENCH_<stamp>.json`` names.

    The wall-clock read goes through an injectable epoch-seconds
    ``clock`` so the filename path is testable (a fake clock yields an
    exact, assertable stamp) instead of being the one line no test
    could pin down.
    """
    from datetime import datetime, timezone

    return datetime.fromtimestamp(clock(), timezone.utc).strftime(
        "%Y-%m-%dT%H%M%SZ"
    )


def default_report_path(
    directory: str | Path = ".", clock: Callable[[], float] = time.time
) -> Path:
    """Where a fresh report lands: ``<directory>/BENCH_<stamp>.json``."""
    return Path(directory) / f"BENCH_{default_stamp(clock)}.json"


def machine_fingerprint() -> dict[str, Any]:
    """Where a report was measured (for apples-to-apples comparisons)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def git_sha() -> str:
    """The current commit, or ``"unknown"`` outside a usable checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


# ---------------------------------------------------------------------- #
# case construction
# ---------------------------------------------------------------------- #


def _model(n: int, measure: str = _BENCH_MEASURE) -> CostModel:
    table = load(_BENCH_DATASET, n=n, seed=_BENCH_SEED)
    return CostModel(EncodedTable(table), get_measure(measure))


def _algorithm_cases(sizes: Sequence[int]) -> list[BenchCase]:
    cases: list[BenchCase] = []
    for n in sizes:
        def agg_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            distance = get_distance("d3")
            return lambda: agglomerative_clustering(
                model, _BENCH_K, distance, modified=True
            )

        def forest_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            return lambda: forest_clustering(model, _BENCH_K)

        def kk_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            return lambda: kk_anonymize(model, _BENCH_K)

        def global_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            kk_nodes = kk_anonymize(model, _BENCH_K)
            return lambda: global_one_k_anonymize(model, kk_nodes, _BENCH_K)

        def matcher_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            kk_nodes = kk_anonymize(model, _BENCH_K)
            adj = ConsistencyGraph(model.enc, kk_nodes).adjacency_lists()
            return lambda: hopcroft_karp(adj, n)

        cases += [
            BenchCase(f"agglomerative-mod-n{n}", "algorithm", n, agg_setup),
            BenchCase(f"forest-n{n}", "algorithm", n, forest_setup),
            BenchCase(f"kk-n{n}", "algorithm", n, kk_setup),
            BenchCase(f"global-1k-n{n}", "algorithm", n, global_setup),
            BenchCase(f"hopcroft-karp-n{n}", "matching", n, matcher_setup),
        ]
    return cases


def _hotpath_cases(sizes: Sequence[int]) -> list[BenchCase]:
    """Optimized-vs-reference pairs for each hot-path win."""
    n = max(sizes)
    cases: list[BenchCase] = []

    # Pair 1: vectorized Π_E node costs vs the per-node scan.
    def node_fast() -> Callable[[], object]:
        enc = _model(n).enc
        measure = EntropyMeasure()
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [measure.node_costs(att, vc) for att, vc in pairs]

    def node_ref() -> Callable[[], object]:
        enc = _model(n).enc
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [node_costs_reference(att, vc) for att, vc in pairs]

    # Pair 2: vectorized non-uniform entropy entry costs vs nested loops.
    def entry_fast() -> Callable[[], object]:
        enc = _model(n).enc
        measure = NonUniformEntropyMeasure()
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [measure.entry_costs(att, vc) for att, vc in pairs]

    def entry_ref() -> Callable[[], object]:
        enc = _model(n).enc
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [entry_costs_reference(att, vc) for att, vc in pairs]

    # Pair 3: Algorithm 2 shrink via leave-one-out join folds vs the
    # per-subset closure scan, on one oversized cluster.
    def _shrink_engine() -> tuple[_Engine, list[int]]:
        model = _model(n)
        engine = _Engine(model, get_distance("d3"), _BENCH_K)
        members = list(range(min(4 * _BENCH_K, n)))
        return engine, members

    def shrink_fast() -> Callable[[], object]:
        engine, members = _shrink_engine()
        return lambda: engine._shrink(list(members))

    def shrink_ref() -> Callable[[], object]:
        engine, members = _shrink_engine()
        return lambda: engine._shrink_scan(list(members))

    # Pair 4: memoized closure lookups vs a cold cache every call.
    def _closure_batches(enc: EncodedTable) -> list[list[int]]:
        return [
            list(range(start, start + _BENCH_K))
            for start in range(0, enc.num_records - _BENCH_K, 3)
        ]

    def closure_fast() -> Callable[[], object]:
        enc = _model(n).enc
        batches = _closure_batches(enc)
        return lambda: [enc.closure_of_records(b) for b in batches]

    def closure_ref() -> Callable[[], object]:
        enc = _model(n).enc
        batches = _closure_batches(enc)

        def run() -> object:
            enc._closure_cache.clear()
            out = []
            for b in batches:
                enc._closure_cache.clear()
                out.append(enc.closure_of_records(b))
            return out

        return run

    for pair, fast, ref in (
        ("entropy-node-costs", node_fast, node_ref),
        ("entropy-entry-costs", entry_fast, entry_ref),
        ("agglomerative-shrink", shrink_fast, shrink_ref),
        ("closure-memo", closure_fast, closure_ref),
    ):
        cases.append(
            BenchCase(f"{pair}-opt-n{n}", "hotpath", n, fast, pair, "optimized")
        )
        cases.append(
            BenchCase(f"{pair}-ref-n{n}", "hotpath", n, ref, pair, "baseline")
        )
    return cases


def default_cases(quick: bool = False) -> list[BenchCase]:
    """The pinned case set (``--quick`` shrinks the n-grid)."""
    from repro.perf.serve_bench import serve_cases  # avoid import cycle

    sizes = QUICK_SIZES if quick else FULL_SIZES
    return _algorithm_cases(sizes) + _hotpath_cases(sizes) + serve_cases(quick)


# ---------------------------------------------------------------------- #
# running
# ---------------------------------------------------------------------- #


def _time_case(case: BenchCase, repeat: int) -> dict[str, Any]:
    fn = case.setup()
    fn()  # warmup: fills caches / JIT-ish lazy imports outside the timing
    seconds: list[float] = []
    last: object = None
    with span("perf.bench.case", case=case.name):
        for _ in range(repeat):
            with Timer() as timer:
                last = fn()
            seconds.append(timer.seconds)
    entry = {
        "name": case.name,
        "group": case.group,
        "n": case.n,
        "pair": case.pair,
        "role": case.role,
        "seconds": seconds,
        "min": min(seconds),
        "median": statistics.median(seconds),
        "mean": statistics.fmean(seconds),
        "max": max(seconds),
    }
    # A timed closure may return {"__bench_extra__": {...}} to fold
    # case-specific stats (e.g. the serve group's throughput and latency
    # quantiles) into its report entry alongside the repeat timings.
    if isinstance(last, dict) and isinstance(last.get("__bench_extra__"), dict):
        entry.update(last["__bench_extra__"])
    return entry


def run_bench(
    cases: Sequence[BenchCase] | None = None,
    quick: bool = False,
    repeat: int | None = None,
    stamp: str = "",
    name_filter: str = "",
    on_case: Callable[[dict[str, Any]], None] | None = None,
    collect_metrics: bool = False,
    clock: Callable[[], float] = time.time,
) -> BenchReport:
    """Run the suite and return the report (not yet written to disk).

    With ``collect_metrics=True`` a fresh
    :class:`~repro.obs.MetricsRegistry` is scoped around the whole
    suite and its snapshot embedded in the report (``metrics`` key) —
    work-unit counters give regression hunts a second axis besides raw
    timings.  ``stamp`` defaults to :func:`default_stamp` on ``clock``.
    """
    if cases is None:
        cases = default_cases(quick=quick)
    if name_filter:
        cases = [c for c in cases if name_filter in c.name]
    if not cases:
        raise ReproError(
            f"no benchmark cases match filter {name_filter!r}"
        )
    if repeat is None:
        repeat = QUICK_REPEAT if quick else FULL_REPEAT
    if repeat < 1:
        raise ReproError(f"repeat must be positive, got {repeat}")
    report = BenchReport(
        stamp=stamp or default_stamp(clock),
        quick=quick,
        repeat=repeat,
        machine=machine_fingerprint(),
        git_sha=git_sha(),
    )
    registry = MetricsRegistry() if collect_metrics else NullRegistry()
    with metrics_scope(registry):
        for case in cases:
            entry = _time_case(case, repeat)
            report.cases.append(entry)
            if on_case is not None:
                on_case(entry)
    if collect_metrics:
        report.metrics = registry.snapshot()
    _attach_pairs(report)
    return report


def _attach_pairs(report: BenchReport) -> None:
    """Derive speedup entries from optimized/baseline case pairs."""
    by_pair: dict[str, dict[str, dict[str, Any]]] = {}
    for entry in report.cases:
        if entry["pair"]:
            by_pair.setdefault(entry["pair"], {})[entry["role"]] = entry
    for pair_name in sorted(by_pair):
        roles = by_pair[pair_name]
        if "optimized" not in roles or "baseline" not in roles:
            continue
        opt, base = roles["optimized"], roles["baseline"]
        speedup = (
            base["median"] / opt["median"] if opt["median"] > 0 else float("inf")
        )
        report.pairs.append(
            {
                "name": pair_name,
                "optimized_case": opt["name"],
                "baseline_case": base["name"],
                "speedup": speedup,
            }
        )
