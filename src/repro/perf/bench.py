"""The pinned benchmark suite behind ``repro-anon bench``.

Two kinds of cases:

* **algorithm cases** — the Section V algorithms (agglomerative, forest,
  (k,k), global-(1,k)) and the Hopcroft–Karp matcher, timed over an
  n-grid.  Their timings are machine-dependent: the comparator treats
  them as warnings unless explicitly enforced.
* **paired cases** — each hot-path optimization timed against its kept
  reference implementation (e.g. the vectorized entropy ``node_costs``
  vs :func:`~repro.measures.entropy.node_costs_reference`).  The
  *ratio* of the two medians is a speedup measured on the same machine
  in the same process, so it is comparable across machines and safe to
  enforce in CI.

Reports are schema-versioned JSON (:data:`BENCH_SCHEMA`) written
atomically; ``BENCH_<stamp>.json`` files committed at the repo root are
the regression baselines :mod:`repro.perf.compare` checks against.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.agglomerative import _Engine, agglomerative_clustering
from repro.core.distances import get_distance
from repro.core.forest import forest_clustering
from repro.core.global_1k import global_one_k_anonymize
from repro.core.kk import kk_anonymize
from repro.datasets.registry import load
from repro.errors import ReproError
from repro.matching.bipartite import ConsistencyGraph
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.measures.base import CostModel
from repro.measures.entropy import (
    EntropyMeasure,
    NonUniformEntropyMeasure,
    entry_costs_reference,
    node_costs_reference,
)
from repro.measures.registry import get_measure
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    append_obs_record,
    metrics_scope,
    span,
)
from repro.runtime import Timer, atomic_write_text
from repro.tabular.encoding import EncodedTable

#: Version tag of the report format; bump on breaking layout changes.
#: v2 added the optional top-level ``metrics`` snapshot
#: (``repro-anon bench --metrics``); the comparator reads both.
BENCH_SCHEMA = "repro.perf.bench/2"

#: Previous schema, still accepted by :mod:`repro.perf.compare` so
#: committed v1 baselines keep working.
BENCH_SCHEMA_V1 = "repro.perf.bench/1"

#: n-grid per mode: quick keeps the whole suite under the CI smoke cap.
QUICK_SIZES = (80,)
FULL_SIZES = (150, 300)

#: Clustered-state candidate-scan pair size per mode (see
#: :func:`_scan_cases`): quick stays inside the smoke cap, full is the
#: n=10k point the speedup floor is enforced at.
SCAN_QUICK_N = 2_000
SCAN_FULL_N = 10_000

#: Columnar-only scan sizes (full mode).  The python engine's dense
#: matrix is O(n²) floats — 20 GB at n=50k — so these points have no
#: baseline leg; they pin absolute scan latency at scale instead.
SCALE_SIZES = (10_000, 50_000, 100_000)

#: Repeat counts per mode (median over repeats is the reported figure).
QUICK_REPEAT = 2
FULL_REPEAT = 5

_BENCH_SEED = 0
_BENCH_K = 5
_BENCH_DATASET = "art"
_BENCH_MEASURE = "entropy"


@dataclass(frozen=True)
class BenchCase:
    """One timed case: a setup closure producing the timed closure.

    ``setup`` runs untimed and returns the function to time, so table
    encoding / model building never pollutes an algorithm measurement.
    ``pair`` groups an optimized case with its reference: two cases
    sharing a ``pair`` name (roles ``optimized`` / ``baseline``) yield a
    speedup entry in the report.
    """

    name: str
    group: str  #: "algorithm", "matching", "hotpath", "scale" or "serve"
    n: int
    setup: Callable[[], Callable[[], object]]
    pair: str = ""  #: pair name ("" = unpaired)
    role: str = ""  #: "optimized" or "baseline" within the pair


@dataclass
class BenchReport:
    """In-memory form of one ``BENCH_<stamp>.json``."""

    stamp: str
    quick: bool
    repeat: int
    machine: dict[str, Any]
    git_sha: str
    cases: list[dict[str, Any]] = field(default_factory=list)
    pairs: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, Any] | None = None  #: suite-wide obs snapshot

    def to_json(self) -> dict[str, Any]:
        """The schema-versioned JSON payload."""
        data: dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "stamp": self.stamp,
            "quick": self.quick,
            "repeat": self.repeat,
            "machine": self.machine,
            "git_sha": self.git_sha,
            "cases": self.cases,
            "pairs": self.pairs,
        }
        if self.metrics is not None:
            data["metrics"] = self.metrics
        return data

    def case(self, name: str) -> dict[str, Any] | None:
        """One case's entry by name (None when absent)."""
        for entry in self.cases:
            if entry["name"] == name:
                return entry
        return None

    def pair(self, name: str) -> dict[str, Any] | None:
        """One pair's entry by name (None when absent)."""
        for entry in self.pairs:
            if entry["name"] == name:
                return entry
        return None

    def write(self, path: str | Path) -> None:
        """Atomically write the JSON report."""
        atomic_write_text(
            path, json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )

    def obs_record(self, path: str | Path) -> dict[str, Any]:
        """Append this run to an ``OBS_*.jsonl`` snapshot journal.

        One record per bench run: ``kind="bench"``, the report stamp
        (joinable against the ``BENCH_<stamp>.json`` baseline), the
        embedded work-unit snapshot (empty when the run collected no
        metrics) and per-case median seconds — the committed artifact
        the cost-model planner (ROADMAP item 2) fits against.
        """
        return append_obs_record(
            path,
            kind="bench",
            stamp=self.stamp,
            snapshot=self.metrics if self.metrics is not None else {},
            extra={
                "quick": self.quick,
                "git_sha": self.git_sha,
                "case_medians": {
                    entry["name"]: entry["median"] for entry in self.cases
                },
            },
        )


def default_stamp(clock: Callable[[], float] = time.time) -> str:
    """A filesystem-safe UTC stamp for ``BENCH_<stamp>.json`` names.

    The wall-clock read goes through an injectable epoch-seconds
    ``clock`` so the filename path is testable (a fake clock yields an
    exact, assertable stamp) instead of being the one line no test
    could pin down.
    """
    from datetime import datetime, timezone

    return datetime.fromtimestamp(clock(), timezone.utc).strftime(
        "%Y-%m-%dT%H%M%SZ"
    )


def default_report_path(
    directory: str | Path = ".", clock: Callable[[], float] = time.time
) -> Path:
    """Where a fresh report lands: ``<directory>/BENCH_<stamp>.json``."""
    return Path(directory) / f"BENCH_{default_stamp(clock)}.json"


def machine_fingerprint() -> dict[str, Any]:
    """Where a report was measured (for apples-to-apples comparisons)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def git_sha() -> str:
    """The current commit, or ``"unknown"`` outside a usable checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


# ---------------------------------------------------------------------- #
# case construction
# ---------------------------------------------------------------------- #


def _model(n: int, measure: str = _BENCH_MEASURE) -> CostModel:
    table = load(_BENCH_DATASET, n=n, seed=_BENCH_SEED)
    return CostModel(EncodedTable(table), get_measure(measure))


def _algorithm_cases(sizes: Sequence[int]) -> list[BenchCase]:
    cases: list[BenchCase] = []
    for n in sizes:
        def agg_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            distance = get_distance("d3")
            return lambda: agglomerative_clustering(
                model, _BENCH_K, distance, modified=True
            )

        def forest_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            return lambda: forest_clustering(model, _BENCH_K)

        def kk_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            return lambda: kk_anonymize(model, _BENCH_K)

        def global_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            kk_nodes = kk_anonymize(model, _BENCH_K)
            return lambda: global_one_k_anonymize(model, kk_nodes, _BENCH_K)

        def matcher_setup(n: int = n) -> Callable[[], object]:
            model = _model(n)
            kk_nodes = kk_anonymize(model, _BENCH_K)
            adj = ConsistencyGraph(model.enc, kk_nodes).adjacency_lists()
            return lambda: hopcroft_karp(adj, n)

        cases += [
            BenchCase(f"agglomerative-mod-n{n}", "algorithm", n, agg_setup),
            BenchCase(f"forest-n{n}", "algorithm", n, forest_setup),
            BenchCase(f"kk-n{n}", "algorithm", n, kk_setup),
            BenchCase(f"global-1k-n{n}", "algorithm", n, global_setup),
            BenchCase(f"hopcroft-karp-n{n}", "matching", n, matcher_setup),
        ]
    return cases


def _hotpath_cases(sizes: Sequence[int]) -> list[BenchCase]:
    """Optimized-vs-reference pairs for each hot-path win."""
    n = max(sizes)
    cases: list[BenchCase] = []

    # Pair 1: vectorized Π_E node costs vs the per-node scan.
    def node_fast() -> Callable[[], object]:
        enc = _model(n).enc
        measure = EntropyMeasure()
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [measure.node_costs(att, vc) for att, vc in pairs]

    def node_ref() -> Callable[[], object]:
        enc = _model(n).enc
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [node_costs_reference(att, vc) for att, vc in pairs]

    # Pair 2: vectorized non-uniform entropy entry costs vs nested loops.
    def entry_fast() -> Callable[[], object]:
        enc = _model(n).enc
        measure = NonUniformEntropyMeasure()
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [measure.entry_costs(att, vc) for att, vc in pairs]

    def entry_ref() -> Callable[[], object]:
        enc = _model(n).enc
        pairs = [(att, enc.value_counts[j]) for j, att in enumerate(enc.attrs)]
        return lambda: [entry_costs_reference(att, vc) for att, vc in pairs]

    # Pair 3: Algorithm 2 shrink via leave-one-out join folds vs the
    # per-subset closure scan, on one oversized cluster.
    def _shrink_engine() -> tuple[_Engine, list[int]]:
        model = _model(n)
        engine = _Engine(model, get_distance("d3"), _BENCH_K)
        members = list(range(min(4 * _BENCH_K, n)))
        return engine, members

    def shrink_fast() -> Callable[[], object]:
        engine, members = _shrink_engine()
        return lambda: engine._shrink(list(members))

    def shrink_ref() -> Callable[[], object]:
        engine, members = _shrink_engine()
        return lambda: engine._shrink_scan(list(members))

    # Pair 4: memoized closure lookups vs a cold cache every call.
    def _closure_batches(enc: EncodedTable) -> list[list[int]]:
        return [
            list(range(start, start + _BENCH_K))
            for start in range(0, enc.num_records - _BENCH_K, 3)
        ]

    def closure_fast() -> Callable[[], object]:
        enc = _model(n).enc
        batches = _closure_batches(enc)
        return lambda: [enc.closure_of_records(b) for b in batches]

    def closure_ref() -> Callable[[], object]:
        enc = _model(n).enc
        batches = _closure_batches(enc)

        def run() -> object:
            enc._closure_cache.clear()
            out = []
            for b in batches:
                enc._closure_cache.clear()
                out.append(enc.closure_of_records(b))
            return out

        return run

    for pair, fast, ref in (
        ("entropy-node-costs", node_fast, node_ref),
        ("entropy-entry-costs", entry_fast, entry_ref),
        ("agglomerative-shrink", shrink_fast, shrink_ref),
        ("closure-memo", closure_fast, closure_ref),
    ):
        cases.append(
            BenchCase(f"{pair}-opt-n{n}", "hotpath", n, fast, pair, "optimized")
        )
        cases.append(
            BenchCase(f"{pair}-ref-n{n}", "hotpath", n, ref, pair, "baseline")
        )
    return cases


_SCAN_CLUSTER = 5
#: LM is monotone, so the scan pair exercises the certified pruning path.
_SCAN_MEASURE = "lm"


def _clustered_engine(n: int, columnar: bool) -> tuple[_Engine, list[int]]:
    """An engine frozen mid-run plus the probe slots to rescan.

    Blocks of ``_SCAN_CLUSTER`` consecutive records are merged, which
    collapses the surviving clusters onto few generalization-lattice
    nodes — the steady-state regime the columnar bucketing exploits
    (singleton *init* is a different, already-benchmarked story).  Both
    backends receive identical slot state, so the pair times nothing
    but the candidate scan itself.
    """
    from repro.core.columnar import _ColumnarEngine

    model = _model(n, _SCAN_MEASURE)
    cls: type[_Engine] = _ColumnarEngine if columnar else _Engine
    engine = cls.__new__(cls)
    engine._init_slots(model, get_distance("d3"), _SCAN_CLUSTER + 1)
    enc = model.enc
    for start in range(0, n, _SCAN_CLUSTER):
        group = list(range(start, min(start + _SCAN_CLUSTER, n)))
        slot = group[0]
        engine.nodes[slot] = enc.closure_of_records(group)
        engine.sizes[slot] = len(group)
        engine.costs[slot] = float(model.record_cost(engine.nodes[slot]))
        engine.members[slot] = group
        for other in group[1:]:
            engine.active[other] = False
            engine.members[other] = None
    if columnar:
        engine._adopt_state()
        scan = engine._scan_row_refresh
        group_of = lambda slot: int(engine.bucket_of[slot])  # noqa: E731
    else:
        # The reference engine's refresh maintains its dense matrix, so
        # the matrix must exist; zeros suffice — the timed writes do not
        # depend on prior contents, and row minima are warmed below.
        engine.matrix = np.zeros((n, n), dtype=np.float64)
        scan = engine._distances_from
        keys: dict[bytes, int] = {}
        group_of = lambda slot: keys.setdefault(  # noqa: E731
            engine.nodes[slot].tobytes()
            + engine.sizes[slot].tobytes()
            + engine.costs[slot].tobytes(),
            len(keys),
        )
    _warm_row_minima(engine, scan, group_of)
    acts = np.flatnonzero(engine.active)
    # Enough probes that each timed leg runs tens of milliseconds:
    # short legs make the pair ratio hostage to scheduler spikes.
    probes = [int(p) for p in acts[:: max(1, acts.size // 200)]]
    return engine, probes


def _warm_row_minima(
    engine: _Engine,
    scan: Callable[[int], np.ndarray],
    group_of: Callable[[int], int],
) -> None:
    """Exact ``row_min`` for a prepared engine, cheaply.

    Slots with identical node/size/cost state see identical candidate
    distances, so one scan per *distinct* state warms every member's
    cached minimum — the value feeding the pruning push bound — at O(B)
    scans instead of O(n).  Pruned buckets report a lower bound
    strictly above the running best, so ``min``/``argmin`` stay exact
    during warm-up.
    """
    acts = np.flatnonzero(engine.active)
    groups: dict[int, list[int]] = {}
    for slot in acts:
        groups.setdefault(group_of(int(slot)), []).append(int(slot))
    for members in groups.values():
        dist = scan(members[0])
        best = float(dist.min())
        arg = int(dist.argmin())
        for slot in members:
            engine.row_min[slot] = best
            engine.row_arg[slot] = arg


def _scan_cases(quick: bool) -> list[BenchCase]:
    """The columnar-vs-python candidate-scan pair plus the scale grid."""
    n = SCAN_QUICK_N if quick else SCAN_FULL_N
    # The pair name carries n so the enforced speedup floor binds the
    # full-size pair only; the quick pair still trips the generic
    # "optimized slower than baseline" check.
    pair = f"agglomerative-candidate-scan-n{n}"

    def scan_fast(n: int = n) -> Callable[[], object]:
        engine, probes = _clustered_engine(n, columnar=True)
        return lambda: [engine._refresh_row(p) for p in probes]

    def scan_ref(n: int = n) -> Callable[[], object]:
        engine, probes = _clustered_engine(n, columnar=False)
        return lambda: [engine._refresh_row(p) for p in probes]

    cases = [
        BenchCase(f"{pair}-opt", "hotpath", n, scan_fast, pair, "optimized"),
        BenchCase(f"{pair}-ref", "hotpath", n, scan_ref, pair, "baseline"),
    ]
    if not quick:
        for sn in SCALE_SIZES:

            def scale_setup(sn: int = sn) -> Callable[[], object]:
                engine, probes = _clustered_engine(sn, columnar=True)
                return lambda: [engine._refresh_row(p) for p in probes]

            cases.append(
                BenchCase(f"columnar-scan-n{sn}", "scale", sn, scale_setup)
            )
    return cases


def default_cases(quick: bool = False) -> list[BenchCase]:
    """The pinned case set (``--quick`` shrinks the n-grid)."""
    from repro.perf.serve_bench import serve_cases  # avoid import cycle

    sizes = QUICK_SIZES if quick else FULL_SIZES
    return (
        _algorithm_cases(sizes)
        + _hotpath_cases(sizes)
        + _scan_cases(quick)
        + serve_cases(quick)
    )


# ---------------------------------------------------------------------- #
# running
# ---------------------------------------------------------------------- #


def _time_case(case: BenchCase, repeat: int) -> dict[str, Any]:
    fn = case.setup()
    fn()  # warmup: fills caches / JIT-ish lazy imports outside the timing
    seconds: list[float] = []
    last: object = None
    with span("perf.bench.case", case=case.name):
        for _ in range(repeat):
            with Timer() as timer:
                last = fn()
            seconds.append(timer.seconds)
    entry = {
        "name": case.name,
        "group": case.group,
        "n": case.n,
        "pair": case.pair,
        "role": case.role,
        "seconds": seconds,
        "min": min(seconds),
        "median": statistics.median(seconds),
        "mean": statistics.fmean(seconds),
        "max": max(seconds),
    }
    # A timed closure may return {"__bench_extra__": {...}} to fold
    # case-specific stats (e.g. the serve group's throughput and latency
    # quantiles) into its report entry alongside the repeat timings.
    if isinstance(last, dict) and isinstance(last.get("__bench_extra__"), dict):
        entry.update(last["__bench_extra__"])
    return entry


def run_bench(
    cases: Sequence[BenchCase] | None = None,
    quick: bool = False,
    repeat: int | None = None,
    stamp: str = "",
    name_filter: str = "",
    on_case: Callable[[dict[str, Any]], None] | None = None,
    collect_metrics: bool = False,
    clock: Callable[[], float] = time.time,
) -> BenchReport:
    """Run the suite and return the report (not yet written to disk).

    With ``collect_metrics=True`` a fresh
    :class:`~repro.obs.MetricsRegistry` is scoped around the whole
    suite and its snapshot embedded in the report (``metrics`` key) —
    work-unit counters give regression hunts a second axis besides raw
    timings.  ``stamp`` defaults to :func:`default_stamp` on ``clock``.
    """
    if cases is None:
        cases = default_cases(quick=quick)
    if name_filter:
        cases = [c for c in cases if name_filter in c.name]
    if not cases:
        raise ReproError(
            f"no benchmark cases match filter {name_filter!r}"
        )
    if repeat is None:
        repeat = QUICK_REPEAT if quick else FULL_REPEAT
    if repeat < 1:
        raise ReproError(f"repeat must be positive, got {repeat}")
    report = BenchReport(
        stamp=stamp or default_stamp(clock),
        quick=quick,
        repeat=repeat,
        machine=machine_fingerprint(),
        git_sha=git_sha(),
    )
    registry = MetricsRegistry() if collect_metrics else NullRegistry()
    with metrics_scope(registry):
        for case in cases:
            entry = _time_case(case, repeat)
            report.cases.append(entry)
            if on_case is not None:
                on_case(entry)
    if collect_metrics:
        report.metrics = registry.snapshot()
    _attach_pairs(report)
    return report


def _attach_pairs(report: BenchReport) -> None:
    """Derive speedup entries from optimized/baseline case pairs."""
    by_pair: dict[str, dict[str, dict[str, Any]]] = {}
    for entry in report.cases:
        if entry["pair"]:
            by_pair.setdefault(entry["pair"], {})[entry["role"]] = entry
    for pair_name in sorted(by_pair):
        roles = by_pair[pair_name]
        if "optimized" not in roles or "baseline" not in roles:
            continue
        opt, base = roles["optimized"], roles["baseline"]
        speedup = (
            base["median"] / opt["median"] if opt["median"] > 0 else float("inf")
        )
        report.pairs.append(
            {
                "name": pair_name,
                "optimized_case": opt["name"],
                "baseline_case": base["name"],
                "speedup": speedup,
            }
        )
