"""The ``serve`` bench group: service throughput and latency quantiles.

Two cases per table size, both driving the deterministic
:func:`repro.serve.protocol.request_mix` through
:meth:`~repro.serve.service.AnonymizationService.handle` in-process
(no sockets — the transport is benchmarked code, the HTTP framing is
not):

* ``serve-cold-n<N>`` — a fresh service per run, so every request pays
  the full admission → fallback-chain → cache-store path.
* ``serve-warm-n<N>`` — one pre-warmed service, so every request is a
  cache hit: this is the steady-state overhead of the serving layer
  itself.

Beyond the standard repeat timings, each case entry carries a
``serve`` block — requests driven, throughput (requests/second) and
p50/p99 per-request latency in milliseconds — folded into the
``BENCH_*.json`` case schema via the timed closure's
``__bench_extra__`` return contract (see
:func:`repro.perf.bench._time_case`).
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

from repro.perf.bench import BenchCase
from repro.runtime import Timer
from repro.runtime.retry import RetryPolicy
from repro.serve.protocol import AnonymizeRequest, request_mix
from repro.serve.service import AnonymizationService, ServiceConfig

#: Requests per timed run, per bench mode.
QUICK_REQUESTS = 8
FULL_REQUESTS = 16

_MIX_SEED = 0


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def _bench_config() -> ServiceConfig:
    return ServiceConfig(
        max_inflight=2,
        max_queue=64,
        default_timeout=120.0,
        retry=RetryPolicy(attempts=2, base_delay=0.0, seed=0),
    )


def _drive(
    service: AnonymizationService,
    mix: list[AnonymizeRequest],
    clock: Callable[[], float] = time.monotonic,
) -> dict[str, Any]:
    """Serve the mix sequentially; return the ``__bench_extra__`` stats."""
    latencies: list[float] = []
    shed = 0
    with Timer(clock=clock) as wall:
        for request in mix:
            with Timer(clock=clock) as per_request:
                envelope = service.handle(request.to_json())
            if envelope["status"] == "ok":
                latencies.append(per_request.seconds)
            else:
                shed += 1
    total = wall.seconds
    return {
        "__bench_extra__": {
            "serve": {
                "requests": len(mix),
                "shed": shed,
                "throughput_rps": len(mix) / total if total > 0 else 0.0,
                "latency_p50_ms": percentile(latencies, 50.0) * 1000.0,
                "latency_p99_ms": percentile(latencies, 99.0) * 1000.0,
            }
        }
    }


def serve_cases(quick: bool = False) -> list[BenchCase]:
    """The ``serve`` group's cases for one bench mode."""
    requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    n = 40 if quick else 60
    mix = [
        AnonymizeRequest(
            k=base.k,
            dataset=base.dataset,
            n=n,
            seed=base.seed,
            notion=base.notion,
            measure=base.measure,
        )
        for base in request_mix(_MIX_SEED, requests)
    ]

    def cold_setup() -> Callable[[], object]:
        # A new service per run: every request recomputes.
        return lambda: _drive(
            AnonymizationService(_bench_config()), mix
        )

    def warm_setup() -> Callable[[], object]:
        service = AnonymizationService(_bench_config())
        _drive(service, mix)  # pre-warm: fill the result cache
        return lambda: _drive(service, mix)

    return [
        BenchCase(f"serve-cold-n{n}", "serve", n, cold_setup),
        BenchCase(f"serve-warm-n{n}", "serve", n, warm_setup),
    ]
