"""Serial ↔ parallel equivalence checks for the experiment runner.

The parallel executor must be *observationally identical* to the serial
path: same costs, same extra diagnostics, same journal entries in the
same order.  The only legitimate differences are the measured
``seconds`` of each cell (worker wall-clock vs parent wall-clock) and
any per-cell ``metrics`` snapshot (a worker's cold caches do different
amounts of work than the serial runner's warm ones), so every
comparison here canonicalizes outcomes by zeroing ``seconds`` and
stripping ``metrics``, then requires **byte identity** of the
canonical JSON serialization.

Findings are reported as :class:`repro.verify.invariants.Violation`
objects — the same vocabulary the differential-verification harness
uses — so perf equivalence failures render and aggregate exactly like
any other broken invariant (``repro.verify`` sits below this layer and
cannot import the runner, which is why the check lives here).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Sequence

from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.perf.parallel import run_parallel
from repro.perf.plan import plan_cells
from repro.runtime import Journal
from repro.verify.invariants import Violation


def _canonical_outcome(outcome_json: dict) -> dict:
    """Outcome JSON with the machine-dependent fields dropped.

    ``seconds`` is zeroed (worker vs parent wall-clock), and any
    ``metrics`` snapshot is stripped: cell metrics are *execution*
    deltas, and a worker's cold caches legitimately record different
    hit/miss splits than the serial runner's warm ones.  Results —
    costs and extra diagnostics — must still match byte-for-byte.
    """
    canonical = dict(outcome_json)
    canonical["seconds"] = 0.0
    canonical.pop("metrics", None)
    return canonical


def canonical_journal_entries(journal: Journal) -> list[str]:
    """The journal's entries as canonical JSON lines (timings zeroed).

    Two runs are journal-equivalent iff these line lists are equal as
    byte strings — same cells, same order, same outcomes.
    """
    return [
        json.dumps(
            [key_json, _canonical_outcome(value_json)], sort_keys=True
        )
        for key_json, value_json in journal.entries()
    ]


def check_parallel_equivalence(
    config: ExperimentConfig | None = None,
    keys: Sequence[RunKey] | None = None,
    workers: int = 2,
    work_dir: str | Path | None = None,
) -> list[Violation]:
    """Run ``keys`` serially and in parallel; report every divergence.

    Both runs journal to fresh files under ``work_dir`` (a temporary
    directory by default), then memo contents and canonical journal
    lines are compared byte-for-byte.  An empty return means the
    parallel path is equivalent on this grid.
    """
    config = config or ExperimentConfig()
    if keys is None:
        keys = plan_cells(config)
    keys = list(keys)
    violations: list[Violation] = []

    with tempfile.TemporaryDirectory(dir=work_dir) as tmp:
        serial_journal = Journal(Path(tmp) / "serial.jsonl")
        parallel_journal = Journal(Path(tmp) / "parallel.jsonl")

        serial = ExperimentRunner(config, journal=serial_journal)
        for key in keys:
            serial.run_key(key)

        parallel = ExperimentRunner(config, journal=parallel_journal)
        run_parallel(parallel, keys, workers=workers)

        for key in keys:
            if not parallel.has(key):
                violations.append(
                    Violation(
                        "perf.parallel.missing-cell",
                        f"parallel run never produced {key}",
                    )
                )
                continue
            s_out = json.dumps(
                _canonical_outcome(serial._runs[key].to_json()), sort_keys=True
            )
            p_out = json.dumps(
                _canonical_outcome(parallel._runs[key].to_json()),
                sort_keys=True,
            )
            if s_out != p_out:
                violations.append(
                    Violation(
                        "perf.parallel.outcome",
                        f"{key}: serial {s_out} != parallel {p_out}",
                    )
                )

        serial_lines = canonical_journal_entries(serial_journal)
        parallel_lines = canonical_journal_entries(parallel_journal)
        if serial_lines != parallel_lines:
            detail = _first_journal_divergence(serial_lines, parallel_lines)
            violations.append(
                Violation("perf.parallel.journal", detail)
            )
    return violations


def _first_journal_divergence(
    serial_lines: list[str], parallel_lines: list[str]
) -> str:
    if len(serial_lines) != len(parallel_lines):
        return (
            f"journal length differs: serial {len(serial_lines)} lines, "
            f"parallel {len(parallel_lines)} lines"
        )
    for index, (s, p) in enumerate(zip(serial_lines, parallel_lines)):
        if s != p:
            return f"journal line {index} differs: serial {s} != parallel {p}"
    return "journals differ"


def check_backend_equivalence(
    config: ExperimentConfig | None = None,
    keys: Sequence[RunKey] | None = None,
    backends: Sequence[str] = ("python", "columnar"),
    work_dir: str | Path | None = None,
) -> list[Violation]:
    """Run ``keys`` under every backend; report every divergence.

    Because :class:`RunKey` (and hence the journal identity) carries no
    backend — backends are bit-equivalent by contract — the strongest
    possible statement is that runs differing *only* in
    ``config.backend`` produce byte-identical canonical journals: same
    cells, same order, same costs, same extra diagnostics, same
    tie-breaking wherever a tie influences a recorded number.  That is
    exactly what this check demands, per-cell first (for pinpointed
    findings) and then on the full journal.

    When a requested backend resolves to another (columnar without
    NumPy), the comparison degenerates to reference-vs-reference and
    passes vacuously — graceful degradation is not a finding.

    An empty return means the backends are equivalent on this grid.
    """
    from dataclasses import replace

    config = config or ExperimentConfig()
    if keys is None:
        keys = plan_cells(config)
    keys = list(keys)
    backends = list(backends)
    reference = backends[0]
    violations: list[Violation] = []

    with tempfile.TemporaryDirectory(dir=work_dir) as tmp:
        runs: dict[str, ExperimentRunner] = {}
        journals: dict[str, Journal] = {}
        for backend in backends:
            journal = Journal(Path(tmp) / f"{backend}.jsonl")
            runner = ExperimentRunner(
                replace(config, backend=backend), journal=journal
            )
            for key in keys:
                runner.run_key(key)
            runs[backend] = runner
            journals[backend] = journal

        ref_runner = runs[reference]
        for backend in backends[1:]:
            other = runs[backend]
            for key in keys:
                if not other.has(key):
                    violations.append(
                        Violation(
                            "perf.backend.missing-cell",
                            f"{backend} run never produced {key}",
                        )
                    )
                    continue
                r_out = json.dumps(
                    _canonical_outcome(ref_runner._runs[key].to_json()),
                    sort_keys=True,
                )
                b_out = json.dumps(
                    _canonical_outcome(other._runs[key].to_json()),
                    sort_keys=True,
                )
                if r_out != b_out:
                    violations.append(
                        Violation(
                            "perf.backend.outcome",
                            f"{key}: {reference} {r_out} != "
                            f"{backend} {b_out}",
                        )
                    )
            ref_lines = canonical_journal_entries(journals[reference])
            other_lines = canonical_journal_entries(journals[backend])
            if ref_lines != other_lines:
                detail = _first_journal_divergence(ref_lines, other_lines)
                violations.append(
                    Violation(
                        "perf.backend.journal",
                        f"{reference} vs {backend}: {detail}",
                    )
                )
    return violations
