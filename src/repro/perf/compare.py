"""Regression comparison of bench reports against a committed baseline.

Two classes of check, with different trust levels:

* **case timings** are machine-dependent — a CI runner is not the
  laptop that produced the baseline — so a slowdown beyond the
  threshold is reported as a *warning* by default and only fails the
  run under ``enforce``.
* **pair speedups** (optimized vs reference implementation, measured in
  the same process) are ratios and therefore portable: an optimization
  that stops being faster than its kept reference is a real regression
  wherever it is measured, and additionally each pair may carry a
  floor (``MIN_PAIR_SPEEDUPS``) the optimization must keep clearing.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.perf.bench import BENCH_SCHEMA, BENCH_SCHEMA_V1, BenchReport

#: Schemas the comparator accepts: current plus the pre-metrics v1
#: layout (committed baselines are never rewritten retroactively).
ACCEPTED_SCHEMAS = (BENCH_SCHEMA, BENCH_SCHEMA_V1)

#: Default relative slowdown tolerated before a case/pair is flagged.
DEFAULT_THRESHOLD = 0.5

#: Machine-independent floors: each optimization must stay at least
#: this much faster than its kept reference implementation.
MIN_PAIR_SPEEDUPS: dict[str, float] = {
    "entropy-entry-costs": 1.5,
    # The columnar bucketed scan vs the reference dense-matrix refresh
    # at the full bench size (measured ≈7× on the reference machine;
    # the floor leaves headroom for slower CI hosts).
    "agglomerative-candidate-scan-n10000": 5.0,
}

_BASELINE_PATTERN = re.compile(r"^BENCH_[0-9A-Za-z._-]+\.json$")


@dataclass(frozen=True)
class ComparisonFinding:
    """One comparator observation."""

    kind: str  #: "case", "pair" or "schema"
    name: str
    detail: str
    regression: bool  #: True = fails in enforce mode

    def __str__(self) -> str:
        tag = "REGRESSION" if self.regression else "warn"
        return f"[{tag}] {self.kind} {self.name}: {self.detail}"


def load_report(path: str | Path) -> BenchReport:
    """Load and schema-check one ``BENCH_*.json`` file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}") from exc
    return report_from_json(data, source=str(path))


def report_from_json(data: Any, source: str = "<memory>") -> BenchReport:
    """Validate a JSON payload against :data:`ACCEPTED_SCHEMAS`.

    v1 reports simply have no ``metrics`` key; every field the
    comparator reads is identical across the two versions.
    """
    if not isinstance(data, dict):
        raise ReproError(f"bench report {source} is not a JSON object")
    schema = data.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise ReproError(
            f"bench report {source} has schema {schema!r}, expected one of "
            f"{list(ACCEPTED_SCHEMAS)!r}"
        )
    for field_name in ("stamp", "repeat", "machine", "git_sha", "cases", "pairs"):
        if field_name not in data:
            raise ReproError(
                f"bench report {source} is missing field {field_name!r}"
            )
    cases = data["cases"]
    pairs = data["pairs"]
    if not isinstance(cases, list) or not isinstance(pairs, list):
        raise ReproError(f"bench report {source}: cases/pairs must be lists")
    for entry in cases:
        for key in ("name", "group", "seconds", "median"):
            if key not in entry:
                raise ReproError(
                    f"bench report {source}: case entry missing {key!r}"
                )
    for entry in pairs:
        for key in ("name", "speedup"):
            if key not in entry:
                raise ReproError(
                    f"bench report {source}: pair entry missing {key!r}"
                )
    return BenchReport(
        stamp=str(data["stamp"]),
        quick=bool(data.get("quick", False)),
        repeat=int(data["repeat"]),
        machine=dict(data["machine"]),
        git_sha=str(data["git_sha"]),
        cases=list(cases),
        pairs=list(pairs),
        metrics=data.get("metrics"),
    )


def find_baseline(root: str | Path = ".") -> Path | None:
    """The newest committed ``BENCH_<stamp>.json`` under ``root``.

    Stamps sort lexicographically (ISO dates), so the maximum filename
    is the latest baseline; ``None`` when no baseline exists yet.
    """
    root = Path(root)
    candidates = [
        p for p in root.glob("BENCH_*.json") if _BASELINE_PATTERN.match(p.name)
    ]
    return max(candidates, key=lambda p: p.name) if candidates else None


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[ComparisonFinding]:
    """All findings of ``current`` measured against ``baseline``.

    Case medians are compared name-by-name (cases present in only one
    report are noted, never failed — grids legitimately change);
    pair speedups are compared against both the baseline's pair and the
    static :data:`MIN_PAIR_SPEEDUPS` floors.
    """
    if threshold <= 0:
        raise ReproError(f"threshold must be positive, got {threshold}")
    findings: list[ComparisonFinding] = []

    base_cases = {entry["name"]: entry for entry in baseline.cases}
    for entry in current.cases:
        base = base_cases.get(entry["name"])
        if base is None:
            findings.append(
                ComparisonFinding(
                    "case", entry["name"], "not in baseline (new case)", False
                )
            )
            continue
        if base["median"] <= 0:
            continue
        rel = entry["median"] / base["median"] - 1.0
        if rel > threshold:
            findings.append(
                ComparisonFinding(
                    "case",
                    entry["name"],
                    f"median {entry['median']:.4f}s is {rel:+.0%} vs baseline "
                    f"{base['median']:.4f}s (threshold {threshold:.0%}; "
                    "machine-dependent)",
                    False,
                )
            )

    base_pairs = {entry["name"]: entry for entry in baseline.pairs}
    for entry in current.pairs:
        speedup = float(entry["speedup"])
        floor = MIN_PAIR_SPEEDUPS.get(entry["name"])
        if speedup < 1.0:
            findings.append(
                ComparisonFinding(
                    "pair",
                    entry["name"],
                    f"optimized path is slower than its reference "
                    f"(speedup {speedup:.2f}x < 1.0x)",
                    True,
                )
            )
        elif floor is not None and speedup < floor:
            findings.append(
                ComparisonFinding(
                    "pair",
                    entry["name"],
                    f"speedup {speedup:.2f}x fell below the required "
                    f"{floor:.1f}x floor",
                    True,
                )
            )
        base = base_pairs.get(entry["name"])
        if base is not None and float(base["speedup"]) > 0:
            rel = speedup / float(base["speedup"]) - 1.0
            if rel < -threshold:
                findings.append(
                    ComparisonFinding(
                        "pair",
                        entry["name"],
                        f"speedup {speedup:.2f}x is {rel:+.0%} vs baseline "
                        f"{float(base['speedup']):.2f}x",
                        True,
                    )
                )
    return findings


def has_regressions(findings: list[ComparisonFinding]) -> bool:
    """Whether any finding fails in enforce mode."""
    return any(f.regression for f in findings)
