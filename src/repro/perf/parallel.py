"""Process-pool execution of experiment cell plans.

The grid cells of Section VI are embarrassingly parallel: each
:class:`~repro.experiments.runner.RunKey` depends only on (dataset,
measure) caches every worker can rebuild from the
:class:`~repro.experiments.configs.ExperimentConfig`.  :func:`run_parallel`
fans a plan's *pending* cells over a ``ProcessPoolExecutor`` and merges
the outcomes back into the coordinating runner **in submission order**,
so the memo contents, counters and journal are deterministic — a
parallel run's journal lists cells in exactly the order a serial run
would have computed them (timings differ, nothing else; see
:mod:`repro.perf.equivalence`).

Composition with :mod:`repro.runtime`:

* **journal/resume** — only the parent appends to the journal (one
  writer, via the runner's lock); cells already resumed from a journal
  are never submitted, so a killed parallel grid resumes with zero
  recomputation, exactly like serial.
* **deadlines/cancellation** — the collection loop polls each future
  with a short timeout and calls :func:`~repro.runtime.checkpoint`
  between polls, so an active :class:`~repro.runtime.Deadline` or
  :class:`~repro.runtime.CancelToken` interrupts a parallel grid
  promptly; the pool is then torn down without waiting for stragglers.
* **fault injection** — the sites ``perf.parallel.submit`` and
  ``perf.parallel.collect`` let tests crash the coordinator at the two
  interesting places.

Workers are seeded deterministically from ``config.seed`` before
building their runner, so any randomized algorithm behaves identically
in every worker and in the serial path.
"""

from __future__ import annotations

import multiprocessing
import random
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Iterable

from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import ExperimentRunner, RunKey, RunOutcome
from repro.obs import (
    MetricsRegistry,
    active_registries,
    install_registry,
    span,
)
from repro.runtime import checkpoint

#: How long one future poll blocks before re-checking limits (seconds).
POLL_SECONDS = 0.1

#: The worker-global runner, built once per worker by :func:`_worker_init`
#: so dataset encodings and cost models are cached across that worker's
#: cells instead of being rebuilt per cell.
_WORKER_RUNNER: ExperimentRunner | None = None


def _worker_init(
    config: ExperimentConfig, collect_metrics: bool = False
) -> None:
    """Per-process initializer: deterministic seeding + shared caches.

    ``collect_metrics`` makes the worker install a process-global
    :class:`~repro.obs.MetricsRegistry` so each cell records a metrics
    delta that travels back in its :class:`RunOutcome`.  Under the
    ``fork`` start method the worker may already have inherited the
    parent's active registries, in which case nothing needs installing;
    the flag covers ``spawn`` platforms where context is lost.
    """
    global _WORKER_RUNNER
    random.seed(config.seed)
    if collect_metrics and not active_registries():
        install_registry(MetricsRegistry())
    # repro: allow[REP010] per-process worker state by design: the pool initializer installs one runner per worker and only that worker reads it
    _WORKER_RUNNER = ExperimentRunner(config)


def _worker_run(key: RunKey) -> RunOutcome:
    """Compute one cell in the worker's runner."""
    assert _WORKER_RUNNER is not None, "worker used before initialization"
    return _WORKER_RUNNER.run_key(key)


@dataclass(frozen=True)
class ParallelStats:
    """What one :func:`run_parallel` call did."""

    workers: int  #: pool size actually used
    planned: int  #: distinct cells in the plan
    skipped: int  #: cells already memoized (resumed or previously run)
    submitted: int  #: cells sent to the pool
    merged: int  #: outcomes absorbed back into the runner

    def __str__(self) -> str:
        return (
            f"{self.merged}/{self.submitted} cells merged on "
            f"{self.workers} workers ({self.skipped} already done)"
        )


def _mp_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork``: workers inherit loaded modules, so startup is
    milliseconds instead of a fresh interpreter per worker."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_parallel(
    runner: ExperimentRunner,
    keys: Iterable[RunKey],
    workers: int,
) -> ParallelStats:
    """Prefetch ``keys`` into ``runner``'s memo using worker processes.

    Cells already memoized are skipped; the rest are submitted in plan
    order and their outcomes absorbed (memoized + journaled) in the same
    order as each future completes its turn.  With ``workers <= 1`` the
    pending cells are simply computed in-process, in order — the
    degenerate case is the serial path itself.

    Returns a :class:`ParallelStats` summary.  Raises whatever an
    active runtime limit raises (``DeadlineExceeded``, ``RunCancelled``)
    or the first cell exception re-raised from a worker; in both cases
    the pool is shut down without waiting and every already-absorbed
    cell stays memoized and journaled.
    """
    plan = list(dict.fromkeys(keys))
    pending = [key for key in plan if not runner.has(key)]
    skipped = len(plan) - len(pending)
    if workers <= 1 or not pending:
        for key in pending:
            runner.run_key(key)
        return ParallelStats(
            workers=1,
            planned=len(plan),
            skipped=skipped,
            submitted=len(pending),
            merged=len(pending),
        )

    workers = min(workers, len(pending))
    merged = 0
    pool = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=_worker_init,
        initargs=(runner.config, bool(active_registries())),
    )
    try:
        with span("perf.parallel.grid", submitted=len(pending)):
            checkpoint("perf.parallel.submit")
            futures = [
                (key, pool.submit(_worker_run, key)) for key in pending
            ]
            for key, future in futures:
                while True:
                    checkpoint("perf.parallel.collect")
                    try:
                        outcome = future.result(timeout=POLL_SECONDS)
                    except FutureTimeoutError:
                        continue
                    break
                runner.absorb(key, outcome)
                merged += 1
    except BaseException:
        # Deadline / cancellation / worker failure: drop stragglers.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return ParallelStats(
        workers=workers,
        planned=len(plan),
        skipped=skipped,
        submitted=len(pending),
        merged=merged,
    )
