"""Cell plans: the RunKeys an experiment requests, in request order.

The experiment drivers (:mod:`repro.experiments.table1`, ``figures``,
``ablations``) pull memoized cells from the runner one call at a time;
to fan a grid out over worker processes we need the same cell list *up
front*.  Each ``*_cells`` function below mirrors its driver's call order
exactly, so that

* prefetching the plan and then running the driver serially produces a
  journal byte-identical (modulo timings) to a plain serial run, and
* a plan is duplicate-free in first-occurrence order, matching the
  memoization behaviour (only the first request computes and journals).

Planning is best-effort by construction: a cell missing from a plan is
simply computed serially by the driver (the memo misses), and a stale
extra cell just wastes one worker slot — correctness never depends on
the plan being complete.  Experiments whose work does not flow through
the runner memo (``fig1``, ``global1k``, ``scaling``, ``epsilon``) have
empty plans.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.experiments.configs import AGGLOMERATIVE_VARIANTS, ExperimentConfig
from repro.experiments.runner import RunKey

#: Experiment names accepted by :func:`plan_experiment` — the same set
#: the ``repro-anon experiment`` subcommand accepts.
PLANNABLE_EXPERIMENTS = (
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "ablations",
    "global1k",
    "scaling",
    "epsilon",
    "all",
)

#: The distances swept by ablation A1 (paper's four + Nergiz–Clifton).
_A1_DISTANCES = ("d1", "d2", "d3", "d4", "nc")


def _dedupe(keys: list[RunKey]) -> list[RunKey]:
    """Drop duplicate cells, keeping first occurrences in order."""
    return list(dict.fromkeys(keys))


def block_cells(
    config: ExperimentConfig, dataset: str, measure: str
) -> list[RunKey]:
    """Cells of one Table I block, in ``compute_block`` call order."""
    keys: list[RunKey] = []
    for distance, modified in AGGLOMERATIVE_VARIANTS:
        for k in config.ks:
            keys.append(
                RunKey(
                    "agg", dataset, measure, k,
                    distance=distance, modified=modified,
                )
            )
    for k in config.ks:
        keys.append(RunKey("forest", dataset, measure, k))
    for k in config.ks:
        keys.append(
            RunKey(
                "kk", dataset, measure, k,
                expander="expansion", join_with="generalized",
            )
        )
        keys.append(
            RunKey(
                "kk", dataset, measure, k,
                expander="nearest", join_with="generalized",
            )
        )
    return keys


def table1_cells(config: ExperimentConfig) -> list[RunKey]:
    """Cells of the full Table I grid, in ``compute_table1`` order."""
    keys: list[RunKey] = []
    for dataset in config.datasets:
        for measure in config.measures:
            keys.extend(block_cells(config, dataset, measure))
    return keys


def figure_cells(config: ExperimentConfig, figure: str) -> list[RunKey]:
    """Cells of Figure 2 (entropy) or Figure 3 (LM) — one Adult block."""
    if figure == "fig2":
        return block_cells(config, "adult", "entropy")
    if figure == "fig3":
        return block_cells(config, "adult", "lm")
    raise ExperimentError(f"unknown figure {figure!r}; expected fig2 or fig3")


def ablation_cells(config: ExperimentConfig) -> list[RunKey]:
    """Cells of the A1–A4 ablations, in driver call order."""
    keys: list[RunKey] = []
    for dataset in config.datasets:
        for measure in config.measures:
            # A1 distances: basic algorithm, every distance, every k.
            for name in _A1_DISTANCES:
                for k in config.ks:
                    keys.append(
                        RunKey("agg", dataset, measure, k, distance=name)
                    )
            # A2 couplings: the expansion sweep, then the nearest sweep.
            for k in config.ks:
                keys.append(
                    RunKey(
                        "kk", dataset, measure, k,
                        expander="expansion", join_with="generalized",
                    )
                )
            for k in config.ks:
                keys.append(
                    RunKey(
                        "kk", dataset, measure, k,
                        expander="nearest", join_with="generalized",
                    )
                )
            # A3 modified: basic vs modified per distance, per k.
            for distance in ("d1", "d2", "d3", "d4"):
                for modified in (False, True):
                    for k in config.ks:
                        keys.append(
                            RunKey(
                                "agg", dataset, measure, k,
                                distance=distance, modified=modified,
                            )
                        )
            # A4 join target: Algorithm 5 joining R̄_i vs R_i.
            for k in config.ks:
                keys.append(
                    RunKey(
                        "kk", dataset, measure, k,
                        expander="expansion", join_with="generalized",
                    )
                )
            for k in config.ks:
                keys.append(
                    RunKey(
                        "kk", dataset, measure, k,
                        expander="expansion", join_with="original",
                    )
                )
    return keys


def plan_experiment(
    name: str, config: ExperimentConfig | None = None
) -> list[RunKey]:
    """The duplicate-free cell plan of one named experiment.

    Mirrors ``repro.cli._dispatch_experiment``: ``all`` concatenates the
    sub-experiments in report order; experiments that bypass the runner
    memo plan to the empty list.
    """
    config = config or ExperimentConfig()
    if name not in PLANNABLE_EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {name!r}; expected one of "
            f"{', '.join(PLANNABLE_EXPERIMENTS)}"
        )
    keys: list[RunKey] = []
    if name == "table1":
        keys = table1_cells(config)
    elif name in ("fig2", "fig3"):
        keys = figure_cells(config, name)
    elif name == "ablations":
        keys = ablation_cells(config)
    elif name == "all":
        keys = (
            table1_cells(config)
            + figure_cells(config, "fig2")
            + figure_cells(config, "fig3")
            + ablation_cells(config)
        )
    return _dedupe(keys)


def plan_cells(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] | None = None,
    measures: tuple[str, ...] | None = None,
    ks: tuple[int, ...] | None = None,
) -> list[RunKey]:
    """A representative every-kind grid (used by the equivalence checks).

    One cell per runner entry point and option axis: the eight
    agglomerative variants, the forest baseline, all four (k,k)
    expander/join-target combinations and the global-(1,k) conversion,
    for every requested dataset × measure × k.
    """
    config = config or ExperimentConfig()
    datasets = datasets or config.datasets
    measures = measures or config.measures
    ks = ks or config.ks
    keys: list[RunKey] = []
    for dataset in datasets:
        for measure in measures:
            for k in ks:
                for distance, modified in AGGLOMERATIVE_VARIANTS:
                    keys.append(
                        RunKey(
                            "agg", dataset, measure, k,
                            distance=distance, modified=modified,
                        )
                    )
                keys.append(RunKey("forest", dataset, measure, k))
                for expander in ("expansion", "nearest"):
                    for join_with in ("generalized", "original"):
                        keys.append(
                            RunKey(
                                "kk", dataset, measure, k,
                                expander=expander, join_with=join_with,
                            )
                        )
                keys.append(
                    RunKey(
                        "global", dataset, measure, k, expander="expansion"
                    )
                )
    return _dedupe(keys)
