"""Performance subsystem: parallel experiment execution + benchmarks.

Three concerns live here, one module each:

* :mod:`repro.perf.plan` — enumerate the :class:`~repro.experiments.runner.RunKey`
  cells an experiment will request, in the exact order the serial code
  requests them.  A plan is pure data, so it can be fanned out.
* :mod:`repro.perf.parallel` — run a plan's cells on a
  ``ProcessPoolExecutor`` and merge the outcomes back into an
  :class:`~repro.experiments.runner.ExperimentRunner` in deterministic
  (submission) order, composing with the journal/checkpoint/resume
  machinery of :mod:`repro.runtime`.
* :mod:`repro.perf.bench` / :mod:`repro.perf.compare` — the pinned
  benchmark suite behind ``repro-anon bench`` and the regression
  comparator for committed ``BENCH_<stamp>.json`` baselines.

:mod:`repro.perf.equivalence` closes the loop: it asserts that the
parallel path is observationally identical to the serial one, reporting
:class:`~repro.verify.invariants.Violation` objects the verification
harness understands.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    BenchCase,
    BenchReport,
    default_cases,
    default_report_path,
    default_stamp,
    machine_fingerprint,
    run_bench,
)
from repro.perf.compare import (
    ComparisonFinding,
    compare_reports,
    find_baseline,
    load_report,
)
from repro.perf.equivalence import (
    canonical_journal_entries,
    check_backend_equivalence,
    check_parallel_equivalence,
)
from repro.perf.parallel import ParallelStats, run_parallel
from repro.perf.plan import plan_cells, plan_experiment
from repro.perf.serve_bench import percentile, serve_cases

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_V1",
    "BenchCase",
    "BenchReport",
    "ComparisonFinding",
    "ParallelStats",
    "canonical_journal_entries",
    "check_backend_equivalence",
    "check_parallel_equivalence",
    "compare_reports",
    "default_cases",
    "default_report_path",
    "default_stamp",
    "find_baseline",
    "load_report",
    "machine_fingerprint",
    "percentile",
    "plan_cells",
    "plan_experiment",
    "run_bench",
    "run_parallel",
    "serve_cases",
]
