#!/usr/bin/env python3
"""The strict-mypy ratchet runner (see mypy.ini, docs/static-analysis.md).

Runs mypy over ``src/repro`` with the committed config and compares the
normalized error set against ``tools/mypy-baseline.txt``:

* errors **not** in the baseline fail the run — new typing debt is
  rejected at the door;
* baseline lines that no longer occur are reported as stale so the
  baseline only ever shrinks;
* with ``--update-baseline`` the current error set is written back
  (do this only after reviewing every new entry).

Error lines are normalized by stripping the line/column numbers
(``src/repro/x.py:12: error: ...`` -> ``src/repro/x.py: error: ...``)
so that unrelated edits above a tolerated error do not churn the file.

When mypy is not installed the script exits 0 with a notice: local
environments without dev tooling stay usable, while CI (which installs
mypy) enforces the ratchet.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "mypy-baseline.txt"
TARGET = "src/repro"

_LOCATION_RE = re.compile(r"^(?P<path>[^:]+\.py):\d+(?::\d+)?: ")


def normalize(line: str) -> str | None:
    """``path: severity: message`` with positions stripped, or None."""
    match = _LOCATION_RE.match(line.strip())
    if not match:
        return None
    return _LOCATION_RE.sub(match.group("path") + ": ", line.strip(), count=1)


def read_baseline() -> list[str]:
    if not BASELINE.is_file():
        return []
    return [
        line.strip()
        for line in BASELINE.read_text().splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]


def write_baseline(errors: list[str]) -> None:
    header = [
        line
        for line in BASELINE.read_text().splitlines()
        if line.lstrip().startswith("#")
    ]
    body = "\n".join([*header, *sorted(errors)])
    BASELINE.write_text(body + "\n")


def run_mypy() -> tuple[list[str], str] | None:
    """(normalized errors, raw output), or None when mypy is missing."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return None
    proc = subprocess.run(
        [
            sys.executable, "-m", "mypy",
            "--config-file", str(REPO_ROOT / "mypy.ini"),
            TARGET,
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    errors = []
    for line in proc.stdout.splitlines():
        if ": error: " in line:
            normalized = normalize(line)
            if normalized:
                errors.append(normalized)
    return errors, proc.stdout + proc.stderr


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite tools/mypy-baseline.txt with the current error set",
    )
    args = parser.parse_args(argv)

    result = run_mypy()
    if result is None:
        print(
            "check_types: mypy is not installed; skipping the ratchet "
            "(CI runs it — `pip install mypy` to check locally)"
        )
        return 0
    errors, raw = result

    if args.update_baseline:
        write_baseline(errors)
        print(f"check_types: baseline updated with {len(errors)} entr(y/ies)")
        return 0

    baseline = set(read_baseline())
    current = set(errors)
    new = sorted(current - baseline)
    stale = sorted(baseline - current)

    if new:
        print("check_types: NEW mypy errors (not in tools/mypy-baseline.txt):")
        for line in new:
            print(f"  {line}")
        print()
        print(raw.rstrip())
        print(
            "\nFix the errors above, or — only for reviewed, tolerated "
            "debt — run `python tools/check_types.py --update-baseline`."
        )
        return 1
    for line in stale:
        print(
            f"check_types: stale baseline entry no longer occurs: {line}"
        )
    if stale:
        print(
            "check_types: run `python tools/check_types.py "
            "--update-baseline` to shrink the baseline"
        )
    print(
        f"check_types: ok — {len(current)} baselined error(s), "
        f"{len(stale)} stale"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
