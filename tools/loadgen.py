#!/usr/bin/env python3
"""Seeded open-loop load generator for the ``repro.serve`` HTTP service.

Open-loop means the arrival schedule is fixed *before* the run: request
i is launched at its precomputed offset whether or not earlier requests
have finished, so an overloaded server sees mounting concurrency (and
must shed) instead of the generator politely slowing down to match it.
Both the schedule (``Random(seed).expovariate``) and the request mix
(:func:`repro.serve.protocol.request_mix`) are seeded, so two runs
against equivalent servers are comparable request-for-request.

Per request the report records the HTTP status, envelope status, wall
latency, and — for ``ok`` responses — the SHA-256 of the canonical
body, which is the hook crash-recovery drills use to assert
byte-identical answers across a server restart (``tools/serve_smoke.py``).

Usage::

    python tools/loadgen.py http://127.0.0.1:8077 --requests 50 \
        --seed 0 --rate 200 --out /tmp/load.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.serve_bench import percentile  # noqa: E402
from repro.serve.drill import canonical_body  # noqa: E402
from repro.serve.protocol import AnonymizeRequest, request_mix  # noqa: E402

DEFAULT_RATE = 100.0  #: mean arrivals per second for the Poisson schedule


def body_sha256(envelope: dict[str, Any]) -> str:
    """SHA-256 over the canonical (deterministic) body of an envelope."""
    return hashlib.sha256(canonical_body(envelope).encode("utf-8")).hexdigest()


def arrival_schedule(seed: int, count: int, rate: float) -> list[float]:
    """Launch offsets (seconds from start) for an open-loop Poisson run."""
    rng = random.Random(seed)
    offsets: list[float] = []
    at = 0.0
    for _ in range(count):
        at += rng.expovariate(rate)
        offsets.append(at)
    return offsets


def post_request(
    base_url: str, request: AnonymizeRequest, timeout: float = 60.0
) -> tuple[int, dict[str, Any]]:
    """POST one request; return ``(http_status, envelope)``.

    Non-2xx responses still carry a JSON envelope (shed/error), so
    HTTPError bodies are parsed rather than raised.
    """
    data = json.dumps(request.to_json()).encode("utf-8")
    req = urllib.request.Request(
        base_url.rstrip("/") + "/anonymize",
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        payload = err.read().decode("utf-8")
        try:
            return err.code, json.loads(payload)
        except json.JSONDecodeError:
            return err.code, {"status": "error", "raw": payload}


def run_load(
    base_url: str,
    requests: int = 50,
    seed: int = 0,
    rate: float = DEFAULT_RATE,
    timeout: float = 60.0,
) -> dict[str, Any]:
    """Drive the seeded mix open-loop; return the run report."""
    mix = request_mix(seed, requests)
    offsets = arrival_schedule(seed, requests, rate)
    records: list[dict[str, Any] | None] = [None] * requests
    lock = threading.Lock()

    def fire(index: int, request: AnonymizeRequest) -> None:
        begun = time.monotonic()
        try:
            status, envelope = post_request(base_url, request, timeout=timeout)
        except (OSError, urllib.error.URLError) as err:
            record: dict[str, Any] = {
                "index": index,
                "request": request.to_json(),
                "http_status": 0,
                "status": "transport_error",
                "latency_seconds": time.monotonic() - begun,
                "detail": str(err),
            }
        else:
            record = {
                "index": index,
                "request": request.to_json(),
                "http_status": status,
                "status": envelope.get("status", "error"),
                "latency_seconds": time.monotonic() - begun,
            }
            if envelope.get("status") == "ok":
                record["body_sha256"] = body_sha256(envelope)
                record["cache_hit"] = envelope["meta"].get("cache_hit")
            elif envelope.get("status") == "shed":
                record["shed_reason"] = envelope["shed"]["reason"]
        with lock:
            records[index] = record

    threads: list[threading.Thread] = []
    start = time.monotonic()
    for index, (offset, request) in enumerate(zip(offsets, mix)):
        delay = offset - (time.monotonic() - start)
        if delay > 0:
            time.sleep(delay)
        worker = threading.Thread(target=fire, args=(index, request))
        worker.start()
        threads.append(worker)
    for worker in threads:
        worker.join()
    elapsed = time.monotonic() - start

    done = [r for r in records if r is not None]
    ok = [r for r in done if r["status"] == "ok"]
    latencies = [r["latency_seconds"] for r in ok]
    summary = {
        "requests": requests,
        "seed": seed,
        "rate": rate,
        "elapsed_seconds": elapsed,
        "ok": len(ok),
        "shed": sum(1 for r in done if r["status"] == "shed"),
        "errors": sum(
            1 for r in done if r["status"] not in ("ok", "shed")
        ),
        "throughput_rps": len(ok) / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": percentile(latencies, 50.0) * 1000.0,
        "latency_p99_ms": percentile(latencies, 99.0) * 1000.0,
    }
    return {"summary": summary, "records": done}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8077")
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--rate", type=float, default=DEFAULT_RATE,
        help="mean arrivals/second of the open-loop schedule",
    )
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--out", default="", help="write the full report JSON here")
    args = parser.parse_args(argv)

    report = run_load(
        args.url,
        requests=args.requests,
        seed=args.seed,
        rate=args.rate,
        timeout=args.timeout,
    )
    summary = report["summary"]
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    print(
        "loadgen: {ok}/{requests} ok, {shed} shed, {errors} errors; "
        "{throughput_rps:.1f} rps, p50 {latency_p50_ms:.1f} ms, "
        "p99 {latency_p99_ms:.1f} ms".format(**summary)
    )
    return 0 if summary["errors"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
