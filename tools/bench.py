#!/usr/bin/env python3
"""Pinned benchmark suite entry point (CI job; see docs/performance.md).

A thin shim over ``repro-anon bench`` so CI and developers share one
invocation that works without installing the package::

    python tools/bench.py --quick            # <60s smoke tier
    python tools/bench.py                    # full suite, writes BENCH_*.json
    python tools/bench.py --quick --enforce  # fail on regressions

All flags are forwarded verbatim to the ``bench`` subcommand of
:mod:`repro.cli`; run with ``--help`` for the full list.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
