#!/usr/bin/env python3
"""Fault-injection smoke drill (CI job; see docs/robustness.md).

Three end-to-end resilience drills, each built on deterministic fault
injection (:mod:`repro.runtime.faults`) so a CI failure replays exactly
on a laptop:

1. **kill + resume** — run a small experiment grid with an injected
   fault that kills the process-equivalent mid-grid, then resume from
   the journal and prove (a) the grid completes and (b) a final resume
   recomputes **zero** finished cells;
2. **fallback degradation** — fault the preferred rung of the default
   chain and prove a later rung still serves a *verified*
   k-anonymization, with the report naming the failure;
3. **registry drills** — :func:`repro.verify.fault_resilience_check`
   over a few seeds: every registered algorithm must abort through
   typed errors with its inputs unmutated.

Exits non-zero on the first broken drill.  Wall clock is a few seconds.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.errors import InjectedFault
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.runtime import FaultPlan, Journal, fault_scope
from repro.runtime.fallback import run_with_fallback
from repro.verify import fault_resilience_check
from repro.verify.generators import random_instance

#: Small-but-real grid: 3 ks x 2 algorithms on one dataset.
GRID = ExperimentConfig(sizes={"art": 80, "adult": 80, "cmc": 80})
KS = (2, 5, 10)
KILL_AFTER = 3  #: cells allowed to finish before the injected kill


def run_grid(runner: ExperimentRunner) -> None:
    for k in KS:
        runner.agglomerative("art", "entropy", k, "d3")
        runner.forest("art", "entropy", k)


def drill_kill_and_resume() -> str:
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(Path(tmp) / "grid.jsonl")

        runner = ExperimentRunner(GRID, journal=journal)
        plan = FaultPlan().inject("experiments.cell", after=KILL_AFTER, times=None)
        killed = False
        with fault_scope(plan):
            try:
                run_grid(runner)
            except InjectedFault:
                killed = True
        assert killed, "the injected kill never fired"
        assert runner.computed_cells == KILL_AFTER, runner.computed_cells

        resumed = ExperimentRunner(GRID, journal=journal, resume=True)
        run_grid(resumed)
        assert resumed.resumed_cells == KILL_AFTER, resumed.resumed_cells
        expected_rest = 2 * len(KS) - KILL_AFTER
        assert resumed.computed_cells == expected_rest, resumed.computed_cells

        final = ExperimentRunner(GRID, journal=journal, resume=True)
        run_grid(final)
        assert final.computed_cells == 0, (
            f"resume recomputed {final.computed_cells} finished cells"
        )
        return (
            f"killed after {KILL_AFTER}/{2 * len(KS)} cells, resumed "
            f"{resumed.resumed_cells}, recomputed 0 on final resume"
        )


def drill_fallback_degradation() -> str:
    from repro.datasets.registry import load

    table = load("art", n=80, seed=0)
    plan = FaultPlan().inject("core.kk.couple", times=None)
    with fault_scope(plan):
        outcome = run_with_fallback(table, 5)
    assert plan.total_fired() > 0, "the rung fault never fired"
    assert outcome.report.winner == "agglomerative", outcome.report.format()
    assert outcome.require().verify(), "degraded result failed verification"
    return f"winner {outcome.report.winner!r} after: {outcome.report.format()}"


def drill_registry(seeds: tuple[int, ...] = (0, 1, 7)) -> str:
    for seed in seeds:
        violations = fault_resilience_check(random_instance(seed))
        assert not violations, (
            f"seed {seed}: " + "; ".join(str(v) for v in violations)
        )
    return f"all registered algorithms clean on seeds {list(seeds)}"


def main() -> int:
    drills = [
        ("kill + resume", drill_kill_and_resume),
        ("fallback degradation", drill_fallback_degradation),
        ("registry fault/budget drills", drill_registry),
    ]
    for name, drill in drills:
        try:
            detail = drill()
        except AssertionError as exc:
            print(f"FAIL {name}: {exc}")
            return 1
        print(f"ok   {name}: {detail}")
    print("fault smoke: all drills passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
