#!/usr/bin/env python3
"""Generate docs/api.md from the public API's signatures and docstrings.

Walks the packages' ``__all__`` exports, renders each public class and
function with its signature and first docstring paragraph, and writes a
single markdown reference.  Re-run after changing the public API:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import typing
from pathlib import Path

PACKAGES = [
    ("repro", "Top-level API"),
    ("repro.tabular", "Tabular substrate"),
    ("repro.measures", "Information-loss measures"),
    ("repro.core", "Core algorithms and notions"),
    ("repro.matching", "Matching substrate"),
    ("repro.datasets", "Datasets"),
    ("repro.privacy", "Privacy: adversaries, audits, bundles"),
    ("repro.extensions", "Extensions (§VII)"),
    ("repro.utility", "Workload utility"),
    ("repro.obs", "Observability: tracing, metrics, profiling"),
    ("repro.analysis", "Static analysis: lint, dataflow, call graph"),
    ("repro.runtime", "Execution resilience runtime"),
    ("repro.experiments", "Experiment harness"),
    ("repro.serve", "Anonymization service"),
    ("repro.verify", "Verification & fuzzing harness"),
    ("repro.perf", "Parallel execution & benchmarks"),
]


def _first_paragraph(doc: str | None) -> str:
    if not doc:
        return "*(undocumented)*"
    paragraph = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _render_entry(name: str, obj) -> list[str]:
    lines = []
    if typing.get_origin(obj) is not None:
        # Typing aliases (e.g. ``Clock = Callable[[], float]``) are
        # callable but carry the generic machinery's docstring, not ours.
        lines.append(f"#### `{name}` — type alias")
        lines.append("")
        lines.append(f"`{obj!r}`")
        lines.append("")
    elif inspect.isclass(obj):
        lines.append(f"#### class `{name}`")
        lines.append("")
        lines.append(_first_paragraph(inspect.getdoc(obj)))
        lines.append("")
        methods = [
            (m_name, member)
            for m_name, member in inspect.getmembers(obj)
            if not m_name.startswith("_")
            and (inspect.isfunction(member) or isinstance(member, property))
            and m_name in vars(obj)
        ]
        for m_name, member in methods:
            if isinstance(member, property):
                lines.append(
                    f"- `.{m_name}` *(property)* — "
                    f"{_first_paragraph(inspect.getdoc(member))}"
                )
            else:
                lines.append(
                    f"- `.{m_name}{_signature(member)}` — "
                    f"{_first_paragraph(inspect.getdoc(member))}"
                )
        if methods:
            lines.append("")
    elif callable(obj):
        lines.append(f"#### `{name}{_signature(obj)}`")
        lines.append("")
        lines.append(_first_paragraph(inspect.getdoc(obj)))
        lines.append("")
    else:
        lines.append(f"#### `{name}` — constant")
        lines.append("")
        if isinstance(obj, (set, frozenset)):
            # Set iteration order varies per process (hash randomization);
            # sort so the generated file is byte-stable.
            rendered = "{" + ", ".join(repr(item) for item in sorted(obj)) + "}"
        else:
            rendered = repr(obj)
        lines.append(f"`{rendered}`")
        lines.append("")
    return lines


def _option_label(action: argparse.Action) -> str:
    """``--flag METAVAR`` (or the positional's metavar) for one action."""
    if not action.option_strings:
        return str(action.metavar or action.dest)
    label = ", ".join(action.option_strings)
    if action.nargs != 0 and not isinstance(
        action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
    ):
        label += f" {action.metavar or action.dest.upper()}"
    return label


def _render_cli() -> list[str]:
    """The ``repro-anon`` subcommands and their flags, from the parser."""
    from repro.cli import _build_parser

    parser = _build_parser()
    sub_action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    helps = {c.dest: c.help or "" for c in sub_action._choices_actions}
    out = [
        "## Command line (`repro-anon`)",
        "",
        "Flags below are generated from the argument parser; "
        "`repro-anon <command> --help` shows full defaults and choices.",
        "",
    ]
    for name, sub in sub_action.choices.items():
        out.append(f"### `repro-anon {name}`")
        out.append("")
        if helps.get(name):
            out.append(f"{helps[name].capitalize()}.")
            out.append("")
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            help_text = (action.help or "").strip()
            suffix = f" — {help_text}" if help_text else ""
            out.append(f"- `{_option_label(action)}`{suffix}")
        out.append("")
    return out


def generate() -> str:
    out: list[str] = [
        "# API reference",
        "",
        "*Generated by `tools/gen_api_docs.py` — do not edit by hand.*",
        "",
    ]
    for module_name, title in PACKAGES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        out.append(f"## {title} (`{module_name}`)")
        out.append("")
        out.append(_first_paragraph(inspect.getdoc(module)))
        out.append("")
        for name in exported:
            obj = getattr(module, name)
            # Skip re-exports already documented under their home package.
            home = getattr(obj, "__module__", module_name) or module_name
            if module_name == "repro" and not home.startswith("repro."):
                continue
            if module_name == "repro" and any(
                home.startswith(pkg + ".") or home == pkg
                for pkg, _ in PACKAGES[1:]
            ):
                continue
            out.extend(_render_entry(name, obj))
    out.extend(_render_cli())
    return "\n".join(out) + "\n"


def main() -> None:
    target = Path(__file__).resolve().parent.parent / "docs" / "api.md"
    target.write_text(generate())
    print(f"wrote {target} ({len(generate().splitlines())} lines)")


if __name__ == "__main__":
    main()
