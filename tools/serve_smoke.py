#!/usr/bin/env python3
"""Crash-recovery smoke drill for the serving layer (CI job).

The in-process chaos drill (``repro.serve.drill``) proves the recovery
invariants under injected faults; this script proves them across a
*real* process boundary, the only place a SIGKILL actually exists:

1. start ``repro-anon serve`` with a cache journal and a span trace,
   drive a seeded 50-request load (phase A) and record each response
   body's SHA-256;
2. SIGKILL the server mid-flight during a second burst — no shutdown
   hooks, no flushing grace;
3. restart on the same journal and re-drive the phase-A mix: every
   body hash must match byte-for-byte, and ``/metricz`` must show
   ``serve.execute.computed == 0`` — the restarted server recomputed
   nothing;
4. the fsynced span trace (written through both lives of the server)
   must still convert to a well-formed Chrome ``traceEvents`` file.

Exits non-zero on the first broken check.  Wall clock is a few seconds.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from loadgen import run_load  # noqa: E402
from repro.obs import load_trace, write_chrome_trace  # noqa: E402

REQUESTS = 50
SEED = 0
RATE = 200.0
STARTUP_PATTERN = re.compile(r"serving on (http://\S+)")
RECOVERED_PATTERN = re.compile(r"recovered (\d+) cached results")


class Server:
    """One life of the server subprocess."""

    def __init__(self, journal: Path, trace: Path) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-journal", str(journal),
                "--trace", str(trace),
                "--max-queue", "64",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.url = ""
        self.recovered = 0
        deadline = time.monotonic() + 30.0
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError("server exited before binding")
            recovered = RECOVERED_PATTERN.search(line)
            if recovered:
                self.recovered = int(recovered.group(1))
            started = STARTUP_PATTERN.search(line)
            if started:
                self.url = started.group(1)
                return
        raise AssertionError("server never printed its startup line")

    def kill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)


def metricz(url: str) -> dict:
    with urllib.request.urlopen(url.rstrip("/") + "/metricz", timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))


def hashes_by_index(report: dict) -> dict[int, str]:
    return {
        r["index"]: r["body_sha256"]
        for r in report["records"]
        if r["status"] == "ok"
    }


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "cache.jsonl"
        trace = Path(tmp) / "spans.jsonl"

        # Phase A: cold server, full seeded load.
        first = Server(journal, trace)
        assert first.recovered == 0, first.recovered
        phase_a = run_load(first.url, requests=REQUESTS, seed=SEED, rate=RATE)
        summary = phase_a["summary"]
        assert summary["errors"] == 0, phase_a["records"]
        assert summary["ok"] == REQUESTS, summary
        baseline = hashes_by_index(phase_a)
        computed_cold = metricz(first.url)["counters"].get(
            "serve.execute.computed", 0
        )
        assert computed_cold > 0, "cold run computed nothing?"
        print(
            f"ok   phase A: {summary['ok']}/{REQUESTS} ok, "
            f"{computed_cold} computed, p99 {summary['latency_p99_ms']:.1f} ms"
        )

        # Phase B: SIGKILL mid-flight — no grace, no flush.
        burst = threading.Thread(
            target=run_load,
            args=(first.url,),
            kwargs={"requests": 20, "seed": SEED + 1, "rate": RATE},
            daemon=True,
        )
        burst.start()
        time.sleep(0.05)  # let a few burst requests get in flight
        first.kill()
        burst.join(timeout=30)
        assert journal.exists(), "journal never materialized"
        print("ok   phase B: SIGKILLed mid-burst, journal on disk")

        # Phase C: restart on the same journal; replay must be free.
        second = Server(journal, trace)
        expected = len(set(baseline.values()))
        assert second.recovered >= expected, (
            f"recovered {second.recovered} < {expected} distinct phase-A bodies"
        )
        phase_c = run_load(second.url, requests=REQUESTS, seed=SEED, rate=RATE)
        assert phase_c["summary"]["errors"] == 0, phase_c["records"]
        replayed = hashes_by_index(phase_c)
        assert replayed == baseline, "recovered bodies differ from phase A"
        counters = metricz(second.url)["counters"]
        computed = counters.get("serve.execute.computed", 0)
        assert computed == 0, (
            f"restarted server recomputed {computed} results"
        )
        second.kill()
        print(
            f"ok   phase C: recovered {second.recovered} bodies, "
            f"{len(replayed)} responses byte-identical, 0 recomputed"
        )

        # Phase D: the trace survived both lives and converts cleanly.
        events = load_trace(trace)
        assert events, "no spans survived in the trace file"
        chrome = Path(tmp) / "chrome.json"
        write_chrome_trace(events, chrome)
        payload = json.loads(chrome.read_text(encoding="utf-8"))
        assert payload["traceEvents"], payload.keys()
        names = {event["name"] for event in payload["traceEvents"]}
        assert "serve.request" in names, sorted(names)[:10]
        print(
            f"ok   phase D: {len(events)} spans -> well-formed Chrome trace"
        )

    print("serve smoke: all phases passed")
    return 0


def run() -> int:
    try:
        return main()
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1


if __name__ == "__main__":
    sys.exit(run())
