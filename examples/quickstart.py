#!/usr/bin/env python3
"""Quickstart: anonymize a tiny patient table under every k-type notion.

Builds a 12-record table by hand (ages, ZIP codes, diagnosis), defines
generalization hierarchies, and shows how each anonymity notion of the
paper trades privacy for utility:

    python examples/quickstart.py
"""

from repro import Attribute, Schema, SubsetCollection, Table, anonymize
from repro.tabular import integer_attribute, interval_hierarchy

# ---------------------------------------------------------------------- #
# 1. Define the schema: public attributes + how they may be generalized.
# ---------------------------------------------------------------------- #

age = integer_attribute("age", 25, 48)
age_bands = interval_hierarchy(age, 5, 10)  # 5-year and 10-year bands

zipcode = Attribute("zip", ["68421", "68422", "68423", "68431", "68432"])
zip_areas = SubsetCollection(
    zipcode,
    [
        ["68421", "68422", "68423"],  # district 6842*
        ["68431", "68432"],           # district 6843*
    ],
)

schema = Schema([age_bands, zip_areas], private_attributes=("diagnosis",))

# ---------------------------------------------------------------------- #
# 2. The microdata: 12 patients.
# ---------------------------------------------------------------------- #

rows = [
    ("25", "68421"), ("27", "68422"), ("28", "68421"), ("29", "68423"),
    ("33", "68431"), ("34", "68432"), ("35", "68431"), ("36", "68432"),
    ("41", "68421"), ("43", "68422"), ("45", "68431"), ("48", "68432"),
]
diagnoses = [
    ("flu",), ("asthma",), ("flu",), ("diabetes",),
    ("flu",), ("migraine",), ("asthma",), ("flu",),
    ("diabetes",), ("flu",), ("migraine",), ("asthma",),
]
table = Table(schema, rows, diagnoses)

# ---------------------------------------------------------------------- #
# 3. Anonymize under each notion and compare utility.
# ---------------------------------------------------------------------- #


def show(result):
    print(f"\n--- {result.notion} (algorithm: {result.algorithm}) ---")
    print(f"information loss Π_E = {result.cost:.4f} bits/entry")
    for original, published in zip(rows, result.generalized.labels()):
        print(f"  {str(original):22s} -> {published}")


K = 4
print(f"Anonymizing {table.num_records} records with k = {K}")

classic = anonymize(table, k=K, notion="k", measure="entropy")
relaxed = anonymize(table, k=K, notion="kk", measure="entropy")
globally_safe = anonymize(table, k=K, notion="global-1k", measure="entropy")

show(classic)
show(relaxed)
show(globally_safe)

print("\nSummary (lower is better utility-wise):")
print(f"  k-anonymity        : {classic.cost:.4f}")
print(f"  (k,k)-anonymity    : {relaxed.cost:.4f}   "
      f"({1 - relaxed.cost / classic.cost:+.0%} vs k-anonymity)")
print(f"  global (1,k)       : {globally_safe.cost:.4f}")

# Every result self-verifies against its notion:
assert classic.verify() and relaxed.verify() and globally_safe.verify()
print("\nall three releases verified against their anonymity notions ✓")
