#!/usr/bin/env python3
"""ℓ-diversity on the CMC survey — the paper's §VII future-work item.

k-anonymity (and its relaxations) bound *linkage*, but a cluster whose
members all share one sensitive value still leaks it (homogeneity
attack).  This example anonymizes the Contraceptive Method Choice survey
with the agglomerative algorithm, shows a homogeneous cluster, enforces
distinct ℓ-diversity with the library's extension, and prices the
repair — also scoring the releases with the CM classification measure,
whose natural home is exactly this dataset:

    python examples/survey_ldiversity.py
"""

from collections import Counter

from repro.core.agglomerative import agglomerative_clustering
from repro.core.clustering import clustering_to_nodes
from repro.core.distances import get_distance
from repro.datasets import load
from repro.extensions.ldiversity import (
    cluster_diversities,
    enforce_l_diversity,
    sensitive_column,
)
from repro.measures import (
    ClassificationMeasure,
    CostModel,
    EntropyMeasure,
)
from repro.tabular.encoding import EncodedTable

K, L = 5, 2

table = load("cmc", n=600, seed=7, private=True)
enc = EncodedTable(table)
model = CostModel(enc, EntropyMeasure())
distance = get_distance("d3")

# 1. Plain k-anonymous clustering.
clustering = agglomerative_clustering(model, K, distance)
labels = sensitive_column(enc)
diversities = cluster_diversities(enc, clustering)
homogeneous = [
    ci for ci, d in enumerate(diversities) if d < L
]
print(f"k={K} clustering: {clustering.num_clusters} clusters, "
      f"{len(homogeneous)} of them have < {L} distinct method values")

if homogeneous:
    ci = homogeneous[0]
    members = clustering.clusters[ci]
    shared = labels[members[0]]
    print(f"\nhomogeneity attack example: cluster {ci} "
          f"({len(members)} records) all share method = {shared!r} —")
    print("anyone linked to this cluster has their method disclosed, even "
          f"though the release is {K}-anonymous.")

# 2. Enforce distinct ℓ-diversity.
repair = enforce_l_diversity(model, clustering, l=L, distance=distance)
fixed = repair.clustering
print(f"\nenforced {L}-diversity with {repair.merges} extra merge(s): "
      f"{fixed.num_clusters} clusters remain")
print("cluster method-diversity now:",
      dict(Counter(int(d) for d in cluster_diversities(enc, fixed))))

# 3. Price the repair under Π_E and the CM classification measure.
cost_before = model.clustering_cost([list(c) for c in clustering.clusters])
cost_after = model.clustering_cost([list(c) for c in fixed.clusters])
cm = ClassificationMeasure("method")
cm_before = cm.clustering_cost(enc, [list(c) for c in clustering.clusters])
cm_after = cm.clustering_cost(enc, [list(c) for c in fixed.clusters])

print(f"\nΠ_E : {cost_before:.4f} -> {cost_after:.4f} "
      f"(+{cost_after / cost_before - 1:.1%})")
print(f"CM  : {cm_before:.4f} -> {cm_after:.4f} "
      "(classification penalty grows — diverse clusters are, by design, "
      "less pure)")

# 4. The release still k-anonymizes: clusters only merged, never split.
nodes = clustering_to_nodes(enc, fixed)
from repro.core.notions import is_k_anonymous

assert is_k_anonymous(nodes, K)
print(f"\nrelease is still {K}-anonymous and now {L}-diverse ✓")
