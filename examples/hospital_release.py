#!/usr/bin/env python3
"""The paper's motivating scenario: a hospital publishes patient data.

Uses the Adult-like dataset (9 public census attributes + a sensitive
column) as the patient registry, releases a (k,k)-anonymization — the
paper's recommended practical choice — audits it against both
adversaries, writes the release to CSV, and re-audits what was written:

    python examples/hospital_release.py [n] [k]
"""

import sys
import tempfile
from pathlib import Path

from repro import anonymize
from repro.datasets import load
from repro.privacy.audit import audit_release
from repro.tabular.io import (
    read_generalized_csv,
    read_schema_json,
    write_generalized_csv,
    write_schema_json,
)

n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
k = int(sys.argv[2]) if len(sys.argv) > 2 else 10

# 1. The hospital's registry: public quasi-identifiers + private income
#    column standing in for the diagnosis.
table = load("adult", n=n, seed=2026, private=True)
print(f"registry: {table.num_records} patients, "
      f"{table.schema.num_attributes} public attributes, "
      f"private: {table.schema.private_attributes}")

# 2. Release under (k,k)-anonymity with the entropy measure.
result = anonymize(table, k=k, notion="kk", measure="entropy")
print(f"\n(k,k)-anonymization, k={k}: "
      f"Π_E = {result.cost:.4f} bits/entry "
      f"({result.elapsed_seconds:.2f}s, {result.algorithm})")

# For contrast: what classic k-anonymity would have cost.
classic = anonymize(table, k=k, notion="k", encoded=result.encoded)
print(f"classic k-anonymity would cost Π_E = {classic.cost:.4f} "
      f"(+{classic.cost / result.cost - 1:.0%})")

# 3. Audit the release against both adversaries of Section IV-A.
audit = audit_release(table, result.generalized, k=k, encoded=result.encoded)
print()
print(audit.format_report())
if not audit.safe_against_adversary2():
    deficient = audit.adversary2.breaches(k)
    print(f"\nNOTE: adversary 2 (who knows the exact hospital population) "
          f"can narrow {len(deficient)} patients below k candidates.")
    print("Upgrading the release with Algorithm 6 ...")
    upgraded = anonymize(
        table, k=k, notion="global-1k", encoded=result.encoded
    )
    print(f"global (1,k) release: Π_E = {upgraded.cost:.4f} "
          f"(+{upgraded.cost / result.cost - 1:.0%} loss, "
          f"{upgraded.stats['conversion_fixes']} fix steps)")
    result = upgraded

# 4. Write the release (generalized QIs + untouched sensitive column),
#    reload it and confirm round-trip fidelity.
out_dir = Path(tempfile.mkdtemp(prefix="hospital_release_"))
release_csv = out_dir / "release.csv"
schema_json = out_dir / "schema.json"
write_generalized_csv(result.generalized, release_csv,
                      private_rows=table.private_rows)
write_schema_json(table.schema, schema_json)
print(f"\nwrote {release_csv}")
print(f"wrote {schema_json}")

reloaded = read_generalized_csv(read_schema_json(schema_json), release_csv)
assert reloaded.num_records == table.num_records
print("reload check: release parses back identically ✓")

print("\nfirst three published records:")
for labels in result.generalized.labels()[:3]:
    print("  " + ", ".join(labels))
