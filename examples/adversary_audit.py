#!/usr/bin/env python3
"""Reenact the Section IV-A attacks that motivate the paper's notions.

Attack 1 — the suppressed tail.  A (1,k)-anonymization with near-zero
information loss that fully re-identifies most of the table: publish
n−k records untouched and suppress the last k entirely.  Adversary 1's
*reverse* linkage (published record → consistent individuals) breaks it.

Attack 2 — match pruning.  A (k,k)-anonymization with every record
linked to ≥ k neighbours, where adversary 2 (who knows the exact
database population) prunes neighbours down to *matches* and gets below
k.  Algorithm 6 repairs it.

    python examples/adversary_audit.py
"""

from repro.core.global_1k import global_one_k_anonymize
from repro.core.notions import is_one_k_anonymous
from repro.core.relations import kk_attack_example, nodes_from_value_lists
from repro.datasets import load
from repro.measures import CostModel, EntropyMeasure, LMMeasure
from repro.privacy.adversary import Adversary1, Adversary2
from repro.privacy.attacks import (
    matching_attack,
    reverse_linkage_attack,
    suppressed_tail_generalization,
)
from repro.tabular.encoding import EncodedTable

K = 5

# ---------------------------------------------------------------------- #
# Attack 1: (1,k) alone is worthless.
# ---------------------------------------------------------------------- #
print("=" * 68)
print("ATTACK 1 — the suppressed-tail (1,k) counterexample")
print("=" * 68)

table = load("art", n=100, seed=1, private=True)
enc = EncodedTable(table)
model = CostModel(enc, EntropyMeasure())

nodes = suppressed_tail_generalization(enc, K)
assert is_one_k_anonymous(enc, nodes, K)
print(f"release is (1,{K})-anonymous; information loss "
      f"Π_E = {model.table_cost(nodes):.4f} bits/entry (tiny!)")

findings = reverse_linkage_attack(enc, nodes)
print(f"adversary 1 re-identifies {len(findings)} of {enc.num_records} "
      "records by reverse linkage:")
for f in findings[:3]:
    diagnosis = table.private_rows[f.original_index][0]
    print(f"  published record {f.generalized_index} belongs to individual "
          f"{f.original_index} -> private value revealed: {diagnosis!r}")
print("  ...")
print("conclusion: (1,k) alone fails exactly as Section IV-A predicts.\n")

# ---------------------------------------------------------------------- #
# Attack 2: adversary 2 vs (k,k).
# ---------------------------------------------------------------------- #
print("=" * 68)
print("ATTACK 2 — match pruning on a (2,2)-anonymized table")
print("=" * 68)

attack_table, gen_rows = kk_attack_example()
attack_enc = EncodedTable(attack_table)
attack_nodes = nodes_from_value_lists(attack_enc, gen_rows)

adv1 = Adversary1().attack(attack_enc, attack_nodes)
adv2 = Adversary2().attack(attack_enc, attack_nodes)
print("record | value | neighbours (adv 1) | matches (adv 2)")
for i in range(attack_enc.num_records):
    print(f"   {i}   |   {attack_table.row(i)[0]}   |"
          f"         {len(adv1.candidates[i])}          |"
          f"       {len(adv2.candidates[i])}")

report = matching_attack(attack_enc, attack_nodes, k=2)
assert report.succeeded
print(f"\nadversary 2 narrows records {sorted(report.victims)} below k=2 "
      "candidates — the (k,k) guarantee is gone.")

# Repair with Algorithm 6.
attack_model = CostModel(attack_enc, LMMeasure())
fixed, stats = global_one_k_anonymize(attack_model, attack_nodes, 2)
after = matching_attack(attack_enc, fixed, k=2)
print(f"\nAlgorithm 6 applied: {stats.fixes} fix step(s), "
      f"{stats.passes} pass(es)")
print(f"attack after repair: "
      f"{'succeeded' if after.succeeded else 'DEFEATED'} "
      f"(Π_LM {attack_model.table_cost(attack_nodes):.3f} -> "
      f"{attack_model.table_cost(fixed):.3f})")
assert not after.succeeded
