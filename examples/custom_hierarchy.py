#!/usr/bin/env python3
"""Bring your own data: schema definition, CSV round-trip, and the CLI.

Shows the workflow a downstream user follows for their own microdata:
define attributes and generalization hierarchies in code, save the
self-describing schema JSON, write the data as CSV, anonymize both
through the Python API and the equivalent `repro-anon` CLI invocation,
and compare the notions' costs on *your* hierarchy design:

    python examples/custom_hierarchy.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import Attribute, Schema, SubsetCollection, Table, anonymize
from repro.tabular import (
    from_groups,
    integer_attribute,
    interval_hierarchy,
    write_schema_json,
    write_table_csv,
)

# ---------------------------------------------------------------------- #
# 1. An HR-style schema: role, seniority, office, salary band.
# ---------------------------------------------------------------------- #

role = Attribute(
    "role",
    ["swe", "sre", "data-scientist", "pm", "designer", "sales", "support"],
)
role_hierarchy = from_groups(
    role,
    [["swe", "sre", "data-scientist"],  # engineering
     ["pm", "designer"],                # product
     ["sales", "support"]],             # go-to-market
)

years = integer_attribute("years-at-company", 0, 19)
years_hierarchy = interval_hierarchy(years, 2, 4, 8)

office = Attribute("office", ["ber", "muc", "ams", "par", "lis", "mad"])
office_hierarchy = from_groups(
    office, [["ber", "muc"], ["ams", "par"], ["lis", "mad"]]
)

schema = Schema(
    [role_hierarchy, years_hierarchy, office_hierarchy],
    private_attributes=("salary-band",),
)

# 2. Synthesize 150 employees (any CSV with these columns works too).
rng = np.random.default_rng(99)
roles = list(role.values)
offices = list(office.values)
rows = [
    (
        roles[rng.integers(0, len(roles))],
        str(rng.integers(0, 20)),
        offices[rng.integers(0, len(offices))],
    )
    for _ in range(150)
]
bands = [(f"B{rng.integers(1, 6)}",) for _ in range(150)]
table = Table(schema, rows, bands)

out = Path(tempfile.mkdtemp(prefix="custom_hierarchy_"))
write_schema_json(schema, out / "schema.json")
write_table_csv(table, out / "employees.csv")
print(f"wrote {out / 'schema.json'} and {out / 'employees.csv'}")

# 3. Compare every notion on this hierarchy design.
print("\nnotion        loss Π_E   loss Π_LM")
for notion in ("k", "k1", "kk", "global-1k"):
    em = anonymize(table, k=6, notion=notion, measure="entropy")
    lm = anonymize(table, k=6, notion=notion, measure="lm")
    print(f"{notion:12s}  {em.cost:8.4f}   {lm.cost:8.4f}")

# 4. The same anonymization through the CLI, from the written files.
cli = [
    sys.executable, "-m", "repro", "anonymize",
    "--input", str(out / "employees.csv"),
    "--schema", str(out / "schema.json"),
    "--k", "6", "--notion", "kk",
    "--out", str(out / "release.csv"),
]
print("\nrunning:", " ".join(cli[3:]))
completed = subprocess.run(cli, capture_output=True, text=True)
print(completed.stdout.strip())
assert completed.returncode == 0, completed.stderr

print(f"\nrelease written by the CLI: {out / 'release.csv'}")
print("first rows of the release:")
for line in (out / "release.csv").read_text().splitlines()[:4]:
    print("  " + line)
