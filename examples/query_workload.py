#!/usr/bin/env python3
"""What does "higher utility" buy an analyst?  Answering COUNT queries.

Information-loss measures are proxies; the operational question is how
accurately the published table answers real queries.  This example
anonymizes the Adult-like table under several methods, runs one shared
workload of conjunctive COUNT queries against each release with the
uniform-spread estimator, and shows that the paper's relaxed
(k,k)-anonymity translates into measurably better answers:

    python examples/query_workload.py [n] [k]
"""

import sys

from repro import anonymize
from repro.datasets import load
from repro.tabular import EncodedTable
from repro.utility import (
    compare_releases,
    evaluate_estimated,
    evaluate_exact,
    random_workload,
)

n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
k = int(sys.argv[2]) if len(sys.argv) > 2 else 10

table = load("adult", n=n, seed=5)
enc = EncodedTable(table)

print(f"anonymizing {n} records at k={k} under three methods ...")
releases = {}
for label, notion, kwargs in [
    ("k-anonymity (agglomerative)", "k", {}),
    ("k-anonymity (forest baseline)", "k", {"algorithm": "forest"}),
    ("(k,k)-anonymity", "kk", {}),
]:
    result = anonymize(table, k=k, notion=notion, encoded=enc, **kwargs)
    releases[label] = result.node_matrix
    print(f"  {label:32s} Π_E = {result.cost:.4f}")

# One shared workload: 200 conjunctive COUNT queries over 2 attributes.
workload = random_workload(enc, num_queries=200, arity=2, seed=11)
comparison = compare_releases(enc, releases, workload=workload)

print()
print(comparison.format())
best = comparison.ranking()[0]
print(f"\nmost useful release: {best}")

# Zoom into three concrete queries.
print("\nexample queries (true answer vs estimate per release):")
for query in workload[:3]:
    truth = evaluate_exact(enc, query)
    print(f"\n  {query.describe(enc)}")
    print(f"    true answer: {truth}")
    for label, nodes in releases.items():
        estimate = evaluate_estimated(enc, nodes, query)
        print(f"    {label:32s} ≈ {estimate:7.1f}")
